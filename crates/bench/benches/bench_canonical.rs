//! Ablation A5: minimum DFS code vs the naive adjacency-matrix
//! canonical form (the two representations named in Section 4).

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_graph::canonical::{min_dfs_code, naive_canonical};
use pis_graph::graph::{complete_graph, cycle_graph, path_graph, star_graph};
use pis_graph::Label;
use std::hint::black_box;

fn bench_canonical(c: &mut Criterion) {
    let shapes: Vec<(&str, pis_graph::LabeledGraph)> = vec![
        ("path7", path_graph(7, Label(0), Label(1))),
        ("cycle6", cycle_graph(6, Label(0), Label(1))),
        ("star5", star_graph(5, Label(0), Label(1))),
        ("k4", complete_graph(4, Label(0), Label(1))),
    ];

    let mut group = c.benchmark_group("canonical");
    group.sample_size(50);
    for (name, g) in &shapes {
        group.bench_with_input(BenchmarkId::new("min_dfs_code", name), g, |b, g| {
            b.iter(|| black_box(min_dfs_code(g).expect("connected").code));
        });
        group.bench_with_input(BenchmarkId::new("naive_matrix", name), g, |b, g| {
            b.iter(|| black_box(naive_canonical(g)));
        });
    }

    // is_min (the miner's hot canonicality check).
    let code = min_dfs_code(&cycle_graph(6, Label(0), Label(1))).expect("connected").code;
    group.bench_function("is_min_cycle6", |b| b.iter(|| black_box(code.is_min())));
    group.finish();
}

criterion_group!(benches, bench_canonical);
criterion_main!(benches);
