//! Figure 11 as a Criterion benchmark: the selectivity cutoff λ only
//! affects partition choice, so runtime should be flat while pruning
//! varies (see the `figures` binary for the candidate-count series).

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_bench::{ExperimentScale, TestBed};
use pis_core::{PisConfig, PisSearcher};
use std::hint::black_box;

fn bench_cutoff(c: &mut Criterion) {
    let scale = ExperimentScale { db_size: 200, query_count: 5, ..ExperimentScale::smoke() };
    let bed = TestBed::build(&scale, 5);
    let queries = bed.query_set(16);

    let mut group = c.benchmark_group("cutoff_lambda");
    group.sample_size(10);
    for lambda in [0.5f64, 1.0, 2.0] {
        let cfg =
            PisConfig { lambda, verify: false, structure_check: false, ..PisConfig::default() };
        let searcher = PisSearcher::new(&bed.index, &bed.db, cfg);
        group.bench_with_input(BenchmarkId::new("prune", lambda), &lambda, |b, _| {
            b.iter(|| {
                let mut candidates = 0usize;
                for q in &queries {
                    candidates += searcher.search(q, 2.0).candidates.len();
                }
                black_box(candidates)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cutoff);
criterion_main!(benches);
