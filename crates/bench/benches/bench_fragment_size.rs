//! Figure 12 as a Criterion benchmark: pruning cost and strength by
//! maximum indexed fragment size (4–6 edges).

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_bench::{ExperimentScale, TestBed};
use pis_core::{PisConfig, PisSearcher};
use std::hint::black_box;

fn bench_fragment_size(c: &mut Criterion) {
    let scale = ExperimentScale { db_size: 200, query_count: 5, ..ExperimentScale::smoke() };
    let mut group = c.benchmark_group("fragment_size");
    group.sample_size(10);

    for size in [4usize, 5, 6] {
        let bed = TestBed::build(&scale, size);
        let queries = bed.query_set(16);
        let cfg = PisConfig { verify: false, structure_check: false, ..PisConfig::default() };
        let searcher = PisSearcher::new(&bed.index, &bed.db, cfg);
        group.bench_with_input(BenchmarkId::new("prune", size), &size, |b, _| {
            b.iter(|| {
                let mut candidates = 0usize;
                for q in &queries {
                    candidates += searcher.search(q, 2.0).candidates.len();
                }
                black_box(candidates)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fragment_size);
criterion_main!(benches);
