//! Index construction cost: feature mining (gSpan + gIndex) and
//! fragment-index build, by database size.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_datasets::MoleculeGenerator;
use pis_distance::MutationDistance;
use pis_graph::LabeledGraph;
use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::{select_features, GindexConfig};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);

    for db_size in [50usize, 150] {
        let db = MoleculeGenerator::default().database(db_size, 3);
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();

        group.bench_with_input(BenchmarkId::new("mine_features", db_size), &structures, |b, s| {
            b.iter(|| {
                black_box(select_features(
                    s,
                    &GindexConfig {
                        max_edges: 4,
                        min_support_fraction: 0.05,
                        ..GindexConfig::default()
                    },
                ))
            });
        });

        let features = select_features(
            &structures,
            &GindexConfig { max_edges: 4, min_support_fraction: 0.05, ..GindexConfig::default() },
        );
        group.bench_with_input(BenchmarkId::new("build_index", db_size), &db, |b, db| {
            b.iter(|| {
                black_box(FragmentIndex::build(
                    db,
                    features.clone(),
                    IndexDistance::Mutation(MutationDistance::edge_hamming()),
                    &IndexConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
