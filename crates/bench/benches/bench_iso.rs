//! Micro-benchmarks of the VF2 matcher: existence checks, embedding
//! enumeration, and the verification-style bounded search on molecule
//! data.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_core::min_superimposed_distance;
use pis_datasets::{sample_query_set, MoleculeGenerator};
use pis_distance::MutationDistance;
use pis_graph::graph::{cycle_graph, path_graph};
use pis_graph::iso::{embeddings, is_subgraph, IsoConfig};
use pis_graph::Label;
use std::hint::black_box;

fn bench_iso(c: &mut Criterion) {
    let db = MoleculeGenerator::default().database(50, 7);
    let queries = sample_query_set(&db, 12, 5, 3);

    let mut group = c.benchmark_group("iso");
    group.sample_size(30);

    group.bench_function("exists_q12_molecule", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for q in &queries {
                for g in &db {
                    if is_subgraph(black_box(q), black_box(g), IsoConfig::STRUCTURE) {
                        found += 1;
                    }
                }
            }
            black_box(found)
        });
    });

    group.bench_function("enumerate_path4_in_cycle12", |b| {
        let p = path_graph(4, Label(0), Label(0));
        let t = cycle_graph(12, Label(0), Label(0));
        b.iter(|| black_box(embeddings(&p, &t, IsoConfig::STRUCTURE).len()));
    });

    group.bench_function("bounded_verify_q12", |b| {
        let md = MutationDistance::edge_hamming();
        b.iter(|| {
            let mut answers = 0usize;
            for q in &queries {
                for g in &db {
                    if min_superimposed_distance(q, g, &md, 2.0).is_some() {
                        answers += 1;
                    }
                }
            }
            black_box(answers)
        });
    });

    for size in [8usize, 16, 24] {
        let qs = sample_query_set(&db, size, 3, 11);
        group.bench_with_input(BenchmarkId::new("exists_by_query_size", size), &qs, |b, qs| {
            b.iter(|| {
                let mut found = 0usize;
                for q in qs {
                    for g in &db {
                        if is_subgraph(q, g, IsoConfig::STRUCTURE) {
                            found += 1;
                        }
                    }
                }
                black_box(found)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iso);
criterion_main!(benches);
