//! Ablation A1 (runtime side): MWIS algorithms on overlapping-relation
//! graphs taken from real queries.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_partition::{enhanced_greedy_mwis, exact_mwis, greedy_mwis, OverlapGraph};
use std::hint::black_box;

/// Builds path/grid-like overlap graphs of the size real Q12–Q24 queries
/// produce.
fn synthetic_overlap(n: usize, extra_degree: usize) -> OverlapGraph {
    let mut weights = Vec::with_capacity(n);
    let mut s = 0x2545f4914f6cdd1du64;
    for _ in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        weights.push(0.1 + ((s >> 33) % 100) as f64 / 50.0);
    }
    let mut edges = Vec::new();
    for i in 1..n {
        edges.push((i - 1, i));
        for d in 0..extra_degree {
            let j = i.saturating_sub(2 + d * 3);
            if j + 1 < i {
                edges.push((j, i));
            }
        }
    }
    OverlapGraph::from_parts(weights, edges)
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(30);

    for n in [20usize, 60, 200] {
        let g = synthetic_overlap(n, 3);
        group.bench_with_input(BenchmarkId::new("greedy", n), &g, |b, g| {
            b.iter(|| black_box(greedy_mwis(g)));
        });
        group.bench_with_input(BenchmarkId::new("enhanced2", n), &g, |b, g| {
            b.iter(|| black_box(enhanced_greedy_mwis(g, 2)));
        });
        if n <= 60 {
            group.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
                b.iter(|| black_box(exact_mwis(g)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
