//! Figure 8 as a Criterion benchmark: PIS pruning vs topoPrune vs the
//! naive scan on a Q16 workload.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_bench::{ExperimentScale, TestBed};
use pis_core::{naive_scan, topo_prune, PisConfig, PisSearcher};
use pis_distance::MutationDistance;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let scale = ExperimentScale { db_size: 200, query_count: 5, ..ExperimentScale::smoke() };
    let bed = TestBed::build(&scale, 5);
    let queries = bed.query_set(16);
    let md = MutationDistance::edge_hamming();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for sigma in [1.0f64, 2.0, 4.0] {
        let prune_only =
            PisConfig { verify: false, structure_check: false, ..PisConfig::default() };
        let searcher = PisSearcher::new(&bed.index, &bed.db, prune_only);
        group.bench_with_input(BenchmarkId::new("pis_prune", sigma), &sigma, |b, &s| {
            b.iter(|| {
                let mut candidates = 0usize;
                for q in &queries {
                    candidates += searcher.search(q, s).candidates.len();
                }
                black_box(candidates)
            })
        });
        group.bench_with_input(BenchmarkId::new("pis_full", sigma), &sigma, |b, &s| {
            let full = PisSearcher::new(&bed.index, &bed.db, PisConfig::default());
            b.iter(|| {
                let mut answers = 0usize;
                for q in &queries {
                    answers += full.search(q, s).answers.len();
                }
                black_box(answers)
            })
        });
        group.bench_with_input(BenchmarkId::new("topo_prune", sigma), &sigma, |b, &s| {
            b.iter(|| {
                let mut answers = 0usize;
                for q in &queries {
                    answers += topo_prune(&bed.index, &bed.db, q, s).answers.len();
                }
                black_box(answers)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", sigma), &sigma, |b, &s| {
            b.iter(|| {
                let mut answers = 0usize;
                for q in &queries {
                    answers += naive_scan(&bed.db, q, &md, s).answers.len();
                }
                black_box(answers)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
