//! Figure 8 as a Criterion benchmark: PIS pruning vs topoPrune vs the
//! naive scan on a Q16 workload.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_bench::{pipeline_workload, TestBed};
use pis_core::{naive_scan, topo_prune, PisConfig, PisSearcher, SearchScratch};
use pis_distance::MutationDistance;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let bed = TestBed::build(&pipeline_workload::scale(), pipeline_workload::MAX_FRAGMENT_EDGES);
    let queries = bed.query_set(pipeline_workload::QUERY_EDGES);
    let md = MutationDistance::edge_hamming();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for sigma in pipeline_workload::SIGMAS {
        let prune_only =
            PisConfig { verify: false, structure_check: false, ..PisConfig::default() };
        let searcher = PisSearcher::new(&bed.index, &bed.db, prune_only);
        // The pis rows reuse one SearchScratch across queries — the
        // intended steady-state serving pattern.
        group.bench_with_input(BenchmarkId::new("pis_prune", sigma), &sigma, |b, &s| {
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mut candidates = 0usize;
                for q in &queries {
                    candidates += searcher.search_with_scratch(q, s, &mut scratch).candidates.len();
                }
                black_box(candidates)
            });
        });
        group.bench_with_input(BenchmarkId::new("pis_full", sigma), &sigma, |b, &s| {
            let full = PisSearcher::new(&bed.index, &bed.db, PisConfig::default());
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mut answers = 0usize;
                for q in &queries {
                    answers += full.search_with_scratch(q, s, &mut scratch).answers.len();
                }
                black_box(answers)
            });
        });
        group.bench_with_input(BenchmarkId::new("topo_prune", sigma), &sigma, |b, &s| {
            b.iter(|| {
                let mut answers = 0usize;
                for q in &queries {
                    answers += topo_prune(&bed.index, &bed.db, q, s).answers.len();
                }
                black_box(answers)
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", sigma), &sigma, |b, &s| {
            b.iter(|| {
                let mut answers = 0usize;
                for q in &queries {
                    answers += naive_scan(&bed.db, q, &md, s).answers.len();
                }
                black_box(answers)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
