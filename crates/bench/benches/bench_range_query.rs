//! Ablations A2/A3: range-query backends.
//!
//! * A2 — trie vs VP-tree for the mutation distance;
//! * A3 — R-tree vs VP-tree for the linear distance.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pis_datasets::{sample_query_set, MoleculeConfig, MoleculeGenerator};
use pis_distance::{LinearDistance, MutationDistance};
use pis_graph::LabeledGraph;
use pis_index::{Backend, FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::exhaustive::exhaustive_features;
use std::hint::black_box;

fn build(db: &[LabeledGraph], distance: IndexDistance, backend: Backend) -> FragmentIndex {
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    let features = exhaustive_features(&structures, 4);
    FragmentIndex::build(db, features, distance, &IndexConfig { backend, ..IndexConfig::default() })
}

fn run_queries(index: &FragmentIndex, queries: &[LabeledGraph], sigma: f64) -> usize {
    let mut hits = 0usize;
    for q in queries {
        for frag in index.enumerate_query_fragments(q) {
            hits += index.range_query(frag.feature, &frag.vector, sigma).len();
        }
    }
    hits
}

fn bench_range_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query");
    group.sample_size(15);

    // A2 — mutation distance.
    let db = MoleculeGenerator::default().database(120, 5);
    let queries = sample_query_set(&db, 10, 4, 8);
    let md = IndexDistance::Mutation(MutationDistance::edge_hamming());
    let trie = build(&db, md.clone(), Backend::Trie);
    let vp = build(&db, md, Backend::VpTree);
    for sigma in [1.0f64, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::new("md_trie", sigma), &sigma, |b, &s| {
            b.iter(|| black_box(run_queries(&trie, &queries, s)));
        });
        group.bench_with_input(BenchmarkId::new("md_vptree", sigma), &sigma, |b, &s| {
            b.iter(|| black_box(run_queries(&vp, &queries, s)));
        });
    }

    // A3 — linear distance over weighted molecules.
    let wdb =
        MoleculeGenerator::new(MoleculeConfig { weighted: true, ..MoleculeConfig::default() })
            .database(120, 5);
    let wqueries = sample_query_set(&wdb, 8, 4, 8);
    let ld = IndexDistance::Linear(LinearDistance::edges_only());
    let rtree = build(&wdb, ld.clone(), Backend::RTree);
    let wvp = build(&wdb, ld, Backend::VpTree);
    for sigma in [0.1f64, 0.5] {
        group.bench_with_input(BenchmarkId::new("ld_rtree", sigma), &sigma, |b, &s| {
            b.iter(|| black_box(run_queries(&rtree, &wqueries, s)));
        });
        group.bench_with_input(BenchmarkId::new("ld_vptree", sigma), &sigma, |b, &s| {
            b.iter(|| black_box(run_queries(&wvp, &wqueries, s)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_query);
criterion_main!(benches);
