//! Regenerates every figure of the paper's evaluation (Section 7) plus
//! the ablations listed in `DESIGN.md` §5.
//!
//! ```text
//! cargo run --release -p pis-bench --bin figures -- [--exp LIST] [--scale S] [--out DIR]
//!
//!   --exp    comma list of e0,fig8,fig9,fig10,fig11,fig12,a1,a4 (default: all)
//!   --scale  smoke | default | full          (default: default = 2000 graphs)
//!   --out    output directory               (default: bench_results)
//! ```
//!
//! Every experiment prints its table and writes `<out>/<exp>.txt`; the
//! tables are the source data of EXPERIMENTS.md.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pis_bench::{
    bucketize, fmt_f64, measure_queries, render_table, BucketSpec, BucketedSeries, ExperimentScale,
    QueryMeasurement, TestBed,
};
use pis_core::{PartitionAlgo, PisConfig, PisSearcher};
use pis_datasets::{AtomVocabulary, BondVocabulary, DatasetStats, MoleculeGenerator};
use pis_distance::MutationDistance;
use pis_graph::LabeledGraph;
use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::paths::path_features;

/// Fragment-size default for Figures 8–11 (Figure 12 sweeps 4–6).
const DEFAULT_FRAGMENT_EDGES: usize = 6;

fn main() {
    let args = Args::parse();
    fs::create_dir_all(&args.out).expect("cannot create output directory");
    let mut runner = Runner { args, bed6: None, fig8: None };
    let exps = runner.args.exps.clone();
    for exp in &exps {
        let started = Instant::now();
        let report = match exp.as_str() {
            "e0" => runner.exp_e0(),
            "fig8" => runner.exp_fig8(),
            "fig9" => runner.exp_fig9(),
            "fig10" => runner.exp_fig10(),
            "fig11" => runner.exp_fig11(),
            "fig12" => runner.exp_fig12(),
            "a1" => runner.exp_a1(),
            "a4" => runner.exp_a4(),
            other => {
                eprintln!("unknown experiment '{other}' (skipped)");
                continue;
            }
        };
        let stamped = format!("{report}\n[{exp} took {:?}]\n", started.elapsed());
        println!("{stamped}");
        let path = runner.args.out.join(format!("{exp}.txt"));
        fs::write(&path, &stamped).expect("cannot write experiment output");
    }
}

struct Args {
    exps: Vec<String>,
    scale: ExperimentScale,
    out: PathBuf,
}

impl Args {
    fn parse() -> Args {
        let mut exps: Vec<String> =
            vec!["e0", "fig8", "fig9", "fig10", "fig11", "fig12", "a1", "a4"]
                .into_iter()
                .map(String::from)
                .collect();
        let mut scale = ExperimentScale::default_scale();
        let mut out = PathBuf::from("bench_results");
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--exp" => {
                    i += 1;
                    let list = argv.get(i).expect("--exp needs a value");
                    if list != "all" {
                        exps = list.split(',').map(|s| s.trim().to_string()).collect();
                    }
                }
                "--scale" => {
                    i += 1;
                    scale = match argv.get(i).expect("--scale needs a value").as_str() {
                        "smoke" => ExperimentScale::smoke(),
                        "default" => ExperimentScale::default_scale(),
                        "full" => ExperimentScale::full(),
                        other => panic!("unknown scale '{other}'"),
                    };
                }
                "--out" => {
                    i += 1;
                    out = PathBuf::from(argv.get(i).expect("--out needs a value"));
                }
                other => panic!("unknown argument '{other}'"),
            }
            i += 1;
        }
        Args { exps, scale, out }
    }
}

struct Runner {
    args: Args,
    /// Cached testbed at the default fragment size (built lazily, shared
    /// by fig8–fig11 and the ablations).
    bed6: Option<TestBed>,
    /// Cached Q16 measurements shared by fig8/fig9.
    fig8: Option<(Vec<QueryMeasurement>, BucketSpec)>,
}

impl Runner {
    fn bed6(&mut self) -> &TestBed {
        if self.bed6.is_none() {
            let t = Instant::now();
            let bed = TestBed::build(&self.args.scale, DEFAULT_FRAGMENT_EDGES);
            eprintln!(
                "[setup] db={} features={} entries={} built in {:?}",
                bed.db.len(),
                bed.index.features().len(),
                bed.index.total_entries(),
                t.elapsed()
            );
            self.bed6 = Some(bed);
        }
        self.bed6.as_ref().expect("just built")
    }

    fn fig8_data(&mut self) -> &(Vec<QueryMeasurement>, BucketSpec) {
        if self.fig8.is_none() {
            let bed = self.bed6();
            let spec = BucketSpec::paper(bed.db.len());
            let queries = bed.query_set(16);
            let ms = measure_queries(bed, &queries, &[1.0, 2.0, 4.0], &PisConfig::default());
            self.fig8 = Some((ms, spec));
        }
        self.fig8.as_ref().expect("just built")
    }

    /// E0 — dataset statistics (the evaluation-setup paragraph).
    fn exp_e0(&mut self) -> String {
        let generator = MoleculeGenerator::default();
        let db = generator.database(self.args.scale.db_size, self.args.scale.seed);
        let stats = DatasetStats::compute(&db);
        let mut out = String::from(
            "# E0 — dataset statistics (paper: 10k graphs, avg 25V/27E, max 214V/217E)\n",
        );
        out.push_str(&stats.render(&AtomVocabulary::default(), &BondVocabulary::default()));
        out
    }

    /// Figure 8 — candidate counts for Q16.
    fn exp_fig8(&mut self) -> String {
        let (ms, spec) = self.fig8_data();
        let series = bucketize(ms, spec, 3);
        let mut report = series_table(
            "Figure 8 — structure query with 16 edges (avg candidate count)",
            &series,
            &["topoPrune", "PIS s=1", "PIS s=2", "PIS s=4"],
            false,
        );
        let mean_prune: Duration = ms.iter().flat_map(|m| m.prune_time.iter()).sum::<Duration>()
            / (ms.len() * 3).max(1) as u32;
        let _ = writeln!(report, "mean PIS pruning time per query: {mean_prune:?} (paper: <1s)");
        report
    }

    /// Figure 9 — reduction ratio for Q16.
    fn exp_fig9(&mut self) -> String {
        let (ms, spec) = self.fig8_data();
        let series = bucketize(ms, spec, 3);
        series_table(
            "Figure 9 — candidate reduction ratio Yt/Yp, Q16",
            &series,
            &["PIS s=1", "PIS s=2", "PIS s=4"],
            true,
        )
    }

    /// Figure 10 — reduction ratio for Q24, sigma 1/3/5.
    fn exp_fig10(&mut self) -> String {
        let bed = self.bed6();
        let spec = BucketSpec::paper(bed.db.len());
        let queries = bed.query_set(24);
        let ms = measure_queries(bed, &queries, &[1.0, 3.0, 5.0], &PisConfig::default());
        let series = bucketize(&ms, &spec, 3);
        series_table(
            "Figure 10 — candidate reduction ratio Yt/Yp, Q24",
            &series,
            &["PIS s=1", "PIS s=3", "PIS s=5"],
            true,
        )
    }

    /// Figure 11 — cutoff (lambda) sensitivity at Q16, sigma = 2.
    fn exp_fig11(&mut self) -> String {
        let bed = self.bed6();
        let spec = BucketSpec::paper(bed.db.len());
        let queries = bed.query_set(16);
        let lambdas = [0.5, 1.0, 2.0];
        let mut per_lambda: Vec<BucketedSeries> = Vec::new();
        for &lambda in &lambdas {
            let cfg = PisConfig { lambda, ..PisConfig::default() };
            let ms = measure_queries(bed, &queries, &[2.0], &cfg);
            per_lambda.push(bucketize(&ms, &spec, 1));
        }
        let headers: Vec<String> =
            ["bucket", "queries", "l=0.5", "l=1", "l=2"].iter().map(ToString::to_string).collect();
        let mut rows = Vec::new();
        for b in 0..spec.len() {
            let mut row =
                vec![per_lambda[0].names[b].to_string(), per_lambda[0].counts[b].to_string()];
            for series in &per_lambda {
                row.push(fmt_f64(series.reduction_ratio(0)[b]));
            }
            rows.push(row);
        }
        let mut report = render_table(
            "Figure 11 — cutoff value sensitivity (reduction ratio, Q16, sigma=2)",
            &headers,
            &rows,
        );
        let _ = writeln!(
            report,
            "expected shape: l=1 and l=2 coincide; l=0.5 is never better (paper Fig. 11)"
        );
        report
    }

    /// Figure 12 — maximum indexed fragment size 4/5/6.
    fn exp_fig12(&mut self) -> String {
        let spec = BucketSpec::paper(self.args.scale.db_size);
        let sizes = [4usize, 5, 6];
        let mut per_size: Vec<BucketedSeries> = Vec::new();
        let mut counts_row = None;
        for &size in &sizes {
            let bed = TestBed::build(&self.args.scale, size);
            let queries = bed.query_set(16);
            let ms = measure_queries(&bed, &queries, &[2.0], &PisConfig::default());
            let series = bucketize(&ms, &spec, 1);
            counts_row.get_or_insert_with(|| series.counts.clone());
            per_size.push(series);
        }
        let headers: Vec<String> = ["bucket", "queries", "size=4", "size=5", "size=6"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut rows = Vec::new();
        for b in 0..spec.len() {
            let mut row = vec![
                per_size[0].names[b].to_string(),
                counts_row.as_ref().expect("at least one size ran")[b].to_string(),
            ];
            for series in &per_size {
                row.push(fmt_f64(series.reduction_ratio(0)[b]));
            }
            rows.push(row);
        }
        let mut report = render_table(
            "Figure 12 — pruning vs max indexed fragment size (reduction ratio, Q16, sigma=2)",
            &headers,
            &rows,
        );
        let _ = writeln!(report, "expected shape: larger fragments prune harder (paper Fig. 12)");
        report
    }

    /// A1 — partition algorithm ablation: Greedy vs EnhancedGreedy(2) vs
    /// exact MWIS.
    fn exp_a1(&mut self) -> String {
        let bed = self.bed6();
        // Small queries keep the exact solver tractable (the
        // overlapping-relation graph grows with the fragment count).
        let queries = bed.query_set(8);
        let algos = [
            ("Greedy", PartitionAlgo::Greedy),
            ("Enhanced(2)", PartitionAlgo::EnhancedGreedy(2)),
            ("Exact", PartitionAlgo::Exact),
        ];
        let sigma = 2.0;
        let mut rows = Vec::new();
        let mut skipped = 0usize;
        // Probe fragment counts first so the exact solver never sees an
        // oversized overlapping-relation graph.
        let probe = PisSearcher::new(
            &bed.index,
            &bed.db,
            PisConfig { verify: false, structure_check: false, ..PisConfig::default() },
        );
        let usable: Vec<&LabeledGraph> = queries
            .iter()
            .filter(|q| {
                let frags = probe.search(q, sigma).stats.fragments_in_pool;
                if frags <= 100 {
                    true
                } else {
                    skipped += 1;
                    false
                }
            })
            .collect();
        for (name, algo) in algos {
            let cfg = PisConfig {
                partition: algo,
                verify: false,
                structure_check: false,
                ..PisConfig::default()
            };
            let searcher = PisSearcher::new(&bed.index, &bed.db, cfg);
            let mut weight = 0.0;
            let mut size = 0usize;
            let mut candidates = 0usize;
            let t = Instant::now();
            for q in &usable {
                let o = searcher.search(q, sigma);
                weight += o.stats.partition_weight;
                size += o.stats.partition_size;
                candidates += o.stats.candidates_after_partition;
            }
            let n = usable.len().max(1);
            rows.push(vec![
                name.to_string(),
                fmt_f64(weight / n as f64),
                fmt_f64(size as f64 / n as f64),
                fmt_f64(candidates as f64 / n as f64),
                format!("{:?}", t.elapsed() / n as u32),
            ]);
        }
        let headers: Vec<String> =
            ["algorithm", "avg partition weight", "avg |P|", "avg candidates", "avg time/query"]
                .iter()
                .map(ToString::to_string)
                .collect();
        let mut report =
            render_table("A1 — partition algorithm ablation (Q8, sigma=2)", &headers, &rows);
        let _ = writeln!(
            report,
            "{} of {} queries skipped for the exact solver (>100 fragments); paper: greedy ≈ enhanced on real data",
            skipped,
            queries.len()
        );
        report
    }

    /// A4 — feature-source ablation: gIndex structures vs GraphGrep
    /// paths.
    fn exp_a4(&mut self) -> String {
        let sigma = 2.0;
        let bed = self.bed6();
        let queries = bed.query_set(16);
        let gindex_ms = measure_queries(bed, &queries, &[sigma], &PisConfig::default());

        // Same database, path features only.
        let structures: Vec<LabeledGraph> = bed.db.iter().map(LabeledGraph::erase_labels).collect();
        let features = path_features(&structures, DEFAULT_FRAGMENT_EDGES);
        let path_index = FragmentIndex::build(
            &bed.db,
            features,
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let path_bed = TestBed {
            db: bed.db.clone(),
            index: path_index,
            scale: bed.scale.clone(),
            build_time: Duration::ZERO,
        };
        let path_ms = measure_queries(&path_bed, &queries, &[sigma], &PisConfig::default());

        let spec = BucketSpec::paper(bed.db.len());
        let g = bucketize(&gindex_ms, &spec, 1);
        let p = bucketize(&path_ms, &spec, 1);
        let headers: Vec<String> = ["bucket", "queries", "gIndex ratio", "paths ratio"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut rows = Vec::new();
        for b in 0..spec.len() {
            rows.push(vec![
                g.names[b].to_string(),
                g.counts[b].to_string(),
                fmt_f64(g.reduction_ratio(0)[b]),
                fmt_f64(p.reduction_ratio(0)[b]),
            ]);
        }
        let mut report = render_table(
            "A4 — feature source ablation (reduction ratio, Q16, sigma=2)",
            &headers,
            &rows,
        );
        let _ = writeln!(
            report,
            "gIndex features: {} classes; path features: {} classes",
            bed.index.features().len(),
            path_bed.index.features().len()
        );
        report
    }
}

/// Renders a bucket table: counts + one column per series row.
fn series_table(
    title: &str,
    series: &BucketedSeries,
    columns: &[&str],
    ratios_only: bool,
) -> String {
    let mut headers: Vec<String> = vec!["bucket".into(), "queries".into()];
    headers.extend(columns.iter().map(ToString::to_string));
    let mut rows = Vec::new();
    for b in 0..series.names.len() {
        let mut row = vec![series.names[b].to_string(), series.counts[b].to_string()];
        if ratios_only {
            for s in 0..series.avg_yp.len() {
                row.push(fmt_f64(series.reduction_ratio(s)[b]));
            }
        } else {
            row.push(fmt_f64(series.avg_yt[b]));
            for s in 0..series.avg_yp.len() {
                row.push(fmt_f64(series.avg_yp[s][b]));
            }
        }
        rows.push(row);
    }
    render_table(title, &headers, &rows)
}
