//! CI perf regression gate over `pipeline_bench` snapshots.
//!
//! Compares a freshly generated `BENCH_pipeline.json` against the
//! committed snapshot of the same scale and **fails (exit 1)** when any
//! gated experiment's optimized `min_ms` degrades beyond the threshold
//! (default: >20%, i.e. ratio 1.2):
//!
//! ```text
//! cargo run --release -p pis-bench --bin perf_gate -- \
//!     --fresh bench_results/BENCH_pipeline.json \
//!     --committed BENCH_pipeline_smoke.json \
//!     [--threshold 1.2] [--experiment pis_full] [--mode normalized|absolute]
//! ```
//!
//! The default `normalized` mode compares each snapshot's
//! optimized-to-reference `min_ms` ratio (the reference pipeline runs
//! in the same process on the same data, so machine speed cancels) —
//! the committed baseline can therefore come from any machine, and CI
//! runners of different generations gate identically. `absolute` mode
//! compares raw optimized `min_ms` and is only meaningful when both
//! snapshots come from the same machine class.
//!
//! Besides timing, the gate cross-checks the snapshots' *correctness
//! fingerprints*: the workload is seeded, so candidate/answer counts
//! are machine-independent and any count mismatch means behavior
//! changed — regenerate the committed snapshot deliberately in that
//! case (`pipeline_bench --scale smoke --iters 3 --out
//! BENCH_pipeline_smoke.json`).
//!
//! The parser handles exactly the JSON `pipeline_bench` emits (one
//! experiment object per line); it is not a general JSON reader.

use std::process::ExitCode;

/// One parsed experiment row.
#[derive(Clone, Debug, PartialEq)]
struct Row {
    name: String,
    variant: String,
    sigma: f64,
    min_ms: f64,
    count: u64,
}

/// The fields of a snapshot the gate compares.
#[derive(Clone, Debug, PartialEq)]
struct Snapshot {
    db_size: u64,
    queries: u64,
    rows: Vec<Row>,
    /// `enabled_count_drift` of the snapshot's `budget` line, when
    /// present: the answer-count difference between a budget-disabled
    /// run and an enabled-but-unlimited one. Anything but zero means
    /// the budget machinery changed behavior.
    budget_drift: Option<u64>,
    /// `pending_count_drift` of the snapshot's `durability` line, when
    /// present: the candidate-count difference between prune runs
    /// answered from the LSM pending buffer and the same store after
    /// compaction. Anything but zero means the buffer is visible in
    /// answers.
    pending_drift: Option<u64>,
}

fn main() -> ExitCode {
    let mut fresh_path = String::new();
    let mut committed_path = String::new();
    let mut threshold = 1.2f64;
    let mut experiment = "pis_full".to_string();
    let mut normalized = true;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fresh" => {
                i += 1;
                fresh_path = argv.get(i).expect("--fresh needs a path").clone();
            }
            "--committed" => {
                i += 1;
                committed_path = argv.get(i).expect("--committed needs a path").clone();
            }
            "--threshold" => {
                i += 1;
                threshold = argv
                    .get(i)
                    .expect("--threshold needs a value")
                    .parse()
                    .expect("threshold: f64");
            }
            "--experiment" => {
                i += 1;
                experiment = argv.get(i).expect("--experiment needs a name").clone();
            }
            "--mode" => {
                i += 1;
                normalized = match argv.get(i).expect("--mode needs a value").as_str() {
                    "normalized" => true,
                    "absolute" => false,
                    other => panic!("unknown mode '{other}' (normalized|absolute)"),
                };
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    assert!(
        !fresh_path.is_empty() && !committed_path.is_empty(),
        "--fresh and --committed are required"
    );
    let fresh_text = std::fs::read_to_string(&fresh_path)
        .unwrap_or_else(|e| panic!("cannot read fresh snapshot {fresh_path}: {e}"));
    let committed_text = std::fs::read_to_string(&committed_path)
        .unwrap_or_else(|e| panic!("cannot read committed snapshot {committed_path}: {e}"));
    let fresh = parse_snapshot(&fresh_text).expect("fresh snapshot parses");
    let committed = parse_snapshot(&committed_text).expect("committed snapshot parses");
    match gate(&fresh, &committed, &experiment, threshold, normalized) {
        Ok(report) => {
            println!("{report}");
            println!("[perf_gate] OK: {experiment} within {threshold}x of {committed_path}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("[perf_gate] FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the comparison; `Ok` carries a human-readable report, `Err` the
/// failure reason. In `normalized` mode the gated quantity is the
/// optimized-to-reference `min_ms` ratio of each snapshot (machine
/// speed cancels); otherwise raw optimized `min_ms`.
fn gate(
    fresh: &Snapshot,
    committed: &Snapshot,
    experiment: &str,
    threshold: f64,
    normalized: bool,
) -> Result<String, String> {
    if (fresh.db_size, fresh.queries) != (committed.db_size, committed.queries) {
        return Err(format!(
            "scale mismatch: fresh db={} q={} vs committed db={} q={} — \
             snapshots must be generated at the same pipeline_bench scale",
            fresh.db_size, fresh.queries, committed.db_size, committed.queries
        ));
    }
    // The budget fingerprint: an enabled-but-unlimited budget must
    // answer exactly like the disabled default.
    if let Some(drift) = fresh.budget_drift {
        if drift != 0 {
            return Err(format!(
                "budget line reports enabled_count_drift {drift}: enabling an \
                 unlimited budget changed answer counts"
            ));
        }
    }
    // The LSM fingerprint: queries answered through the pending buffer
    // must match the compacted store exactly.
    if let Some(drift) = fresh.pending_drift {
        if drift != 0 {
            return Err(format!(
                "durability line reports pending_count_drift {drift}: the LSM \
                 pending buffer changed candidate counts versus compaction"
            ));
        }
    }
    let find = |snap: &Snapshot, name: &str, variant: &str, sigma: f64| {
        snap.rows
            .iter()
            .find(|r| r.name == name && r.variant == variant && r.sigma == sigma)
            .cloned()
            .ok_or_else(|| format!("snapshot lacks row {name}/{variant} sigma {sigma}"))
    };
    let mut report = String::new();
    for c in &committed.rows {
        let f = find(fresh, &c.name, &c.variant, c.sigma).map_err(|e| format!("fresh {e}"))?;
        // Correctness fingerprint: the workload is seeded, so counts
        // are machine-independent.
        if f.count != c.count {
            return Err(format!(
                "count mismatch at {}/{} sigma {}: fresh {} vs committed {} — \
                 behavior changed; regenerate the committed snapshot if intended",
                c.name, c.variant, c.sigma, f.count, c.count
            ));
        }
        let gated = c.name == experiment && c.variant == "optimized";
        // Gated quantity: the machine-cancelling normalized ratio, or
        // the raw min_ms ratio in absolute mode.
        let ratio = if gated && normalized {
            let f_ref = find(fresh, &c.name, "reference", c.sigma)
                .map_err(|e| format!("fresh {e} (needed to normalize)"))?;
            let c_ref = find(committed, &c.name, "reference", c.sigma)
                .map_err(|e| format!("committed {e} (needed to normalize)"))?;
            (f.min_ms / f_ref.min_ms) / (c.min_ms / c_ref.min_ms)
        } else {
            f.min_ms / c.min_ms
        };
        report.push_str(&format!(
            "{:>10}/{:<9} sigma {:>3}: committed {:>8.3}ms fresh {:>8.3}ms ratio {:.2}{}\n",
            c.name,
            c.variant,
            c.sigma,
            c.min_ms,
            f.min_ms,
            ratio,
            if gated {
                if normalized {
                    "  [gated, vs reference]"
                } else {
                    "  [gated]"
                }
            } else {
                ""
            }
        ));
        if gated && ratio > threshold {
            return Err(format!(
                "{} optimized sigma {} degraded {:.0}% {}: {:.3}ms -> {:.3}ms (threshold {:.0}%)",
                c.name,
                c.sigma,
                (ratio - 1.0) * 100.0,
                if normalized { "relative to the in-run reference pipeline" } else { "" },
                c.min_ms,
                f.min_ms,
                (threshold - 1.0) * 100.0
            ));
        }
    }
    Ok(report)
}

/// Parses the subset of `pipeline_bench`'s JSON the gate needs: the
/// `scale` line and every object in the `experiments` array.
fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let mut db_size = None;
    let mut queries = None;
    let mut budget_drift = None;
    let mut pending_drift = None;
    let mut rows = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"scale\"") {
            db_size = Some(num_field(t, "db_size")? as u64);
            queries = Some(num_field(t, "queries")? as u64);
        } else if t.starts_with("\"budget\"") {
            budget_drift = Some(num_field(t, "enabled_count_drift")? as u64);
        } else if t.starts_with("\"durability\"") {
            pending_drift = Some(num_field(t, "pending_count_drift")? as u64);
        } else if t.starts_with("{\"name\"") {
            rows.push(Row {
                name: str_field(t, "name")?,
                variant: str_field(t, "variant")?,
                sigma: num_field(t, "sigma")?,
                min_ms: num_field(t, "min_ms")?,
                count: num_field(t, "count")? as u64,
            });
        }
    }
    if rows.is_empty() {
        return Err("no experiment rows found".to_string());
    }
    Ok(Snapshot {
        db_size: db_size.ok_or("missing scale.db_size")?,
        queries: queries.ok_or("missing scale.queries")?,
        rows,
        budget_drift,
        pending_drift,
    })
}

/// Extracts `"key": <number>` from a single JSON line.
fn num_field(line: &str, key: &str) -> Result<f64, String> {
    let tail = field_tail(line, key)?;
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().map_err(|_| format!("invalid number for '{key}' in: {line}"))
}

/// Extracts `"key": "<string>"` from a single JSON line.
fn str_field(line: &str, key: &str) -> Result<String, String> {
    let tail = field_tail(line, key)?;
    let tail = tail.strip_prefix('"').ok_or_else(|| format!("'{key}' is not a string"))?;
    let end = tail.find('"').ok_or_else(|| format!("unterminated string for '{key}'"))?;
    Ok(tail[..end].to_string())
}

fn field_tail<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).ok_or_else(|| format!("missing field '{key}' in: {line}"))?;
    Ok(line[at + pat.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = r#"{
  "bench": "pipeline",
  "scale": {"db_size": 100, "queries": 4, "query_edges": 16, "max_fragment_edges": 5, "seed": 20060403},
  "iters": 3,
  "experiments": [
    {"name": "pis_prune", "variant": "optimized", "sigma": 1, "min_ms": 4.000, "mean_ms": 4.2, "count": 10},
    {"name": "verification", "variant": "optimized", "sigma": 1, "min_ms": 2.000, "mean_ms": 2.1, "count": 13},
    {"name": "pis_full", "variant": "optimized", "sigma": 1, "min_ms": 5.000, "mean_ms": 5.2, "count": 3},
    {"name": "pis_full", "variant": "reference", "sigma": 1, "min_ms": 10.000, "mean_ms": 10.2, "count": 3}
  ]
}
"#;

    fn snap(min_full: f64, count_full: u64) -> Snapshot {
        let mut s = parse_snapshot(SNAP).unwrap();
        let row =
            s.rows.iter_mut().find(|r| r.name == "pis_full" && r.variant == "optimized").unwrap();
        row.min_ms = min_full;
        row.count = count_full;
        s
    }

    /// Scales every timing by `factor` — a uniformly slower/faster
    /// machine.
    fn rescaled(base: &Snapshot, factor: f64) -> Snapshot {
        let mut s = base.clone();
        for r in &mut s.rows {
            r.min_ms *= factor;
        }
        s
    }

    #[test]
    fn parses_pipeline_bench_output() {
        let s = parse_snapshot(SNAP).unwrap();
        assert_eq!((s.db_size, s.queries), (100, 4));
        assert_eq!(s.rows.len(), 4);
        assert_eq!(s.rows[0].name, "pis_prune");
        assert_eq!(s.rows[0].variant, "optimized");
        assert_eq!(s.rows[0].min_ms, 4.0);
        assert_eq!(s.rows[1].name, "verification");
        assert_eq!(s.rows[1].count, 13);
        assert_eq!(s.rows[2].count, 3);
        assert_eq!(s.rows[3].variant, "reference");
    }

    #[test]
    fn verification_row_count_is_cross_checked() {
        // The verification phase row carries `calls + answers` rather
        // than a candidate total, but its fingerprint is gated all the
        // same: a drift means verification behavior changed.
        let committed = parse_snapshot(SNAP).unwrap();
        let mut fresh = parse_snapshot(SNAP).unwrap();
        fresh.rows.iter_mut().find(|r| r.name == "verification").unwrap().count += 1;
        let err = gate(&fresh, &committed, "pis_full", 1.2, true).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
        assert!(err.contains("verification"), "{err}");
    }

    #[test]
    fn budget_line_is_parsed_and_gated() {
        let with_budget = SNAP.replace(
            "  \"iters\": 3,",
            "  \"iters\": 3,\n  \"budget\": {\"overhead_ns_per_query\": 120, \
             \"enabled_count_drift\": 0, \"tripped_checkpoints\": 9, \"tripped_work_units\": 640},",
        );
        let fresh = parse_snapshot(&with_budget).unwrap();
        assert_eq!(fresh.budget_drift, Some(0));
        let committed = parse_snapshot(SNAP).unwrap();
        assert_eq!(committed.budget_drift, None, "older snapshots lack the line");
        assert!(gate(&fresh, &committed, "pis_full", 1.2, true).is_ok());
        // A nonzero drift means the budget machinery changed behavior.
        let mut drifted = fresh.clone();
        drifted.budget_drift = Some(2);
        let err = gate(&drifted, &committed, "pis_full", 1.2, true).unwrap_err();
        assert!(err.contains("enabled_count_drift"), "{err}");
    }

    #[test]
    fn durability_line_is_parsed_and_gated() {
        let with_durability = SNAP.replace(
            "  \"iters\": 3,",
            "  \"iters\": 3,\n  \"durability\": {\"text_load_ms\": 12.400, \
             \"binary_load_ms\": 1.700, \"text_bytes\": 900000, \"snapshot_bytes\": 600000, \
             \"pending_small\": 6, \"pending_threshold\": 25, \"pending_count_drift\": 0},",
        );
        let fresh = parse_snapshot(&with_durability).unwrap();
        assert_eq!(fresh.pending_drift, Some(0));
        let committed = parse_snapshot(SNAP).unwrap();
        assert_eq!(committed.pending_drift, None, "older snapshots lack the line");
        assert!(gate(&fresh, &committed, "pis_full", 1.2, true).is_ok());
        // A nonzero drift means the pending buffer leaked into answers.
        let mut drifted = fresh.clone();
        drifted.pending_drift = Some(1);
        let err = gate(&drifted, &committed, "pis_full", 1.2, true).unwrap_err();
        assert!(err.contains("pending_count_drift"), "{err}");
    }

    #[test]
    fn within_threshold_passes() {
        let committed = snap(5.0, 3);
        let fresh = snap(5.9, 3); // +18% < 20%
        assert!(gate(&fresh, &committed, "pis_full", 1.2, false).is_ok());
        assert!(gate(&fresh, &committed, "pis_full", 1.2, true).is_ok());
    }

    #[test]
    fn regression_fails() {
        let committed = snap(5.0, 3);
        let fresh = snap(6.5, 3); // +30%, reference unchanged
        for normalized in [false, true] {
            let err = gate(&fresh, &committed, "pis_full", 1.2, normalized).unwrap_err();
            assert!(err.contains("degraded"), "{err}");
        }
    }

    #[test]
    fn normalized_mode_cancels_machine_speed() {
        // The fresh snapshot comes from a uniformly 2x slower machine:
        // raw min_ms doubles everywhere, so the absolute gate trips,
        // but optimized/reference is unchanged and the normalized gate
        // (the CI default) passes.
        let committed = snap(5.0, 3);
        let fresh = rescaled(&committed, 2.0);
        assert!(gate(&fresh, &committed, "pis_full", 1.2, false).is_err());
        assert!(gate(&fresh, &committed, "pis_full", 1.2, true).is_ok());
        // A genuine optimized-only regression on that slower machine
        // still fails the normalized gate.
        let mut bad = fresh.clone();
        bad.rows
            .iter_mut()
            .find(|r| r.name == "pis_full" && r.variant == "optimized")
            .unwrap()
            .min_ms *= 1.5;
        assert!(gate(&bad, &committed, "pis_full", 1.2, true).is_err());
    }

    #[test]
    fn ungated_experiments_only_report() {
        // pis_prune regresses but only pis_full is gated.
        let committed = parse_snapshot(SNAP).unwrap();
        let mut fresh = parse_snapshot(SNAP).unwrap();
        fresh.rows[0].min_ms = 40.0;
        assert!(gate(&fresh, &committed, "pis_full", 1.2, true).is_ok());
    }

    #[test]
    fn count_mismatch_fails() {
        let committed = snap(5.0, 3);
        let fresh = snap(5.0, 4);
        let err = gate(&fresh, &committed, "pis_full", 1.2, true).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
    }

    #[test]
    fn scale_mismatch_fails() {
        let committed = snap(5.0, 3);
        let mut fresh = snap(5.0, 3);
        fresh.db_size = 200;
        let err = gate(&fresh, &committed, "pis_full", 1.2, true).unwrap_err();
        assert!(err.contains("scale mismatch"), "{err}");
    }
}
