//! Machine-readable end-to-end pipeline benchmark — the perf
//! trajectory's data source.
//!
//! Times the optimized candidate funnel ([`PisSearcher::search_with_scratch`])
//! against the seed pipeline kept as executable specification
//! ([`PisSearcher::search_reference`]) on the same Q16 workload the
//! Criterion `bench_pipeline` uses, and writes the results as JSON:
//!
//! ```text
//! cargo run --release -p pis-bench --bin pipeline_bench -- \
//!     [--scale smoke|bench|default|full] [--iters N] [--out PATH]
//!
//!   --scale  smoke  = 100 graphs (CI);  bench = 200 graphs, the
//!            Criterion bench_pipeline setting (default);  default /
//!            full = the harness scales (2 000 / 10 000 graphs)
//!   --iters  timing repetitions per experiment (default 5; the JSON
//!            records min and mean)
//!   --out    output path (default BENCH_pipeline.json)
//! ```
//!
//! Every experiment row carries its candidate/answer total, so the JSON
//! doubles as a correctness fingerprint: optimized and reference rows
//! at the same sigma must report identical counts.
//!
//! Besides the end-to-end experiments, a `partition` row per sigma
//! isolates the partition stage of the optimized prune runs (building
//! the overlapping-relation graph `Q̃` + MWIS selection, timed by
//! `SearchScratch::take_partition_nanos`) so `perf_gate` can watch this
//! stage alone; its count fingerprint is the pis_prune candidate total.
//! A `verification` row per sigma does the same for the verification
//! stage of the optimized full runs (timed by
//! `SearchScratch::take_verify_stats`); its count fingerprint is
//! `verify calls + answers`.
//!
//! The durability layer is measured too: `durability_load` rows time a
//! full store load from the legacy text format versus the checksummed
//! binary snapshot (same content: database + index; count fingerprint =
//! entries + graphs), and `pending_scan` rows time the prune pipeline
//! with 0 / a few / a merge-threshold's worth of LSM pending inserts
//! stacked on a frozen base. A `durability` summary line carries
//! `pending_count_drift` — pending-buffer answers versus post-compaction
//! answers, gated to zero by `perf_gate`.
//!
//! The shard router is measured by `shard_scatter` rows: the prune
//! pipeline run through a 1-shard router (pure dispatch overhead) and a
//! 4-shard scatter-gather, per sigma. A healthy scatter may never
//! change the candidate set, so both variants carry the `pis_prune`
//! candidate total as their count fingerprint — asserted equal in-run
//! and cross-checked against the committed snapshot by `perf_gate`.
//! Replica retries and quarantine trips accumulated by the routers go
//! to stderr (both must be zero on a fault-free run).

use std::fmt::Write as _;
use std::time::Instant;

use pis_bench::pipeline_workload::{MAX_FRAGMENT_EDGES, QUERY_EDGES, SIGMAS};
use pis_bench::{pipeline_workload, ExperimentScale, TestBed};
use pis_core::{
    naive_scan, topo_prune, Completeness, PisConfig, PisSearcher, QueryBudget, SearchScratch,
    ShardConfig,
};
use pis_distance::MutationDistance;
use pis_graph::io::{parse_database, write_database};
use pis_graph::LabeledGraph;
use pis_index::{
    decode_snapshot, encode_snapshot, load_index, save_index, FragmentIndex, IndexConfig,
};

/// Criterion `bench_pipeline` wall times of the *seed* pipeline,
/// measured at the `bench` scale immediately before the funnel rework
/// landed (commit f01dbf4) — the perf trajectory's first recorded
/// point. `(name, sigma, ms_per_iter)`; one iter = the whole query set.
const PRE_REWORK_CRITERION_MS: [(&str, f64, f64); 6] = [
    ("pis_prune", 1.0, 16.23),
    ("pis_prune", 2.0, 25.33),
    ("pis_prune", 4.0, 45.83),
    ("pis_full", 1.0, 27.14),
    ("pis_full", 2.0, 49.02),
    ("pis_full", 4.0, 74.34),
];

/// Optimized-funnel wall times at the `bench` scale immediately before
/// the flat-trie arena landed (PR 2's committed `BENCH_pipeline.json`,
/// commit 9005382) — the perf trajectory's second recorded point.
const PRE_FLAT_TRIE_MS: [(&str, f64, f64); 6] = [
    ("pis_prune", 1.0, 8.073),
    ("pis_prune", 2.0, 12.570),
    ("pis_prune", 4.0, 19.742),
    ("pis_full", 1.0, 9.928),
    ("pis_full", 2.0, 16.823),
    ("pis_full", 4.0, 26.798),
];

/// Optimized-funnel wall times at the `bench` scale immediately before
/// the mask-native partition stage landed (PR 3's committed
/// `BENCH_pipeline.json`, commit c62e6f3) — the perf trajectory's third
/// recorded point.
const PRE_MASK_PARTITION_MS: [(&str, f64, f64); 6] = [
    ("pis_prune", 1.0, 4.586),
    ("pis_prune", 2.0, 6.409),
    ("pis_prune", 4.0, 9.128),
    ("pis_full", 1.0, 6.916),
    ("pis_full", 2.0, 10.356),
    ("pis_full", 4.0, 16.837),
];

/// Optimized-funnel wall times at the `bench` scale immediately before
/// the batched multi-probe range descent landed (PR 4's committed
/// `BENCH_pipeline.json`, commit ccb898f) — the perf trajectory's
/// fourth recorded point.
const PRE_BATCHED_DESCENT_MS: [(&str, f64, f64); 6] = [
    ("pis_prune", 1.0, 2.978),
    ("pis_prune", 2.0, 4.601),
    ("pis_prune", 4.0, 7.656),
    ("pis_full", 1.0, 4.670),
    ("pis_full", 2.0, 8.019),
    ("pis_full", 4.0, 15.267),
];

/// Optimized-funnel wall times at the `bench` scale immediately before
/// the bound-propagating verifier landed (PR 5's committed
/// `BENCH_pipeline.json`, commit bb8990a) — the perf trajectory's fifth
/// recorded point.
const PRE_BOUNDED_VERIFY_MS: [(&str, f64, f64); 6] = [
    ("pis_prune", 1.0, 2.271),
    ("pis_prune", 2.0, 3.526),
    ("pis_prune", 4.0, 5.599),
    ("pis_full", 1.0, 4.138),
    ("pis_full", 2.0, 7.756),
    ("pis_full", 4.0, 12.219),
];

fn main() {
    let mut scale_name = "bench".to_string();
    let mut iters = 5usize;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale_name = argv.get(i).expect("--scale needs a value").clone();
            }
            "--iters" => {
                i += 1;
                iters = argv.get(i).expect("--iters needs a value").parse().expect("iters: usize");
            }
            "--out" => {
                i += 1;
                out_path = argv.get(i).expect("--out needs a value").clone();
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    let scale = match scale_name.as_str() {
        "smoke" => ExperimentScale { db_size: 100, query_count: 4, ..ExperimentScale::smoke() },
        "bench" => pipeline_workload::scale(),
        "default" => ExperimentScale::default_scale(),
        "full" => ExperimentScale::full(),
        other => panic!("unknown scale '{other}'"),
    };

    eprintln!("[pipeline_bench] building testbed (db={} graphs)...", scale.db_size);
    let bed = TestBed::build(&scale, MAX_FRAGMENT_EDGES);
    let queries = bed.query_set(QUERY_EDGES);
    let md = MutationDistance::edge_hamming();

    let prune_cfg = PisConfig { verify: false, structure_check: false, ..PisConfig::default() };
    let pruner = PisSearcher::new(&bed.index, &bed.db, prune_cfg.clone());
    let full = PisSearcher::new(&bed.index, &bed.db, PisConfig::default());

    let mut rows: Vec<Row> = Vec::new();
    for sigma in SIGMAS {
        let mut scratch = SearchScratch::new();
        rows.push(measure("pis_prune", "optimized", sigma, iters, || {
            queries
                .iter()
                .map(|q| pruner.search_with_scratch(q, sigma, &mut scratch).candidates.len())
                .sum()
        }));
        // The partition phase (building Q̃ + MWIS) of the same prune
        // runs, timed by the scratch's internal phase counter. Its count
        // fingerprint is the pis_prune candidate total, so the perf gate
        // cross-checks it like any other row.
        let mut scratch = SearchScratch::new();
        rows.push(measure_phase("partition", "optimized", sigma, iters, || {
            let count = queries
                .iter()
                .map(|q| pruner.search_with_scratch(q, sigma, &mut scratch).candidates.len())
                .sum();
            (count, scratch.take_partition_nanos() as f64 / 1e6)
        }));
        // The range-query phase of the same prune runs. Its count
        // fingerprint is the total range-query hits over the query set
        // (distinct (probe, graph) pairs — machine-independent, and
        // identical between the batched and the per-probe descent), so
        // a count drift flags a behavior change in the phase itself.
        let mut scratch = SearchScratch::new();
        rows.push(measure_phase("range_query", "optimized", sigma, iters, || {
            for q in queries.iter() {
                pruner.search_with_scratch(q, sigma, &mut scratch);
            }
            let (nanos, hits) = scratch.take_range_query_stats();
            (hits as usize, nanos as f64 / 1e6)
        }));
        let mut scratch = SearchScratch::new();
        rows.push(measure("pis_full", "optimized", sigma, iters, || {
            queries
                .iter()
                .map(|q| full.search_with_scratch(q, sigma, &mut scratch).answers.len())
                .sum()
        }));
        // The verification phase of the same full runs, timed by the
        // verifier's internal stats counter (wall time inside
        // `VerifyScratch` on the serial path; summed across workers when
        // the batch goes parallel). Its count fingerprint is the
        // machine-independent pair `verify calls + answers`, so a drift
        // in either the candidates reaching verification or the verified
        // answers flags a behavior change in the phase itself.
        let mut scratch = SearchScratch::new();
        rows.push(measure_phase("verification", "optimized", sigma, iters, || {
            let answers: usize = queries
                .iter()
                .map(|q| full.search_with_scratch(q, sigma, &mut scratch).answers.len())
                .sum();
            let stats = scratch.take_verify_stats();
            (stats.calls as usize + answers, stats.nanos as f64 / 1e6)
        }));
        rows.push(measure("pis_prune", "reference", sigma, iters, || {
            queries.iter().map(|q| pruner.search_reference(q, sigma).candidates.len()).sum()
        }));
        rows.push(measure("pis_full", "reference", sigma, iters, || {
            queries.iter().map(|q| full.search_reference(q, sigma).answers.len()).sum()
        }));
        rows.push(measure("topo_prune", "baseline", sigma, iters, || {
            queries.iter().map(|q| topo_prune(&bed.index, &bed.db, q, sigma).answers.len()).sum()
        }));
        rows.push(measure("naive_scan", "baseline", sigma, iters, || {
            queries.iter().map(|q| naive_scan(&bed.db, q, &md, sigma).answers.len()).sum()
        }));
    }
    check_fingerprints(&rows);
    let durability = measure_durability(&bed, &queries, &prune_cfg, iters, &mut rows);
    eprintln!(
        "[pipeline_bench] durability: text load {:.2}ms vs binary {:.2}ms ({:.1}x), \
         pending count drift {}",
        durability.text_load_ms,
        durability.binary_load_ms,
        durability.text_load_ms / durability.binary_load_ms,
        durability.pending_count_drift
    );
    let (shard_retries, shard_quarantines) =
        measure_shard(&bed, &queries, &prune_cfg, iters, &mut rows);
    eprintln!(
        "[pipeline_bench] shard: {shard_retries} replica retries, {shard_quarantines} \
         quarantine trips across the scatter rows (a fault-free run has 0 of each)"
    );
    let budget = measure_budget(&full, &queries, iters);
    eprintln!(
        "[pipeline_bench] budget: {:.0}ns/query overhead enabled-vs-disabled, \
         count drift {}, {} checkpoints / {} work units on tripped runs",
        budget.overhead_ns_per_query,
        budget.enabled_count_drift,
        budget.tripped_checkpoints,
        budget.tripped_work_units
    );

    let json = render_json(&scale, &queries, iters, &prune_cfg, &rows, &budget, &durability);
    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("{json}");
    eprintln!("[pipeline_bench] wrote {out_path}");
}

struct Row {
    name: &'static str,
    variant: &'static str,
    sigma: f64,
    min_ms: f64,
    mean_ms: f64,
    /// Candidate (prune rows) or answer (full rows) total over the
    /// query set — the correctness fingerprint.
    count: usize,
}

/// Times `iters` wall-clocked runs of `work` (after one warm-up) and
/// records the count the last run produced.
fn measure(
    name: &'static str,
    variant: &'static str,
    sigma: f64,
    iters: usize,
    mut work: impl FnMut() -> usize,
) -> Row {
    measure_phase(name, variant, sigma, iters, || {
        let t = Instant::now();
        let count = work();
        (count, t.elapsed().as_secs_f64() * 1e3)
    })
}

/// Shared measurement loop: `work` returns `(count, ms)` per run —
/// wall-clocked by [`measure`], or self-reported for sub-phases whose
/// time the workload tracks itself (the partition rows).
fn measure_phase(
    name: &'static str,
    variant: &'static str,
    sigma: f64,
    iters: usize,
    mut work: impl FnMut() -> (usize, f64),
) -> Row {
    let (mut count, _) = work(); // warm-up
    let mut min_ms = f64::INFINITY;
    let mut total_ms = 0.0;
    for _ in 0..iters.max(1) {
        let (c, ms) = work();
        count = c;
        min_ms = min_ms.min(ms);
        total_ms += ms;
    }
    eprintln!("[pipeline_bench] {name}/{variant} sigma={sigma}: {min_ms:.2}ms (count {count})");
    Row { name, variant, sigma, min_ms, mean_ms: total_ms / iters.max(1) as f64, count }
}

/// Measures the sharded scatter-gather: one `shard_scatter` row per
/// sigma and shard count — N=1 (pure router/dispatch overhead over the
/// unsharded funnel) versus N=4 (a real scatter, merge included). A
/// healthy scatter may never change the candidate set, so both variants
/// report the `pis_prune` candidate total as their fingerprint and the
/// two are asserted equal in-run. Returns the replica retries and
/// quarantine trips the routers accumulated, for the stderr summary —
/// a fault-free bench run must report zero of each.
fn measure_shard(
    bed: &TestBed,
    queries: &[LabeledGraph],
    prune_cfg: &PisConfig,
    iters: usize,
    rows: &mut Vec<Row>,
) -> (u64, u64) {
    let mut retries = 0u64;
    let mut quarantine_trips = 0u64;
    for sigma in SIGMAS {
        let mut counts = Vec::new();
        for (variant, shards) in [("n1", 1usize), ("n4", 4usize)] {
            let cfg = PisConfig { shard: Some(ShardConfig::new(shards)), ..prune_cfg.clone() };
            let searcher = PisSearcher::new(&bed.index, &bed.db, cfg);
            let mut scratch = SearchScratch::new();
            let row = measure("shard_scatter", variant, sigma, iters, || {
                queries
                    .iter()
                    .map(|q| searcher.search_with_scratch(q, sigma, &mut scratch).candidates.len())
                    .sum()
            });
            counts.push(row.count);
            rows.push(row);
            for health in searcher.router().expect("a sharded searcher has a router").health() {
                retries += health.retries;
                quarantine_trips += health.quarantine_trips;
            }
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "shard count changed the candidate set at sigma {sigma}: {counts:?}"
        );
    }
    (retries, quarantine_trips)
}

/// The JSON `budget` line: what the budget machinery costs and does on
/// this workload.
struct BudgetLine {
    /// Per-query overhead (min over iters) of an enabled but
    /// never-tripping budget over the disabled default — the price of
    /// checkpoint accounting when a caller sets any limit.
    overhead_ns_per_query: f64,
    /// Total answer-count difference between those two runs. Must be
    /// zero — an unlimited budget may not change behavior; `perf_gate`
    /// fails on any other value.
    enabled_count_drift: u64,
    /// Checkpoints consulted across deliberately tripped runs (a small
    /// node budget), summed over the query set.
    tripped_checkpoints: u64,
    /// Work units charged across those tripped runs.
    tripped_work_units: u64,
}

/// Measures the budget machinery on the full pipeline at the largest
/// sigma (the most checkpoints per query).
fn measure_budget(full: &PisSearcher<'_>, queries: &[LabeledGraph], iters: usize) -> BudgetLine {
    let sigma = *SIGMAS.last().expect("sigma set is non-empty");
    let disabled = QueryBudget::unlimited();
    let enabled = QueryBudget { node_limit: Some(u64::MAX), ..QueryBudget::default() };
    let mut scratch = SearchScratch::new();
    let mut run = |budget: &QueryBudget| -> (usize, f64) {
        let t = Instant::now();
        let answers = queries
            .iter()
            .map(|q| {
                full.search_budgeted_with_scratch(q, sigma, budget, &mut scratch).answers.len()
            })
            .sum();
        (answers, t.elapsed().as_nanos() as f64)
    };
    run(&disabled); // warm-up
    let mut disabled_ns = f64::INFINITY;
    let mut enabled_ns = f64::INFINITY;
    let mut drift = 0u64;
    for _ in 0..iters.max(1) {
        let (a, ns) = run(&disabled);
        disabled_ns = disabled_ns.min(ns);
        let (b, ns) = run(&enabled);
        enabled_ns = enabled_ns.min(ns);
        drift += a.abs_diff(b) as u64;
    }
    // Deliberately tripped runs: the truncated outcomes report how many
    // checkpoints were consulted on the way down.
    let tripping = QueryBudget { node_limit: Some(64), ..QueryBudget::default() };
    let mut tripped_checkpoints = 0u64;
    let mut tripped_work_units = 0u64;
    for q in queries {
        let outcome = full.search_budgeted_with_scratch(q, sigma, &tripping, &mut scratch);
        if let Completeness::Truncated { stats, .. } = outcome.completeness {
            tripped_checkpoints += stats.checkpoints;
            tripped_work_units += stats.work_units;
        }
    }
    BudgetLine {
        overhead_ns_per_query: (enabled_ns - disabled_ns) / queries.len().max(1) as f64,
        enabled_count_drift: drift,
        tripped_checkpoints,
        tripped_work_units,
    }
}

/// The JSON `durability` line: what the persistence layer costs on this
/// workload.
struct DurabilityLine {
    /// Min wall time to load the full store (database + index) from the
    /// legacy line-oriented text format.
    text_load_ms: f64,
    /// Min wall time to load the same store from the checksummed binary
    /// snapshot (header/table validation + CRC sweep included).
    binary_load_ms: f64,
    /// Serialized size of the text store (database + index files).
    text_bytes: usize,
    /// Serialized size of the binary snapshot.
    snapshot_bytes: usize,
    /// LSM pending inserts in the `pending_small` / `pending_threshold`
    /// scan rows.
    pending_small: usize,
    pending_threshold: usize,
    /// Total candidate-count difference between prune runs answered from
    /// the frozen-base + pending buffer and the same store after
    /// compaction, summed over every sigma. The LSM contract says the
    /// buffer is invisible to answers, so this must be zero; `perf_gate`
    /// fails on any other value.
    pending_count_drift: u64,
}

/// Measures the durability layer: text-vs-binary load time (appended to
/// `rows` as `durability_load` so the committed snapshot cross-checks
/// the entry counts) and the query-time cost of an LSM pending buffer
/// at three fill levels (`pending_scan` rows), plus the
/// pending-vs-compacted answer drift.
fn measure_durability(
    bed: &TestBed,
    queries: &[LabeledGraph],
    prune_cfg: &PisConfig,
    iters: usize,
    rows: &mut Vec<Row>,
) -> DurabilityLine {
    // --- Load-path comparison: same content, two formats. ---
    let db_text = write_database(&bed.db);
    let mut index_text = Vec::new();
    save_index(&bed.index, &mut index_text).expect("text serialization");
    let snapshot = encode_snapshot(&bed.index, &bed.db).expect("snapshot encodes");
    // Count fingerprint for both variants: entries + graphs, so a format
    // that silently drops content can't pass the gate.
    let text_row = measure_phase("durability_load", "text", 0.0, iters, || {
        let t = Instant::now();
        let db = parse_database(&db_text).expect("text database round-trip");
        let idx = load_index(&index_text[..]).expect("text index round-trip");
        (idx.total_entries() + db.len(), t.elapsed().as_secs_f64() * 1e3)
    });
    let binary_row = measure_phase("durability_load", "binary", 0.0, iters, || {
        let t = Instant::now();
        let (idx, db) = decode_snapshot(&snapshot).expect("snapshot round-trip");
        (idx.total_entries() + db.len(), t.elapsed().as_secs_f64() * 1e3)
    });
    assert_eq!(text_row.count, binary_row.count, "the two formats must load the same store");
    let (text_load_ms, binary_load_ms) = (text_row.min_ms, binary_row.min_ms);
    let text_bytes = db_text.len() + index_text.len();
    let snapshot_bytes = snapshot.len();
    rows.push(text_row);
    rows.push(binary_row);

    // --- Pending-scan overhead: rebuild the same index with the last k
    // graphs held back and LSM-inserted, so the frozen structures cover
    // n-k graphs and every query pays a k-graph pending scan per class.
    let n = bed.db.len();
    let pending_small = (n / 16).max(1);
    let pending_threshold = (n / 4).max(2);
    let base = |k: usize| -> FragmentIndex {
        // A threshold the fills below never reach, so the buffer stays
        // resident for the duration of the measurement.
        let cfg = IndexConfig { merge_threshold: usize::MAX, ..IndexConfig::default() };
        let mut idx = FragmentIndex::build(
            &bed.db[..n - k],
            bed.index.features().clone(),
            bed.index.distance().clone(),
            &cfg,
        );
        for g in &bed.db[n - k..] {
            idx.insert_graph_pending(g);
        }
        idx
    };
    let sigma = SIGMAS[SIGMAS.len() / 2];
    let mut fill_counts = Vec::new();
    for (variant, k) in [
        ("pending0", 0),
        ("pending_small", pending_small),
        ("pending_threshold", pending_threshold),
    ] {
        let idx = base(k);
        let searcher = PisSearcher::new(&idx, &bed.db, prune_cfg.clone());
        let mut scratch = SearchScratch::new();
        let row = measure("pending_scan", variant, sigma, iters, || {
            queries
                .iter()
                .map(|q| searcher.search_with_scratch(q, sigma, &mut scratch).candidates.len())
                .sum()
        });
        fill_counts.push(row.count);
        rows.push(row);
    }
    assert!(
        fill_counts.windows(2).all(|w| w[0] == w[1]),
        "pending fill level changed the candidate set: {fill_counts:?}"
    );

    // --- Drift check: the fullest pending buffer versus the same store
    // compacted, across every sigma.
    let mut idx = base(pending_threshold);
    let answers = |idx: &FragmentIndex| -> Vec<usize> {
        let searcher = PisSearcher::new(idx, &bed.db, prune_cfg.clone());
        let mut scratch = SearchScratch::new();
        SIGMAS
            .iter()
            .map(|&s| {
                queries
                    .iter()
                    .map(|q| searcher.search_with_scratch(q, s, &mut scratch).candidates.len())
                    .sum()
            })
            .collect()
    };
    let pending_answers = answers(&idx);
    idx.compact();
    assert_eq!(idx.pending_entries(), 0, "compaction must drain the buffer");
    let compacted_answers = answers(&idx);
    let pending_count_drift =
        pending_answers.iter().zip(&compacted_answers).map(|(a, b)| a.abs_diff(*b) as u64).sum();

    DurabilityLine {
        text_load_ms,
        binary_load_ms,
        text_bytes,
        snapshot_bytes,
        pending_small,
        pending_threshold,
        pending_count_drift,
    }
}

/// Optimized and reference rows of the same experiment must agree on
/// their candidate/answer totals, and the partition-phase rows (which
/// run the same prune traversal) must reproduce the pis_prune
/// fingerprints exactly.
fn check_fingerprints(rows: &[Row]) {
    for a in rows.iter().filter(|r| r.variant == "optimized") {
        // The range_query and verification phase rows have no in-run
        // twin (their counts are phase statistics, not candidate/answer
        // totals); `perf_gate` cross-checks them against the committed
        // snapshot instead.
        if a.name == "range_query" || a.name == "verification" {
            continue;
        }
        let twin_name = if a.name == "partition" { "pis_prune" } else { a.name };
        let twin_variant = if a.name == "partition" { "optimized" } else { "reference" };
        let b = rows
            .iter()
            .find(|r| r.variant == twin_variant && r.name == twin_name && r.sigma == a.sigma)
            .expect("every optimized row has a fingerprint twin");
        assert_eq!(
            a.count, b.count,
            "fingerprint mismatch between {}/{} and {}/{} at sigma {}",
            a.name, a.variant, twin_name, twin_variant, a.sigma
        );
    }
}

fn render_json(
    scale: &ExperimentScale,
    queries: &[LabeledGraph],
    iters: usize,
    cfg: &PisConfig,
    rows: &[Row],
    budget: &BudgetLine,
    durability: &DurabilityLine,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"pipeline\",");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"db_size\": {}, \"queries\": {}, \"query_edges\": {}, \"max_fragment_edges\": {}, \"seed\": {}}},",
        scale.db_size,
        queries.len(),
        QUERY_EDGES,
        MAX_FRAGMENT_EDGES,
        scale.seed
    );
    let _ = writeln!(s, "  \"iters\": {iters},");
    // The parallel break-even thresholds the run searched with, so
    // many-core tuning runs (which override them through `PisConfig`)
    // stay reproducible from the artifact alone.
    let _ = writeln!(
        s,
        "  \"thresholds\": {{\"parallel_fragment\": {}, \"parallel_verify\": {}}},",
        cfg.parallel_fragment_threshold, cfg.parallel_verify_threshold
    );
    // The budget machinery, measured rather than asserted: overhead of
    // enabled-but-unlimited over disabled, behavior drift between the
    // two (gated to zero by `perf_gate`), and checkpoint counters from
    // tripped runs.
    let _ = writeln!(
        s,
        "  \"budget\": {{\"overhead_ns_per_query\": {:.0}, \"enabled_count_drift\": {}, \"tripped_checkpoints\": {}, \"tripped_work_units\": {}}},",
        budget.overhead_ns_per_query,
        budget.enabled_count_drift,
        budget.tripped_checkpoints,
        budget.tripped_work_units
    );
    // The durability layer, measured the same way: load time per format,
    // serialized sizes, the pending fill levels the scan rows used, and
    // the pending-vs-compacted answer drift (gated to zero).
    let _ = writeln!(
        s,
        "  \"durability\": {{\"text_load_ms\": {:.3}, \"binary_load_ms\": {:.3}, \"text_bytes\": {}, \"snapshot_bytes\": {}, \"pending_small\": {}, \"pending_threshold\": {}, \"pending_count_drift\": {}}},",
        durability.text_load_ms,
        durability.binary_load_ms,
        durability.text_bytes,
        durability.snapshot_bytes,
        durability.pending_small,
        durability.pending_threshold,
        durability.pending_count_drift
    );
    s.push_str("  \"experiments\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"variant\": \"{}\", \"sigma\": {}, \"min_ms\": {:.3}, \"mean_ms\": {:.3}, \"count\": {}}}{}",
            r.name, r.variant, r.sigma, r.min_ms, r.mean_ms, r.count, comma
        );
    }
    s.push_str("  ],\n");
    // Convenience summary: optimized-vs-reference speedups per sigma.
    s.push_str("  \"speedup_vs_reference\": {\n");
    for (ni, name) in ["pis_prune", "pis_full"].iter().enumerate() {
        let _ = write!(s, "    \"{name}\": {{");
        for (si, sigma) in SIGMAS.iter().enumerate() {
            let opt = rows
                .iter()
                .find(|r| r.name == *name && r.variant == "optimized" && r.sigma == *sigma)
                .expect("row exists");
            let reference = rows
                .iter()
                .find(|r| r.name == *name && r.variant == "reference" && r.sigma == *sigma)
                .expect("row exists");
            let comma = if si + 1 == SIGMAS.len() { "" } else { ", " };
            let _ = write!(s, "\"{}\": {:.2}{}", sigma, reference.min_ms / opt.min_ms, comma);
        }
        let _ = writeln!(s, "}}{}", if ni == 0 { "," } else { "" });
    }
    // At the scale the recorded baselines were measured at, also report
    // the speedup against each prior PR's committed numbers (same
    // machine class and workload).
    if scale.db_size == pipeline_workload::scale().db_size {
        s.push_str("  },\n");
        baseline_section(&mut s, "pre_rework_baseline", &PRE_REWORK_CRITERION_MS, rows, true);
        baseline_section(&mut s, "pre_flat_trie_baseline", &PRE_FLAT_TRIE_MS, rows, true);
        baseline_section(&mut s, "pre_mask_partition_baseline", &PRE_MASK_PARTITION_MS, rows, true);
        baseline_section(
            &mut s,
            "pre_batched_descent_baseline",
            &PRE_BATCHED_DESCENT_MS,
            rows,
            true,
        );
        baseline_section(
            &mut s,
            "pre_bounded_verify_baseline",
            &PRE_BOUNDED_VERIFY_MS,
            rows,
            false,
        );
    } else {
        s.push_str("  }\n");
    }
    s.push_str("}\n");
    s
}

/// Renders one `"name": {experiment: {sigma: {baseline_ms, now_ms,
/// speedup}}}` block comparing the current optimized rows against a
/// recorded baseline table.
fn baseline_section(
    s: &mut String,
    section: &str,
    table: &[(&str, f64, f64)],
    rows: &[Row],
    trailing_comma: bool,
) {
    let _ = writeln!(s, "  \"{section}\": {{");
    for (ni, name) in ["pis_prune", "pis_full"].iter().enumerate() {
        let _ = write!(s, "    \"{name}\": {{");
        for (si, sigma) in SIGMAS.iter().enumerate() {
            let baseline_ms = table
                .iter()
                .find(|(n, sg, _)| n == name && sg == sigma)
                .map(|(_, _, ms)| *ms)
                .expect("baseline recorded for every experiment");
            let opt = rows
                .iter()
                .find(|r| r.name == *name && r.variant == "optimized" && r.sigma == *sigma)
                .expect("row exists");
            let comma = if si + 1 == SIGMAS.len() { "" } else { ", " };
            let _ = write!(
                s,
                "\"{}\": {{\"baseline_ms\": {:.2}, \"now_ms\": {:.2}, \"speedup\": {:.2}}}{}",
                sigma,
                baseline_ms,
                opt.min_ms,
                baseline_ms / opt.min_ms,
                comma
            );
        }
        let _ = writeln!(s, "}}{}", if ni == 0 { "," } else { "" });
    }
    let _ = writeln!(s, "  }}{}", if trailing_comma { "," } else { "" });
}
