//! Quick performance probe: one medium testbed, a handful of queries,
//! raw `yt`/`yp`/timing lines. Use it to sanity-check a machine or a
//! code change in seconds, before committing to a full `figures` run.
//!
//! Run with: `cargo run --release -p pis-bench --bin probe`

use std::time::Instant;

use pis_bench::{measure_queries, ExperimentScale, TestBed};
use pis_core::PisConfig;

fn main() {
    let scale = ExperimentScale { db_size: 1000, query_count: 5, ..ExperimentScale::smoke() };
    let t0 = Instant::now();
    let bed = TestBed::build(&scale, 6);
    println!(
        "db={} features={} entries={} build={:?} (index {:?})",
        bed.db.len(),
        bed.index.features().len(),
        bed.index.total_entries(),
        t0.elapsed(),
        bed.build_time
    );
    let queries = bed.query_set(16);
    let t1 = Instant::now();
    let ms = measure_queries(&bed, &queries, &[1.0, 2.0, 4.0], &PisConfig::default());
    println!("measured {} queries in {:?}", ms.len(), t1.elapsed());
    for m in &ms {
        println!("yt={} yp={:?} prune={:?}", m.yt, m.yp, m.prune_time);
    }
}
