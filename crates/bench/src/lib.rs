//! Benchmark harness for the PIS evaluation (Section 7).
//!
//! [`TestBed`] assembles the evaluation setting — synthetic AIDS-like
//! database, gIndex features, fragment index — and the measurement
//! helpers reproduce the paper's protocol: query sets `Qm`, candidate
//! counts `Yt` (topoPrune) and `Yp` (PIS), bucketing by `Yt`
//! (`Q<300 … Q>5k`, thresholds scaled to the database size), and
//! reduction ratios. The `figures` binary drives everything; Criterion
//! micro-benches live under `benches/`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use pis_core::{PisConfig, PisSearcher};
use pis_datasets::{sample_query_set, MoleculeConfig, MoleculeGenerator};
use pis_distance::MutationDistance;
use pis_graph::{GraphId, LabeledGraph};
use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::{select_features, GindexConfig};

/// Scale of an experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentScale {
    /// Number of database graphs.
    pub db_size: usize,
    /// Queries per query set.
    pub query_count: usize,
    /// RNG seed shared by generation and sampling.
    pub seed: u64,
    /// gIndex feature budget.
    pub max_features: usize,
    /// gIndex minimum support fraction for 1-edge structures.
    pub min_support_fraction: f64,
}

impl ExperimentScale {
    /// Tiny scale for CI smoke runs.
    pub fn smoke() -> Self {
        ExperimentScale {
            db_size: 150,
            query_count: 8,
            seed: 20060403, // ICDE'06 opening day
            max_features: 300,
            min_support_fraction: 0.02,
        }
    }

    /// Default harness scale (candidate ratios are scale-stable; see
    /// `DESIGN.md` §4.5).
    pub fn default_scale() -> Self {
        ExperimentScale { db_size: 2000, query_count: 25, ..ExperimentScale::smoke() }
    }

    /// The paper's full 10 000-graph setting.
    pub fn full() -> Self {
        ExperimentScale { db_size: 10_000, query_count: 40, ..ExperimentScale::smoke() }
    }
}

/// The canonical end-to-end pipeline workload, shared by the Criterion
/// `bench_pipeline` bench and the `pipeline_bench` JSON bin so their
/// numbers stay comparable (and comparable to the recorded perf
/// trajectory in `BENCH_pipeline.json`).
pub mod pipeline_workload {
    use super::ExperimentScale;

    /// Indexed fragment size.
    pub const MAX_FRAGMENT_EDGES: usize = 5;
    /// Query edge count (the paper's Q16 set).
    pub const QUERY_EDGES: usize = 16;
    /// Thresholds swept.
    pub const SIGMAS: [f64; 3] = [1.0, 2.0, 4.0];

    /// The scale both benchmarks run at.
    pub fn scale() -> ExperimentScale {
        ExperimentScale { db_size: 200, query_count: 5, ..ExperimentScale::smoke() }
    }
}

/// A built evaluation environment.
pub struct TestBed {
    /// The synthetic database.
    pub db: Vec<LabeledGraph>,
    /// Fragment index (edge-Hamming mutation distance).
    pub index: FragmentIndex,
    /// The scale it was built at.
    pub scale: ExperimentScale,
    /// Wall time spent building the index.
    pub build_time: Duration,
}

impl TestBed {
    /// Generates the database and builds the index with fragments of at
    /// most `max_fragment_edges` edges (the paper's default is 5;
    /// Figure 12 sweeps 4–6).
    pub fn build(scale: &ExperimentScale, max_fragment_edges: usize) -> TestBed {
        let generator = MoleculeGenerator::new(MoleculeConfig::default());
        let db = generator.database(scale.db_size, scale.seed);
        TestBed::from_db(db, scale, max_fragment_edges)
    }

    /// Builds a testbed over an existing database.
    pub fn from_db(
        db: Vec<LabeledGraph>,
        scale: &ExperimentScale,
        max_fragment_edges: usize,
    ) -> TestBed {
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = select_features(
            &structures,
            &GindexConfig {
                max_edges: max_fragment_edges,
                max_features: scale.max_features,
                min_support_fraction: scale.min_support_fraction,
                ..GindexConfig::default()
            },
        );
        let start = Instant::now();
        let index = FragmentIndex::build(
            &db,
            features,
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let build_time = start.elapsed();
        TestBed { db, index, scale: scale.clone(), build_time }
    }

    /// Samples the paper's query set `Qm`.
    pub fn query_set(&self, m: usize) -> Vec<LabeledGraph> {
        sample_query_set(&self.db, m, self.scale.query_count, self.scale.seed ^ m as u64)
    }
}

/// Measurements for one query.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// topoPrune candidate count (structure-containing graphs).
    pub yt: usize,
    /// PIS candidate count per sigma, restricted to structure-containing
    /// graphs so `yp ≤ yt` (both feed the same verifier; `DESIGN.md` §3).
    pub yp: Vec<usize>,
    /// PIS pruning wall time per sigma (excludes verification).
    pub prune_time: Vec<Duration>,
}

/// Runs topoPrune and PIS (at each `sigma`, with `config` as the base
/// search configuration) over a query set.
pub fn measure_queries(
    bed: &TestBed,
    queries: &[LabeledGraph],
    sigmas: &[f64],
    config: &PisConfig,
) -> Vec<QueryMeasurement> {
    // Pruning-only runs: no verification, and the structure check is
    // left to the Yt-set intersection below (topoPrune already computed
    // the exact containment set).
    let prune_config = PisConfig { verify: false, structure_check: false, ..config.clone() };
    let searcher = PisSearcher::new(&bed.index, &bed.db, prune_config);
    queries
        .iter()
        .map(|q| {
            let topo = pis_core::topo_prune(&bed.index, &bed.db, q, f64::INFINITY);
            let topo_set: std::collections::HashSet<GraphId> =
                topo.candidates.iter().copied().collect();
            let mut yp = Vec::with_capacity(sigmas.len());
            let mut prune_time = Vec::with_capacity(sigmas.len());
            for &sigma in sigmas {
                let start = Instant::now();
                let outcome = searcher.search(q, sigma);
                prune_time.push(start.elapsed());
                yp.push(outcome.candidates.iter().filter(|g| topo_set.contains(g)).count());
            }
            QueryMeasurement { yt: topo.candidates.len(), yp, prune_time }
        })
        .collect()
}

/// The paper's `Yt` buckets, scaled from the 10 000-graph setting to the
/// actual database size: `Q<300, Q750, Q1.5k, Q3k, Q5k, Q>5k`.
#[derive(Clone, Debug)]
pub struct BucketSpec {
    /// Upper bounds of all buckets except the open-ended last.
    pub bounds: Vec<usize>,
    /// Human-readable bucket names (paper notation).
    pub names: Vec<&'static str>,
}

impl BucketSpec {
    /// Buckets scaled to `db_size`.
    pub fn paper(db_size: usize) -> BucketSpec {
        let scale = db_size as f64 / 10_000.0;
        let bounds = [300.0, 750.0, 1500.0, 3000.0, 5000.0]
            .iter()
            .map(|b| (b * scale).round().max(1.0) as usize)
            .collect();
        BucketSpec { bounds, names: vec!["Q<300", "Q750", "Q1.5k", "Q3k", "Q5k", "Q>5k"] }
    }

    /// The bucket index of a `Yt` value.
    pub fn bucket_of(&self, yt: usize) -> usize {
        self.bounds.iter().position(|&b| yt < b).unwrap_or(self.bounds.len())
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Always false; bucket specs have at least one bucket.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Per-bucket averages: the series the paper plots.
#[derive(Clone, Debug)]
pub struct BucketedSeries {
    /// Bucket names.
    pub names: Vec<&'static str>,
    /// Queries per bucket.
    pub counts: Vec<usize>,
    /// Average `Yt` per bucket.
    pub avg_yt: Vec<f64>,
    /// Average `Yp` per bucket, one row per sigma.
    pub avg_yp: Vec<Vec<f64>>,
}

impl BucketedSeries {
    /// The reduction ratio `Yt / Yp` per bucket for sigma row `s`
    /// (`f64::NAN` for empty buckets).
    pub fn reduction_ratio(&self, s: usize) -> Vec<f64> {
        self.avg_yt
            .iter()
            .zip(&self.avg_yp[s])
            .map(|(&yt, &yp)| {
                if yp > 0.0 {
                    yt / yp
                } else if yt > 0.0 {
                    f64::INFINITY
                } else {
                    f64::NAN
                }
            })
            .collect()
    }
}

/// Buckets measurements by `Yt` and averages per bucket.
pub fn bucketize(
    measurements: &[QueryMeasurement],
    spec: &BucketSpec,
    sigma_count: usize,
) -> BucketedSeries {
    let k = spec.len();
    let mut counts = vec![0usize; k];
    let mut sum_yt = vec![0f64; k];
    let mut sum_yp = vec![vec![0f64; k]; sigma_count];
    for m in measurements {
        let b = spec.bucket_of(m.yt);
        counts[b] += 1;
        sum_yt[b] += m.yt as f64;
        for (s, &yp) in m.yp.iter().enumerate() {
            sum_yp[s][b] += yp as f64;
        }
    }
    let avg = |sum: &[f64], counts: &[usize]| -> Vec<f64> {
        sum.iter().zip(counts).map(|(&s, &c)| if c > 0 { s / c as f64 } else { f64::NAN }).collect()
    };
    let avg_yt = avg(&sum_yt, &counts);
    let avg_yp = sum_yp.iter().map(|row| avg(row, &counts)).collect();
    BucketedSeries { names: spec.names.clone(), counts, avg_yt, avg_yp }
}

/// Renders an aligned text table (the harness's output format).
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("## {title}\n");
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
    };
    out.push_str(&line(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float for tables (two decimals, `-` for NaN).
pub fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_scale_with_db_size() {
        let full = BucketSpec::paper(10_000);
        assert_eq!(full.bounds, vec![300, 750, 1500, 3000, 5000]);
        let small = BucketSpec::paper(1000);
        assert_eq!(small.bounds, vec![30, 75, 150, 300, 500]);
        assert_eq!(small.bucket_of(0), 0);
        assert_eq!(small.bucket_of(100), 2);
        assert_eq!(small.bucket_of(10_000), 5);
        assert_eq!(small.len(), 6);
    }

    #[test]
    fn bucketize_averages() {
        let spec = BucketSpec::paper(10_000);
        let ms = vec![
            QueryMeasurement { yt: 100, yp: vec![10], prune_time: vec![Duration::ZERO] },
            QueryMeasurement { yt: 200, yp: vec![30], prune_time: vec![Duration::ZERO] },
            QueryMeasurement { yt: 6000, yp: vec![3000], prune_time: vec![Duration::ZERO] },
        ];
        let series = bucketize(&ms, &spec, 1);
        assert_eq!(series.counts[0], 2);
        assert_eq!(series.avg_yt[0], 150.0);
        assert_eq!(series.avg_yp[0][0], 20.0);
        assert_eq!(series.counts[5], 1);
        let ratios = series.reduction_ratio(0);
        assert!((ratios[0] - 7.5).abs() < 1e-12);
        assert!(ratios[1].is_nan());
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "demo",
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "200".into()]],
        );
        assert!(t.contains("## demo"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn fmt_f64_special_cases() {
        assert_eq!(fmt_f64(f64::NAN), "-");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(1.234), "1.23");
    }

    #[test]
    fn smoke_testbed_round_trip() {
        let scale = ExperimentScale { db_size: 40, query_count: 3, ..ExperimentScale::smoke() };
        let bed = TestBed::build(&scale, 3);
        assert_eq!(bed.db.len(), 40);
        assert!(!bed.index.features().is_empty());
        let queries = bed.query_set(6);
        assert_eq!(queries.len(), 3);
        let ms = measure_queries(&bed, &queries, &[1.0, 2.0], &PisConfig::default());
        for m in &ms {
            assert_eq!(m.yp.len(), 2);
            // Yp <= Yt by construction, and monotone in sigma.
            assert!(m.yp[0] <= m.yt);
            assert!(m.yp[1] <= m.yt);
            assert!(m.yp[0] <= m.yp[1]);
        }
    }
}
