//! The paper's baselines (Section 2): naive scan and topoPrune.
//!
//! * [`naive_scan`] — verify every database graph ("scan the whole
//!   database and check whether a target graph has a superposition with
//!   a distance less than the threshold").
//! * [`topo_prune`] — "gets rid of graphs that do not contain the query
//!   structure first, and then checks the remaining candidates": a
//!   gIndex-style posting-list intersection over the query's features
//!   followed by a subgraph-isomorphism test; survivors (`Yt` in
//!   Figures 8–10) are then verified like PIS candidates.

use pis_distance::SuperimposedDistance;
use pis_graph::iso::{is_subgraph, IsoConfig};
use pis_graph::util::FxHashSet;
use pis_graph::{GraphId, LabeledGraph};
use pis_index::FragmentIndex;

use crate::search::distance_dyn;
use crate::verify::VerifyScratch;

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// Candidates that reached verification (all graphs for the naive
    /// scan; the paper's `Yt` for topoPrune).
    pub candidates: Vec<GraphId>,
    /// Verified answers.
    pub answers: Vec<GraphId>,
    /// Number of verification calls (= candidates).
    pub verification_calls: usize,
}

/// Verifies every graph in the database — the reference answer and the
/// cost ceiling.
pub fn naive_scan(
    database: &[LabeledGraph],
    query: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
    sigma: f64,
) -> BaselineOutcome {
    let candidates: Vec<GraphId> = (0..database.len() as u32).map(GraphId).collect();
    // One verifier scratch across the whole scan: the query's match plan
    // is built once and every candidate reuses the DFS buffers.
    let mut verify = VerifyScratch::new();
    verify.begin_query(query);
    let answers = candidates
        .iter()
        .copied()
        .filter(|g| verify.distance_within(query, &database[g.index()], distance, sigma).is_some())
        .collect();
    BaselineOutcome { verification_calls: candidates.len(), candidates, answers }
}

/// Structure-only pruning: gIndex posting-list filter, then a subgraph
/// isomorphism check, then distance verification. Candidate counts do
/// not depend on `sigma` — exactly why Figures 8–10 show one flat
/// topoPrune curve against several PIS curves.
pub fn topo_prune(
    index: &FragmentIndex,
    database: &[LabeledGraph],
    query: &LabeledGraph,
    sigma: f64,
) -> BaselineOutcome {
    assert_eq!(database.len(), index.graph_count(), "database does not match the index");
    // Features present in the query.
    let mut features: FxHashSet<u32> = FxHashSet::default();
    for fragment in index.enumerate_query_fragments(query) {
        features.insert(fragment.feature.0);
    }
    // Posting-list intersection.
    let mut filtered: Vec<GraphId> = (0..database.len() as u32).map(GraphId).collect();
    for f in &features {
        let posting = index.class_graphs(pis_mining::FeatureId(*f));
        filtered = intersect_sorted(&filtered, posting);
        if filtered.is_empty() {
            break;
        }
    }
    // Exact structure check (the filter is a superset).
    let candidates: Vec<GraphId> = filtered
        .into_iter()
        .filter(|g| is_subgraph(query, &database[g.index()], IsoConfig::STRUCTURE))
        .collect();
    let distance = distance_dyn(index.distance());
    let mut verify = VerifyScratch::new();
    verify.begin_query(query);
    let answers: Vec<GraphId> = candidates
        .iter()
        .copied()
        .filter(|g| verify.distance_within(query, &database[g.index()], distance, sigma).is_some())
        .collect();
    BaselineOutcome { verification_calls: candidates.len(), candidates, answers }
}

/// Intersection of two sorted `GraphId` lists.
fn intersect_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PisConfig;
    use crate::search::PisSearcher;
    use pis_distance::oracle::sssd_brute;
    use pis_distance::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};
    use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
    use pis_mining::exhaustive::exhaustive_features;

    fn cycle_with_edge_labels(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    fn db_and_index() -> (Vec<LabeledGraph>, FragmentIndex) {
        let db = vec![
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 1, 1, 1, 2, 2]),
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]),
            pis_graph::graph::path_graph(8, Label(0), Label(1)),
            pis_graph::graph::cycle_graph(5, Label(0), Label(1)),
        ];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let index = FragmentIndex::build(
            &db,
            features,
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        (db, index)
    }

    #[test]
    fn all_strategies_agree_with_the_oracle() {
        let (db, index) = db_and_index();
        let md = MutationDistance::edge_hamming();
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        for q in [
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 2, 1, 1, 2, 1]),
        ] {
            for sigma in [0.0, 1.0, 3.0] {
                let expected: Vec<GraphId> = sssd_brute(&db, &q, &md, sigma)
                    .into_iter()
                    .map(|i| GraphId(i as u32))
                    .collect();
                let naive = naive_scan(&db, &q, &md, sigma);
                let topo = topo_prune(&index, &db, &q, sigma);
                let pis = searcher.search(&q, sigma);
                assert_eq!(naive.answers, expected, "naive, sigma={sigma}");
                assert_eq!(topo.answers, expected, "topo, sigma={sigma}");
                assert_eq!(pis.answers, expected, "pis, sigma={sigma}");
            }
        }
    }

    #[test]
    fn topo_candidates_are_structure_containing_graphs() {
        let (db, index) = db_and_index();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let topo = topo_prune(&index, &db, &q, 0.0);
        let expected: Vec<GraphId> = db
            .iter()
            .enumerate()
            .filter(|(_, g)| is_subgraph(&q, g, IsoConfig::STRUCTURE))
            .map(|(i, _)| GraphId(i as u32))
            .collect();
        assert_eq!(topo.candidates, expected);
        // 6-cycles contain the query structure; the path and 5-cycle do
        // not.
        assert_eq!(topo.candidates, vec![GraphId(0), GraphId(1), GraphId(2)]);
    }

    #[test]
    fn topo_candidates_do_not_depend_on_sigma() {
        let (db, index) = db_and_index();
        let q = cycle_with_edge_labels(&[1, 1, 2, 1, 1, 1]);
        let a = topo_prune(&index, &db, &q, 0.0);
        let b = topo_prune(&index, &db, &q, 5.0);
        assert_eq!(a.candidates, b.candidates);
        assert!(a.answers.len() <= b.answers.len());
    }

    #[test]
    fn pis_prunes_at_least_as_hard_as_topo() {
        let (db, index) = db_and_index();
        let searcher =
            PisSearcher::new(&index, &db, PisConfig { verify: false, ..PisConfig::default() });
        for sigma in [0.0, 1.0, 2.0] {
            let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
            let topo = topo_prune(&index, &db, &q, sigma);
            let pis = searcher.search(&q, sigma);
            // Among structure-containing graphs, PIS keeps a subset.
            let yp = pis.candidates.iter().filter(|g| topo.candidates.contains(g)).count();
            assert!(yp <= topo.candidates.len(), "sigma={sigma}");
        }
    }

    #[test]
    fn naive_scan_visits_everything() {
        let (db, _) = db_and_index();
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let naive = naive_scan(&db, &q, &md, 1.0);
        assert_eq!(naive.verification_calls, db.len());
        assert_eq!(naive.candidates.len(), db.len());
    }

    #[test]
    fn intersect_sorted_works() {
        let a: Vec<GraphId> = [0, 2, 4].into_iter().map(GraphId).collect();
        let b: Vec<GraphId> = [1, 2, 3, 4].into_iter().map(GraphId).collect();
        let out: Vec<u32> = intersect_sorted(&a, &b).into_iter().map(|g| g.0).collect();
        assert_eq!(out, vec![2, 4]);
    }
}
