//! Workload execution and aggregate statistics.
//!
//! The paper's evaluation aggregates per-query candidate counts over
//! query sets; production deployments ask the same question of their
//! own workloads ("how selective is PIS on *my* queries?"). This module
//! runs a query set through a searcher and aggregates every funnel
//! stage into means and percentiles — the `figures` harness and user
//! capacity planning share it.

use std::fmt;
use std::time::{Duration, Instant};

use pis_graph::{LabeledGraph, ScopedPool};

use crate::search::{Completeness, PisSearcher, SearchScratch};

/// Aggregate statistics of one funnel stage across a workload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Aggregate {
    /// Computes aggregates over raw samples; all zeros when empty.
    pub fn of(samples: &[f64]) -> Aggregate {
        if samples.is_empty() {
            return Aggregate::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must be finite"));
        let pct = |p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        Aggregate {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pct(0.5),
            p90: pct(0.9),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.1}, p50 {:.1}, p90 {:.1}, max {:.1}",
            self.mean, self.p50, self.p90, self.max
        )
    }
}

/// Aggregated funnel report for a workload.
#[derive(Clone, Debug, Default)]
pub struct WorkloadReport {
    /// Number of queries executed.
    pub queries: usize,
    /// The threshold used.
    pub sigma: f64,
    /// Query fragments per query.
    pub fragments: Aggregate,
    /// Candidates after per-fragment intersection.
    pub after_intersection: Aggregate,
    /// Candidates after partition-bound pruning.
    pub after_partition: Aggregate,
    /// Candidates after the structure check.
    pub after_structure: Aggregate,
    /// Verified answers per query.
    pub answers: Aggregate,
    /// Wall time per query (whole search).
    pub latency: Aggregate,
    /// Total wall time of the run.
    pub total_time: Duration,
    /// Queries whose outcome was budget-truncated (0 when the
    /// searcher's configured [`QueryBudget`](pis_graph::budget::QueryBudget)
    /// is unlimited). Truncated queries still contribute their
    /// best-effort counts to every aggregate.
    pub truncated: usize,
    /// Queries whose outcome was shard-degraded
    /// ([`Completeness::Degraded`]) —
    /// some class shard stayed dark, so their answers are a verified
    /// subset. Always 0 on an unsharded searcher. A query that is both
    /// tripped and shard-degraded counts only as truncated, matching
    /// the completeness precedence.
    pub degraded: usize,
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "workload: {} queries at sigma = {}", self.queries, self.sigma)?;
        writeln!(f, "  fragments/query        {}", self.fragments)?;
        writeln!(f, "  after intersection     {}", self.after_intersection)?;
        writeln!(f, "  after partition bound  {}", self.after_partition)?;
        writeln!(f, "  after structure check  {}", self.after_structure)?;
        writeln!(f, "  answers                {}", self.answers)?;
        writeln!(f, "  latency (ms)           {}", self.latency)?;
        if self.truncated > 0 {
            writeln!(f, "  truncated              {} of {} queries", self.truncated, self.queries)?;
        }
        if self.degraded > 0 {
            writeln!(f, "  shard-degraded         {} of {} queries", self.degraded, self.queries)?;
        }
        write!(f, "  total                  {:?}", self.total_time)
    }
}

/// Runs every query at `sigma` and aggregates the funnel.
///
/// Queries fan out across the shared [`ScopedPool`] (each worker reuses
/// one [`SearchScratch`] for its whole chunk); per-query latency is
/// still measured inside the worker, so under parallel execution it
/// reports in-thread wall time, not end-to-end queueing delay.
pub fn run_workload(
    searcher: &PisSearcher<'_>,
    queries: &[LabeledGraph],
    sigma: f64,
) -> WorkloadReport {
    /// Fewer queries than this stay on the calling thread.
    const PARALLEL_QUERY_THRESHOLD: usize = 8;
    let started = Instant::now();
    let per_query = ScopedPool::default().map_with(
        queries,
        PARALLEL_QUERY_THRESHOLD,
        SearchScratch::new,
        |scratch, _, q| {
            let t = Instant::now();
            let outcome = searcher.search_with_scratch(q, sigma, scratch);
            let latency_ms = t.elapsed().as_secs_f64() * 1e3;
            (
                outcome.stats.query_fragments as f64,
                outcome.stats.candidates_after_intersection as f64,
                outcome.stats.candidates_after_partition as f64,
                outcome.stats.candidates_after_structure as f64,
                outcome.answers.len() as f64,
                latency_ms,
                matches!(outcome.completeness, Completeness::Truncated { .. }),
                matches!(outcome.completeness, Completeness::Degraded { .. }),
            )
        },
    );
    let mut fragments = Vec::with_capacity(queries.len());
    let mut inter = Vec::with_capacity(queries.len());
    let mut part = Vec::with_capacity(queries.len());
    let mut structure = Vec::with_capacity(queries.len());
    let mut answers = Vec::with_capacity(queries.len());
    let mut latency = Vec::with_capacity(queries.len());
    let mut truncated = 0;
    let mut degraded = 0;
    for (f, i, p, s, a, l, t, d) in per_query {
        fragments.push(f);
        inter.push(i);
        part.push(p);
        structure.push(s);
        answers.push(a);
        latency.push(l);
        truncated += usize::from(t);
        degraded += usize::from(d);
    }
    WorkloadReport {
        queries: queries.len(),
        sigma,
        fragments: Aggregate::of(&fragments),
        after_intersection: Aggregate::of(&inter),
        after_partition: Aggregate::of(&part),
        after_structure: Aggregate::of(&structure),
        answers: Aggregate::of(&answers),
        latency: Aggregate::of(&latency),
        total_time: started.elapsed(),
        truncated,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PisConfig;
    use pis_distance::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};
    use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
    use pis_mining::exhaustive::exhaustive_features;

    fn ring(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    #[test]
    fn aggregate_statistics() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0, 4.0, 10.0]);
        assert_eq!(a.mean, 4.0);
        assert_eq!(a.p50, 3.0);
        assert_eq!(a.max, 10.0);
        assert!(a.p90 >= a.p50);
        assert_eq!(Aggregate::of(&[]), Aggregate::default());
    }

    #[test]
    fn workload_report_covers_all_queries() {
        let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 1, 2, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let queries = vec![ring(&[1, 1, 1, 1]), ring(&[2, 2, 2, 2])];
        let report = run_workload(&searcher, &queries, 1.0);
        assert_eq!(report.queries, 2);
        assert!(report.answers.mean >= 1.0, "each query matches at least itself");
        assert!(report.latency.max >= report.latency.p50);
        let text = report.to_string();
        assert!(text.contains("workload: 2 queries"));
        assert!(text.contains("after partition bound"));
    }

    #[test]
    fn workload_counts_truncated_queries() {
        let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 1, 2, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let config = PisConfig {
            budget: pis_graph::budget::QueryBudget { node_limit: Some(1), ..Default::default() },
            ..PisConfig::default()
        };
        let searcher = PisSearcher::new(&index, &db, config);
        let queries = vec![ring(&[1, 1, 1, 1]), ring(&[2, 2, 2, 2])];
        let report = run_workload(&searcher, &queries, 1.0);
        assert_eq!(report.truncated, 2, "a one-unit budget truncates every query");
        assert!(report.to_string().contains("truncated"));
        // An unlimited workload reports zero and omits the line.
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let report = run_workload(&searcher, &queries, 1.0);
        assert_eq!(report.truncated, 0);
        assert!(!report.to_string().contains("truncated"));
    }

    #[test]
    fn empty_workload() {
        let db = vec![ring(&[1, 1, 1])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 2),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let report = run_workload(&searcher, &[], 1.0);
        assert_eq!(report.queries, 0);
        assert_eq!(report.answers, Aggregate::default());
    }
}
