//! Search-time configuration.

use pis_graph::budget::QueryBudget;

use crate::shard::ShardConfig;

/// Which MWIS algorithm picks the partition (Section 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartitionAlgo {
    /// Algorithm 1 (`Greedy()`), the paper's default.
    #[default]
    Greedy,
    /// `EnhancedGreedy(k)`; the paper evaluates `k = 2`.
    EnhancedGreedy(usize),
    /// Exact branch-and-bound MWIS (ablation A1). Pools beyond the
    /// solver's node cap demote to `EnhancedGreedy(2)` instead of
    /// failing; `SearchStats::exact_fallback` reports when that
    /// happened.
    Exact,
}

/// Tunables of the partition-based search (Algorithm 2).
#[derive(Clone, Debug)]
pub struct PisConfig {
    /// Selectivity cutoff multiplier `λ`: graphs not within `σ` of a
    /// fragment contribute `λσ` to its selectivity, and matched
    /// distances are capped at `λσ` (Figure 11; `λ = 1` is the paper's
    /// default).
    pub lambda: f64,
    /// Minimum selectivity `ε` a fragment needs to join the
    /// overlapping-relation graph (Algorithm 2, line 5). Fragments whose
    /// structure appears within `σ` in nearly every graph prune nothing.
    pub epsilon: f64,
    /// Partition algorithm.
    pub partition: PartitionAlgo,
    /// Run the exact structure check (`Q ⊆ G`) on the pruned candidates
    /// before distance verification. The paper builds PIS on top of
    /// gIndex, i.e. with this filter on; disabling it yields the raw
    /// Algorithm 2 candidate set.
    pub structure_check: bool,
    /// Verify candidates (step 3). Disable to measure pruning in
    /// isolation, as the paper's figures do.
    pub verify: bool,
    /// Break-even point of the range-query fan-out: below this many
    /// unique probes a search prices them serially through the shared
    /// scratch; at or above it, probe groups spread across the thread
    /// pool. Tune upward on boxes where thread startup dominates, or
    /// downward on many-core machines with large probe sets
    /// ([`DEFAULT_PARALLEL_FRAGMENT_THRESHOLD`] is the measured
    /// break-even on commodity 8–16 core hardware).
    pub parallel_fragment_threshold: usize,
    /// Break-even point of candidate verification: batches smaller than
    /// this verify on the calling thread
    /// ([`DEFAULT_PARALLEL_VERIFY_THRESHOLD`]).
    pub parallel_verify_threshold: usize,
    /// k-NN verification order: `true` (default) verifies candidates
    /// cheapest partition lower bound first, so early exact distances
    /// tighten the shared budget and let the scheduler skip candidates
    /// whose bound already exceeds the provisional k-th distance.
    /// `false` keeps candidate-id stream order (the seed schedule);
    /// both orders return identical neighbors.
    pub best_first_verify: bool,
    /// Per-query resource budget (deadline, work-unit limit,
    /// cancellation token). The default is unlimited; searches under a
    /// limited budget degrade gracefully and mark their outcome
    /// [`Truncated`](crate::Completeness::Truncated) instead of
    /// blocking. A per-call budget
    /// ([`PisSearcher::search_budgeted`](crate::PisSearcher::search_budgeted))
    /// overrides this one.
    pub budget: QueryBudget,
    /// Fault-tolerant scatter-gather sharding
    /// ([`ShardRouter`](crate::ShardRouter)). `None` (the default)
    /// keeps the legacy single-coordinator probe loop; `Some` — even
    /// with `shards == 1` — routes range queries through per-shard
    /// workers with sub-deadlines, replica failover and quarantine, and
    /// a shard that stays dark degrades the outcome to
    /// [`Degraded`](crate::Completeness::Degraded) instead of failing
    /// the query. A healthy scatter is byte-identical to the legacy
    /// path.
    pub shard: Option<ShardConfig>,
}

/// Default [`PisConfig::parallel_fragment_threshold`].
pub const DEFAULT_PARALLEL_FRAGMENT_THRESHOLD: usize = 48;

/// Default [`PisConfig::parallel_verify_threshold`].
pub const DEFAULT_PARALLEL_VERIFY_THRESHOLD: usize = 64;

impl Default for PisConfig {
    fn default() -> Self {
        PisConfig {
            lambda: 1.0,
            epsilon: 0.0,
            partition: PartitionAlgo::Greedy,
            structure_check: true,
            verify: true,
            parallel_fragment_threshold: DEFAULT_PARALLEL_FRAGMENT_THRESHOLD,
            parallel_verify_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
            best_first_verify: true,
            budget: QueryBudget::unlimited(),
            shard: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = PisConfig::default();
        assert_eq!(c.lambda, 1.0);
        assert_eq!(c.epsilon, 0.0);
        assert_eq!(c.partition, PartitionAlgo::Greedy);
        assert!(c.structure_check);
        assert!(c.verify);
        assert_eq!(c.parallel_fragment_threshold, DEFAULT_PARALLEL_FRAGMENT_THRESHOLD);
        assert_eq!(c.parallel_verify_threshold, DEFAULT_PARALLEL_VERIFY_THRESHOLD);
        assert!(c.best_first_verify);
        assert!(!c.budget.is_limited(), "the default budget is unlimited");
        assert!(c.shard.is_none(), "sharding is opt-in");
    }
}
