//! Typed errors for API-boundary validation.
//!
//! The search entry points accept floating-point parameters and
//! user-supplied query graphs; a NaN threshold or an infinite edge
//! weight would otherwise propagate silently through the funnel (NaN
//! comparisons are all-false, so pruning decisions become arbitrary).
//! The `try_` variants reject such inputs up front with a [`QueryError`]
//! instead.

use std::fmt;

use pis_graph::LabeledGraph;

/// A query rejected at the API boundary before any search work ran.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryError {
    /// The threshold `σ` must be finite and non-negative.
    InvalidSigma(f64),
    /// A query vertex or edge carries a non-finite weight.
    NonFiniteQueryWeight,
    /// kNN radius bounds must be finite with
    /// `0 ≤ initial_radius ≤ max_radius`.
    InvalidRadiusBounds {
        /// The rejected initial radius.
        initial_radius: f64,
        /// The rejected radius cap.
        max_radius: f64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidSigma(sigma) => {
                write!(f, "invalid sigma {sigma}: must be finite and non-negative")
            }
            QueryError::NonFiniteQueryWeight => {
                write!(f, "query graph carries a non-finite vertex or edge weight")
            }
            QueryError::InvalidRadiusBounds { initial_radius, max_radius } => write!(
                f,
                "invalid radius bounds [{initial_radius}, {max_radius}]: \
                 need finite 0 <= initial <= max"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Validates the query graph's weights.
pub(crate) fn validate_query(query: &LabeledGraph) -> Result<(), QueryError> {
    let vertex_weights =
        (0..query.vertex_count()).map(|v| query.vertex(pis_graph::VertexId(v as u32)).weight);
    let edge_weights = query.edges().iter().map(|e| e.attr.weight);
    if vertex_weights.chain(edge_weights).any(|w| !w.is_finite()) {
        return Err(QueryError::NonFiniteQueryWeight);
    }
    Ok(())
}

/// Validates a range-query threshold.
pub(crate) fn validate_sigma(sigma: f64) -> Result<(), QueryError> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(QueryError::InvalidSigma(sigma));
    }
    Ok(())
}

/// Validates kNN radius bounds.
pub(crate) fn validate_radii(initial_radius: f64, max_radius: f64) -> Result<(), QueryError> {
    if !initial_radius.is_finite()
        || !max_radius.is_finite()
        || initial_radius < 0.0
        || max_radius < initial_radius
    {
        return Err(QueryError::InvalidRadiusBounds { initial_radius, max_radius });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_validation() {
        assert!(validate_sigma(0.0).is_ok());
        assert!(validate_sigma(3.5).is_ok());
        assert_eq!(validate_sigma(-1.0), Err(QueryError::InvalidSigma(-1.0)));
        assert!(matches!(validate_sigma(f64::NAN), Err(QueryError::InvalidSigma(_))));
        assert!(matches!(validate_sigma(f64::INFINITY), Err(QueryError::InvalidSigma(_))));
    }

    #[test]
    fn radius_validation() {
        assert!(validate_radii(0.5, 2.0).is_ok());
        assert!(validate_radii(0.0, 0.0).is_ok());
        assert!(validate_radii(5.0, 1.0).is_err());
        assert!(validate_radii(f64::NAN, 1.0).is_err());
        assert!(validate_radii(0.0, f64::INFINITY).is_err());
        assert!(validate_radii(-0.5, 1.0).is_err());
    }

    #[test]
    fn errors_render() {
        let e = QueryError::InvalidSigma(f64::NAN);
        assert!(e.to_string().contains("sigma"));
        let e = QueryError::InvalidRadiusBounds { initial_radius: 2.0, max_radius: 1.0 };
        assert!(e.to_string().contains("radius"));
        assert!(QueryError::NonFiniteQueryWeight.to_string().contains("weight"));
    }
}
