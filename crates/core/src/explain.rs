//! Human-readable "explain plans" for PIS searches.
//!
//! Renders a [`SearchOutcome`] as the pruning funnel of Algorithm 2 —
//! what an operator looks at when a query is slower or less selective
//! than expected: how many fragments the query produced, what the
//! partition chose, and where candidates died.

use std::fmt::Write as _;

use pis_index::FragmentIndex;

use crate::search::{Completeness, SearchOutcome};

/// Renders the pruning funnel of one search.
///
/// `database_size` is the total graph count (the funnel's entry width);
/// pass the index used for the search so partition fragments can be
/// described by their structure.
pub fn explain(outcome: &SearchOutcome, index: &FragmentIndex, sigma: f64) -> String {
    let s = &outcome.stats;
    let n = index.graph_count();
    let mut out = String::new();
    let _ = writeln!(out, "PIS search, sigma = {sigma}");
    let _ = writeln!(out, "  query fragments      {:>8}", s.query_fragments);
    let _ =
        writeln!(out, "  fragment pool        {:>8}  (after epsilon filter)", s.fragments_in_pool);
    let _ = writeln!(
        out,
        "  partition            {:>8}  fragments, weight {:.3}",
        s.partition_size, s.partition_weight
    );
    for p in &s.partition {
        let feature = index.features().get(p.feature);
        let _ = writeln!(
            out,
            "    - {}: {}V/{}E structure, covers {} query vertices, w = {:.3}",
            p.feature,
            feature.vertex_count(),
            feature.edge_count(),
            p.vertices,
            p.weight
        );
    }
    let _ = writeln!(out, "  candidate funnel");
    let _ = writeln!(out, "    database           {n:>8}");
    let _ = writeln!(
        out,
        "    intersection       {:>8}  ({})",
        s.candidates_after_intersection,
        pct(s.candidates_after_intersection, n)
    );
    let _ = writeln!(
        out,
        "    partition bound    {:>8}  ({})",
        s.candidates_after_partition,
        pct(s.candidates_after_partition, n)
    );
    let _ = writeln!(
        out,
        "    structure check    {:>8}  ({})",
        s.candidates_after_structure,
        pct(s.candidates_after_structure, n)
    );
    let _ = writeln!(out, "  verification         {:>8}  calls", s.verification_calls);
    let _ = writeln!(out, "  answers              {:>8}", outcome.answers.len());
    if s.shard_retries > 0 || s.shard_failures > 0 {
        let _ = writeln!(
            out,
            "  shard failover       {:>8}  retries, {} failed attempts",
            s.shard_retries, s.shard_failures
        );
    }
    if let Completeness::Degraded { shards } = &outcome.completeness {
        let _ = writeln!(
            out,
            "  DEGRADED: shard(s) {shards:?} stayed dark; their classes were \
             excluded from the intersection, so answers are a verified subset \
             and nothing was pruned on missing data"
        );
    }
    if let Completeness::Truncated { phase, stats } = &outcome.completeness {
        let _ = writeln!(
            out,
            "  possible             {:>8}  (verification interrupted)",
            outcome.possible.len()
        );
        let _ = writeln!(
            out,
            "  TRUNCATED in {} after {} checkpoints / {} work units; \
             answers are verified, `possible` graphs are undecided",
            phase.name(),
            stats.checkpoints,
            stats.work_units
        );
    }
    out
}

fn pct(x: usize, n: usize) -> String {
    if n == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * x as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PisConfig;
    use crate::search::PisSearcher;
    use pis_distance::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr};
    use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
    use pis_mining::exhaustive::exhaustive_features;

    fn ring(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    #[test]
    fn explain_renders_the_funnel() {
        let db =
            vec![ring(&[1, 1, 1, 1, 1, 1]), ring(&[1, 1, 1, 1, 1, 2]), ring(&[2, 2, 2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 4),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let outcome = searcher.search(&ring(&[1, 1, 1, 1, 1, 1]), 1.0);
        let text = explain(&outcome, &index, 1.0);
        assert!(text.contains("sigma = 1"));
        assert!(text.contains("database                  3"));
        assert!(text.contains("query fragments"));
        assert!(text.contains("answers"));
        // Partition fragments are described by structure.
        assert!(outcome.stats.partition.is_empty() || text.contains("covers"));
    }

    #[test]
    fn explain_handles_empty_database() {
        let db: Vec<LabeledGraph> = Vec::new();
        let index = FragmentIndex::build(
            &db,
            pis_mining::FeatureSet::new(),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let outcome = searcher.search(&ring(&[1, 1, 1]), 1.0);
        let text = explain(&outcome, &index, 1.0);
        assert!(text.contains('-'), "percentages degrade gracefully on empty input");
    }
}
