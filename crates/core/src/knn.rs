//! k-nearest-neighbor substructure search — a natural extension of SSSD
//! (the range form of Definition 2) to top-k form: return the `k`
//! database graphs with the smallest minimum superimposed distance from
//! the query, among graphs that contain it structurally.
//!
//! The paper poses SSSD as a range query; production graph systems
//! usually want both. The implementation reuses the PIS pruning pipeline
//! with progressive radius doubling: run Algorithm 2 at `σ`, and if
//! fewer than `k` verified answers exist, double `σ` — the partition
//! lower bound guarantees no graph outside the final radius can beat the
//! k-th best inside it.
//!
//! Radius doubling is monotone: the candidate set at `2σ` is a superset
//! of the one at `σ`, so every candidate already verified in an earlier
//! round keeps its (radius-independent) exact distance. Each widening
//! round therefore seeds from the previous round's resolved set and
//! verifies only the candidates the larger radius newly admitted —
//! re-verification of a candidate happens only if its earlier
//! branch-and-bound proved `d > σ_old` (the bound must be retried with
//! the bigger budget).
//!
//! Under [`PisConfig::best_first_verify`] (the default) each round
//! verifies its unresolved candidates **cheapest partition lower bound
//! first**: early exact distances tighten the provisional k-th-best,
//! every later candidate is verified against the tightened budget
//! `min(σ, k-th best)` instead of the full radius, and once `k`
//! neighbors are in hand candidates whose lower bound already exceeds
//! the k-th distance are skipped outright (their true distance can only
//! be larger, and the bounds arrive in ascending order, so the rest of
//! the list is skippable too — which only ever happens on the terminal
//! round). The returned neighbors are identical to stream-order
//! verification; only the work differs.
//!
//! [`PisConfig::best_first_verify`]: crate::PisConfig::best_first_verify

use pis_graph::budget::{BudgetState, CheckpointSite, QueryBudget};
use pis_graph::util::FxHashMap;
use pis_graph::{GraphId, LabeledGraph};

use crate::error::{validate_query, validate_radii, QueryError};
use crate::search::{distance_dyn, Completeness, PisSearcher, SearchScratch};

/// One k-NN result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The database graph.
    pub graph: GraphId,
    /// Its exact minimum superimposed distance from the query.
    pub distance: f64,
}

/// Result of a k-NN search.
#[derive(Clone, Debug)]
pub struct KnnOutcome {
    /// Up to `k` nearest graphs, ordered by distance then id. Fewer than
    /// `k` when the database holds fewer structural matches — or when
    /// the budget tripped, in which case they are the best neighbors
    /// found so far (each with its exact distance).
    pub neighbors: Vec<Neighbor>,
    /// The final search radius used.
    pub radius: f64,
    /// The largest radius the search fully certified: every structural
    /// match within it is guaranteed to appear in `neighbors` (up to
    /// `k`). Equals `radius` when the search completed; the last fully
    /// finished doubling round's radius when the budget tripped (`0.0`
    /// if no round finished).
    pub certified_radius: f64,
    /// Whether the search ran to completion or its budget tripped.
    pub completeness: Completeness,
    /// Total verification calls across all radius rounds.
    pub verification_calls: usize,
    /// Distinct candidates whose exact distance, resolved in an earlier
    /// (smaller-radius) round, was reused instead of re-verified. Each
    /// candidate counts once no matter how many widening rounds
    /// re-encounter it, so the statistic stays comparable across runs
    /// with different round counts (it is a lower bound on the
    /// verification calls the seeding avoided, not their total).
    pub reused_verifications: usize,
    /// Radius-doubling rounds run.
    pub rounds: usize,
}

impl PisSearcher<'_> {
    /// Finds the `k` structurally matching graphs nearest to `query`
    /// under the index distance.
    ///
    /// `initial_radius` seeds the progressive widening (a good value is
    /// the σ of a typical range query; 1.0 works well for edge-Hamming).
    /// Widening stops when `k` answers fit in the radius or the radius
    /// covers the largest possible distance (`max_radius`).
    pub fn knn(
        &self,
        query: &LabeledGraph,
        k: usize,
        initial_radius: f64,
        max_radius: f64,
    ) -> KnnOutcome {
        let budget = BudgetState::new(&self.config().budget);
        self.knn_with_state(query, k, initial_radius, max_radius, &budget)
    }

    /// [`PisSearcher::knn`] under a per-call [`QueryBudget`]. When the
    /// budget trips, the outcome holds the best-so-far neighbors, the
    /// radius the search actually certified
    /// ([`KnnOutcome::certified_radius`]), and a
    /// [`Truncated`](Completeness::Truncated) marker.
    pub fn knn_budgeted(
        &self,
        query: &LabeledGraph,
        k: usize,
        initial_radius: f64,
        max_radius: f64,
        budget: &QueryBudget,
    ) -> KnnOutcome {
        let state = BudgetState::new(budget);
        self.knn_with_state(query, k, initial_radius, max_radius, &state)
    }

    /// [`PisSearcher::knn`] with boundary validation: rejects
    /// non-finite or inverted radius bounds and non-finite query
    /// weights with a typed [`QueryError`] instead of panicking.
    pub fn try_knn(
        &self,
        query: &LabeledGraph,
        k: usize,
        initial_radius: f64,
        max_radius: f64,
    ) -> Result<KnnOutcome, QueryError> {
        validate_radii(initial_radius, max_radius)?;
        validate_query(query)?;
        Ok(self.knn(query, k, initial_radius, max_radius))
    }

    fn knn_with_state(
        &self,
        query: &LabeledGraph,
        k: usize,
        initial_radius: f64,
        max_radius: f64,
        budget: &BudgetState,
    ) -> KnnOutcome {
        assert!(initial_radius >= 0.0 && max_radius >= initial_radius, "invalid radius bounds");
        let mut outcome = KnnOutcome {
            neighbors: Vec::new(),
            radius: initial_radius,
            certified_radius: initial_radius,
            completeness: Completeness::Exact,
            verification_calls: 0,
            reused_verifications: 0,
            rounds: 0,
        };
        if k == 0 {
            return outcome;
        }
        let mut config = self.config().clone();
        config.verify = false;
        config.structure_check = true;
        let prune = PisSearcher::new(self.index(), self.database(), config);

        // One scratch serves every doubling round: widening re-runs the
        // funnel over the same database, so all buffers carry over.
        let mut scratch = SearchScratch::new();
        // Exact distances resolved in earlier rounds — the seed each
        // widened round starts from. `min_superimposed_distance` returns
        // the true minimum whenever it returns at all, so a resolved
        // distance is valid at every larger radius. The flag marks
        // entries already counted toward `reused_verifications`, keeping
        // that statistic a count of distinct reuses.
        let mut resolved: FxHashMap<GraphId, (f64, bool)> = FxHashMap::default();
        let mut unresolved: Vec<(f64, GraphId)> = Vec::new();
        let mut stream_ids: Vec<GraphId> = Vec::new();
        let mut neighbors: Vec<Neighbor> = Vec::new();
        let by_distance_then_id = |a: &Neighbor, b: &Neighbor| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("distances are finite")
                .then(a.graph.cmp(&b.graph))
        };
        let distance = distance_dyn(self.index().distance());
        // Shards that stayed dark in *any* doubling round: a round that
        // missed a shard widened soundly but proved nothing about that
        // shard's classes, so the union over rounds degrades the whole
        // outcome.
        let mut degraded: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut radius = initial_radius;
        // The largest radius whose round fully completed under the
        // budget — the correctness the outcome can still promise after
        // a trip.
        let mut certified = 0.0f64;
        loop {
            // One checkpoint per doubling round: a deadline or
            // cancellation observed between rounds stops the widening
            // before another full funnel pass starts.
            if !budget.checkpoint(CheckpointSite::Knn, 1) {
                break;
            }
            outcome.rounds += 1;
            let round_stats = prune.search_into(query, radius, &mut scratch, budget);
            degraded.extend(round_stats.degraded_shards);
            let candidates = scratch.candidates();
            let bounds = scratch.candidate_bounds();
            neighbors.clear();
            unresolved.clear();
            for (&g, &lb) in candidates.iter().zip(bounds) {
                match resolved.get_mut(&g) {
                    Some(&mut (distance, ref mut counted)) => {
                        if !*counted {
                            *counted = true;
                            outcome.reused_verifications += 1;
                        }
                        neighbors.push(Neighbor { graph: g, distance });
                    }
                    None => unresolved.push((lb, g)),
                }
            }
            if self.config().best_first_verify {
                // Cheapest-first: ascending partition lower bound, ids
                // breaking ties for determinism.
                unresolved.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("bounds are finite").then(a.1.cmp(&b.1))
                });
                neighbors.sort_by(by_distance_then_id);
                neighbors.truncate(k);
                let verify = scratch.verify_scratch();
                verify.begin_query(query);
                for &(lb, g) in &unresolved {
                    let kth = (neighbors.len() == k).then(|| neighbors[k - 1].distance);
                    if let Some(kth) = kth {
                        // True distance ≥ lb > k-th best: can't place.
                        // Bounds ascend, so the rest of the list can't
                        // either — and with k answers in hand this is
                        // the terminal round, so skipping is final.
                        if lb > kth {
                            break;
                        }
                    }
                    let sigma = kth.map_or(radius, |kth| radius.min(kth));
                    outcome.verification_calls += 1;
                    match verify.distance_within_budgeted(
                        query,
                        &self.database()[g.index()],
                        distance,
                        sigma,
                        budget,
                    ) {
                        Ok(Some(d)) => {
                            resolved.insert(g, (d, false));
                            let pos = neighbors.partition_point(|n| (n.distance, n.graph) < (d, g));
                            neighbors.insert(pos, Neighbor { graph: g, distance: d });
                            neighbors.truncate(k);
                        }
                        Ok(None) => {}
                        // Tripped mid-DFS: this candidate and the rest
                        // of the list stay unresolved; the round cannot
                        // complete.
                        Err(_) => break,
                    }
                }
            } else {
                stream_ids.clear();
                stream_ids.extend(unresolved.iter().map(|&(_, g)| g));
                outcome.verification_calls += stream_ids.len();
                let (resolved_now, _unverified) = self.verify_candidates_budgeted(
                    query,
                    &stream_ids,
                    radius,
                    scratch.verify_scratch(),
                    budget,
                );
                for (graph, distance) in resolved_now {
                    resolved.insert(graph, (distance, false));
                    neighbors.push(Neighbor { graph, distance });
                }
                neighbors.sort_by(by_distance_then_id);
                neighbors.truncate(k);
            }
            // A tripped round proves nothing about the graphs it did
            // not finish — stop widening and report best-so-far.
            if budget.is_tripped() {
                break;
            }
            certified = radius;
            // Enough answers within the radius: anything outside is
            // farther than the k-th best, so the result is final.
            if neighbors.len() == k || radius >= max_radius {
                break;
            }
            radius = (radius.max(0.5) * 2.0).min(max_radius);
        }
        outcome.neighbors = neighbors;
        outcome.radius = radius;
        outcome.certified_radius = if budget.is_tripped() { certified } else { radius };
        // A budget trip outranks shard loss, mirroring the range
        // search's precedence.
        outcome.completeness = match Completeness::of_state(budget) {
            Completeness::Exact if !degraded.is_empty() => {
                Completeness::Degraded { shards: degraded.into_iter().collect() }
            }
            c => c,
        };
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PisConfig;
    use pis_distance::oracle::min_superimposed_distance_brute;
    use pis_distance::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};
    use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
    use pis_mining::exhaustive::exhaustive_features;

    fn ring(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    fn setup(db: &[LabeledGraph]) -> FragmentIndex {
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        FragmentIndex::build(
            db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        )
    }

    #[test]
    fn knn_returns_nearest_in_order() {
        let db = vec![
            ring(&[1, 1, 1, 1, 1, 1]), // d = 0 from query
            ring(&[1, 1, 1, 1, 1, 2]), // d = 1
            ring(&[1, 1, 2, 1, 2, 2]), // d = 3
            ring(&[2, 2, 2, 2, 2, 2]), // d = 6
        ];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let query = ring(&[1, 1, 1, 1, 1, 1]);
        let knn = searcher.knn(&query, 3, 1.0, 10.0);
        let got: Vec<(u32, f64)> = knn.neighbors.iter().map(|n| (n.graph.0, n.distance)).collect();
        assert_eq!(got, vec![(0, 0.0), (1, 1.0), (2, 3.0)]);
    }

    #[test]
    fn knn_matches_brute_force_ranking() {
        let db = vec![
            ring(&[1, 2, 1, 2, 1, 2]),
            ring(&[1, 2, 1, 2, 1, 1]),
            ring(&[2, 1, 2, 1, 2, 1]), // rotation of the query: d = 0
            ring(&[1, 1, 1, 1, 1, 1]),
            ring(&[2, 2, 2, 2, 2, 2]),
        ];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let query = ring(&[1, 2, 1, 2, 1, 2]);
        let md = MutationDistance::edge_hamming();
        let mut expected: Vec<(usize, f64)> = db
            .iter()
            .enumerate()
            .filter_map(|(i, g)| min_superimposed_distance_brute(&query, g, &md).map(|d| (i, d)))
            .collect();
        expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        for k in 1..=db.len() {
            let knn = searcher.knn(&query, k, 0.5, 10.0);
            let got: Vec<(usize, f64)> =
                knn.neighbors.iter().map(|n| (n.graph.index(), n.distance)).collect();
            assert_eq!(got, expected[..k.min(expected.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn knn_handles_fewer_matches_than_k() {
        let db = vec![ring(&[1, 1, 1, 1, 1, 1]), ring(&[1, 1, 1]), ring(&[2, 2, 2, 2, 2, 2])];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        // 6-ring query: the 3-ring can never match.
        let query = ring(&[1, 1, 1, 1, 1, 1]);
        let knn = searcher.knn(&query, 10, 1.0, 8.0);
        assert_eq!(knn.neighbors.len(), 2);
        assert_eq!(knn.radius, 8.0, "radius must widen to the cap before giving up");
    }

    #[test]
    fn widening_rounds_reuse_resolved_distances() {
        // Query at distance 0/1/3/6 from the four rings; k = 3 with a
        // tiny initial radius forces several doubling rounds, and the
        // early candidates (d = 0, 1) must not be re-verified when the
        // radius widens past 3 and 6.
        let db = vec![
            ring(&[1, 1, 1, 1, 1, 1]),
            ring(&[1, 1, 1, 1, 1, 2]),
            ring(&[1, 1, 2, 1, 2, 2]),
            ring(&[2, 2, 2, 2, 2, 2]),
        ];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let query = ring(&[1, 1, 1, 1, 1, 1]);
        let knn = searcher.knn(&query, 4, 0.5, 10.0);
        let got: Vec<(u32, f64)> = knn.neighbors.iter().map(|n| (n.graph.0, n.distance)).collect();
        assert_eq!(got, vec![(0, 0.0), (1, 1.0), (2, 3.0), (3, 6.0)]);
        assert!(knn.rounds >= 3, "expected several widening rounds, got {}", knn.rounds);
        assert!(
            knn.reused_verifications > 0,
            "widening must seed from the previous round's resolved candidates"
        );
        // Reuse is counted per distinct candidate, so it can never
        // exceed the number of graphs whose distance was ever resolved —
        // no matter how many widening rounds re-encounter them. (The
        // graph admitted in the final round is never reused, hence the
        // strict bound.)
        assert!(
            knn.reused_verifications < db.len(),
            "distinct reuses must stay below the database size: {} reused across {} rounds",
            knn.reused_verifications,
            knn.rounds
        );
        assert!(
            knn.reused_verifications <= knn.verification_calls,
            "a candidate must be verified before it can be reused: {} reused, {} calls",
            knn.reused_verifications,
            knn.verification_calls
        );
    }

    #[test]
    fn knn_k_zero_is_empty() {
        let db = vec![ring(&[1, 1, 1])];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let knn = searcher.knn(&ring(&[1, 1, 1]), 0, 1.0, 4.0);
        assert!(knn.neighbors.is_empty());
        assert_eq!(knn.verification_calls, 0);
    }

    #[test]
    #[should_panic(expected = "invalid radius bounds")]
    fn knn_rejects_bad_radii() {
        let db = vec![ring(&[1, 1, 1])];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let _ = searcher.knn(&ring(&[1, 1, 1]), 1, 5.0, 1.0);
    }

    #[test]
    fn unlimited_knn_certifies_its_final_radius() {
        let db = vec![ring(&[1, 1, 1, 1, 1, 1]), ring(&[1, 1, 1, 1, 1, 2])];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let knn = searcher.knn(&ring(&[1, 1, 1, 1, 1, 1]), 2, 0.5, 8.0);
        assert!(knn.completeness.is_exact());
        assert_eq!(knn.certified_radius, knn.radius);
    }

    #[test]
    fn budget_trip_returns_best_so_far_with_certified_radius() {
        use crate::search::Completeness;
        use pis_distance::oracle::min_superimposed_distance_brute;
        let db = vec![
            ring(&[1, 1, 1, 1, 1, 1]),
            ring(&[1, 1, 1, 1, 1, 2]),
            ring(&[1, 1, 2, 1, 2, 2]),
            ring(&[2, 2, 2, 2, 2, 2]),
        ];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let query = ring(&[1, 1, 1, 1, 1, 1]);
        let md = MutationDistance::edge_hamming();
        // Sweep budgets from starvation upward: every truncation point
        // must stay sound (exact distances, certified radius at most
        // the final radius), and a generous budget must be exact.
        let mut saw_truncated = false;
        let mut saw_exact = false;
        for limit in [1u64, 64, 256, 4096, 1 << 20] {
            let budget =
                pis_graph::budget::QueryBudget { node_limit: Some(limit), ..Default::default() };
            let knn = searcher.knn_budgeted(&query, 4, 0.5, 10.0, &budget);
            assert!(knn.certified_radius <= knn.radius);
            for n in &knn.neighbors {
                let exact = min_superimposed_distance_brute(&query, &db[n.graph.index()], &md)
                    .expect("a reported neighbor structurally matches");
                assert_eq!(n.distance, exact, "best-so-far distances are exact");
            }
            match &knn.completeness {
                Completeness::Truncated { .. } => {
                    saw_truncated = true;
                }
                Completeness::Exact => {
                    saw_exact = true;
                    assert_eq!(knn.neighbors.len(), 4);
                    assert_eq!(knn.certified_radius, knn.radius);
                }
                Completeness::Degraded { shards } => {
                    panic!("an unsharded searcher cannot degrade (shards {shards:?})")
                }
            }
        }
        assert!(saw_truncated, "the starved budgets must truncate");
        assert!(saw_exact, "the generous budget must complete");
    }

    #[test]
    fn try_knn_rejects_bad_inputs() {
        use crate::error::QueryError;
        let db = vec![ring(&[1, 1, 1])];
        let index = setup(&db);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = ring(&[1, 1, 1]);
        assert!(matches!(
            searcher.try_knn(&q, 1, 5.0, 1.0),
            Err(QueryError::InvalidRadiusBounds { .. })
        ));
        assert!(matches!(
            searcher.try_knn(&q, 1, f64::NAN, 1.0),
            Err(QueryError::InvalidRadiusBounds { .. })
        ));
        assert!(matches!(
            searcher.try_knn(&q, 1, 0.0, f64::INFINITY),
            Err(QueryError::InvalidRadiusBounds { .. })
        ));
        let ok = searcher.try_knn(&q, 1, 0.5, 4.0).unwrap();
        assert_eq!(ok.neighbors.len(), 1);
    }
}
