//! PIS — Partition-based Graph Index and Search (ICDE 2006).
//!
//! The crate assembles the paper's full pipeline:
//!
//! 1. **Fragment-based index** (`pis-index`): built once over the
//!    database from mined features (`pis-mining`).
//! 2. **Partition-based search** ([`search::PisSearcher`], Algorithm 2):
//!    enumerate the query's indexed fragments, run one range query per
//!    fragment, intersect the survivor sets (structure + distance
//!    violations), compute per-fragment selectivity
//!    ([`selectivity`]), pick a maximum-selectivity non-overlapping
//!    partition via MWIS (`pis-partition`), and prune every graph whose
//!    partition lower bound exceeds `σ`.
//! 3. **Candidate verification** ([`verify`]): a branch-and-bound
//!    minimum-superimposed-distance matcher confirms survivors.
//!
//! Baselines from Section 2 live in [`baseline`]: the naive full scan
//! and `topoPrune` (structure-only filtering). The searcher's
//! [`search::SearchStats`] expose every intermediate candidate count the
//! paper plots in Figures 8–12.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod batch;
pub mod config;
pub mod error;
pub mod explain;
pub mod knn;
pub mod search;
pub mod selectivity;
pub mod shard;
pub mod verify;

pub use baseline::{naive_scan, topo_prune, BaselineOutcome};
pub use batch::{run_workload, WorkloadReport};
pub use config::{
    PartitionAlgo, PisConfig, DEFAULT_PARALLEL_FRAGMENT_THRESHOLD,
    DEFAULT_PARALLEL_VERIFY_THRESHOLD,
};
pub use error::QueryError;
pub use explain::explain;
pub use knn::{KnnOutcome, Neighbor};
pub use pis_graph::budget::{BudgetStats, QueryBudget};
pub use search::{
    Completeness, PisSearcher, SearchOutcome, SearchScratch, SearchStats, TruncationPhase,
};
pub use shard::{ShardConfig, ShardError, ShardHealthSnapshot, ShardReplicaSet, ShardRouter};
pub use verify::{
    min_superimposed_distance, min_superimposed_distance_reference, VerifyScratch, VerifyStats,
};
