//! Partition-based search — Algorithm 2 of the paper.
//!
//! For a query `Q` and threshold `σ`:
//!
//! 1. enumerate the indexed fragments of `Q` (lines 3–4);
//! 2. per fragment, one index range query yields `T = {G : d(g, G) ≤ σ}`
//!    with exact minima; `CQ ← CQ ∩ T` removes structure and distance
//!    violators (lines 6–17), and the hits give the fragment's
//!    selectivity `w(g)` (line 18);
//! 3. fragments with `w(g) ≤ ε` are dropped (line 5 — evaluated here
//!    because `w` is only known after the range queries; see `DESIGN.md` §2.4);
//! 4. the overlapping-relation graph is built and a maximum-selectivity
//!    partition selected by MWIS (lines 19–20);
//! 5. every remaining graph whose partition lower bound
//!    `Σ_{g ∈ P} d(g, G)` exceeds `σ` is pruned (lines 21–23);
//! 6. optionally, survivors are verified with the branch-and-bound
//!    matcher (step 3 of the PIS framework).
//!
//! # Performance (`DESIGN.md` §6)
//!
//! The funnel is engineered around three ideas:
//!
//! * **dense state** — the candidate set is a [`GraphBitSet`] (one bit
//!   per database graph; intersections are word-parallel `AND`s) and
//!   the partition lower bound accumulates in a generation-stamped
//!   per-graph array, so step 5 reads hits sequentially instead of
//!   binary-searching per candidate;
//! * **reuse** — all of that state lives in a [`SearchScratch`] that
//!   callers ([`PisSearcher::search_with_scratch`], `knn`'s radius
//!   doubling, `run_workload`) thread through repeated searches, making
//!   the steady-state serial funnel allocation-free — including
//!   fragment enumeration (the scratch-owned arena-backed
//!   `FragmentBuffer`) and the partition stage, where `Q̃` rebuilds in
//!   place through a `PartitionScratch` and the mask-native MWIS
//!   solvers fill a reused selection buffer (`DESIGN.md` §6.6);
//! * **deduplication** — automorphic query fragments produce identical
//!   `(feature, vector)` probes; each unique probe runs one range query
//!   (memoized in the scratch), and large probe sets fan out across the
//!   shared [`ScopedPool`].
//!
//! [`PisSearcher::search_reference`] keeps the seed's straight-line
//! implementation as an executable specification; differential tests
//! hold the optimized funnel to byte-identical outcomes against it.

use pis_distance::SuperimposedDistance;
use pis_graph::budget::{BudgetState, BudgetStats, CheckpointSite, QueryBudget};
use pis_graph::util::FxHashMap;
use pis_graph::{GraphBitSet, GraphId, LabeledGraph, ScopedPool};
use pis_index::{
    FragmentBuffer, FragmentIndex, FragmentVectorRef, IndexDistance, QueryFragment, RangeScratch,
};
use pis_partition::reference::{
    enhanced_greedy_mwis_ref, exact_mwis_ref, greedy_mwis_ref, AdjOverlapGraph,
};
use pis_partition::{
    enhanced_greedy_mwis_with, exact_mwis_budgeted_with, greedy_mwis_with, selection_weight,
    OverlapGraph, PartitionScratch, EXACT_MWIS_MAX_NODES,
};

use crate::config::{PartitionAlgo, PisConfig};
use crate::error::{validate_query, validate_sigma, QueryError};
use crate::selectivity::selectivity;
use crate::shard::{ShardError, ShardRouter};
use crate::verify::{min_superimposed_distance_reference, VerifyScratch, VerifyStats};

/// One fragment chosen into the partition (for explain output).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionFragment {
    /// The fragment's equivalence class.
    pub feature: pis_mining::FeatureId,
    /// Number of query vertices it covers.
    pub vertices: usize,
    /// Its selectivity `w(g)`.
    pub weight: f64,
}

/// Counters exposing every intermediate stage (the quantities plotted in
/// Figures 8–12).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// Indexed fragments enumerated from the query (deduplicated).
    pub query_fragments: usize,
    /// Fragments surviving the `ε` selectivity filter.
    pub fragments_in_pool: usize,
    /// Fragments chosen into the partition.
    pub partition_size: usize,
    /// Total selectivity of the partition (the MWIS objective).
    pub partition_weight: f64,
    /// `|CQ|` after per-fragment intersection (structure + distance
    /// violations).
    pub candidates_after_intersection: usize,
    /// `|CQ|` after partition lower-bound pruning — the paper's `Yp`
    /// input.
    pub candidates_after_partition: usize,
    /// Candidates surviving the exact structure check (equals
    /// `candidates_after_partition` when the check is disabled).
    pub candidates_after_structure: usize,
    /// Verification calls performed (equals candidates when verifying).
    pub verification_calls: usize,
    /// Whether [`PartitionAlgo::Exact`] was demoted to
    /// `EnhancedGreedy(2)` because the fragment pool exceeded the exact
    /// solver's node cap ([`EXACT_MWIS_MAX_NODES`]).
    pub exact_fallback: bool,
    /// Classes whose R-tree was queried through its slow unfrozen path
    /// because a freeze is pending. Stays 0 through the LSM insert
    /// path; a persistent non-zero value means someone forgot to
    /// compact after bulk mutation.
    pub rtree_stale_classes: usize,
    /// Index shards that stayed dark for this query — quarantined and
    /// skipped, or failed past their replica retry. Their classes were
    /// excluded from the intersection exactly like incomplete range
    /// slots (sound: missing data never prunes). Sorted ascending;
    /// empty on the unsharded path and on a fully healthy scatter.
    pub degraded_shards: Vec<usize>,
    /// Replica-failover retries performed by this query's scatter.
    pub shard_retries: usize,
    /// Failed shard attempts observed by this query's scatter (a shard
    /// that fails its primary and succeeds on the replica counts one).
    pub shard_failures: usize,
    /// The chosen partition's members (explain output).
    pub partition: Vec<PartitionFragment>,
}

/// The funnel phase in which a query budget first reported exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TruncationPhase {
    /// The index range-query descent.
    RangeDescent,
    /// The exact-MWIS partition solver.
    Partition,
    /// The exact structure check.
    StructureCheck,
    /// Candidate distance verification.
    Verify,
    /// The kNN radius-doubling driver.
    Knn,
}

impl TruncationPhase {
    fn from_site(site: CheckpointSite) -> TruncationPhase {
        match site {
            CheckpointSite::RangeDescent => TruncationPhase::RangeDescent,
            CheckpointSite::Partition => TruncationPhase::Partition,
            CheckpointSite::StructureCheck => TruncationPhase::StructureCheck,
            CheckpointSite::Verify => TruncationPhase::Verify,
            CheckpointSite::Knn => TruncationPhase::Knn,
        }
    }

    /// Stable lowercase name (explain and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            TruncationPhase::RangeDescent => "range-descent",
            TruncationPhase::Partition => "partition",
            TruncationPhase::StructureCheck => "structure-check",
            TruncationPhase::Verify => "verify",
            TruncationPhase::Knn => "knn",
        }
    }
}

/// Whether a search ran to completion or was cut short by its
/// [`QueryBudget`].
///
/// Truncated results stay *sound*: every reported answer is verified,
/// and nothing is silently dropped — candidates whose verification was
/// interrupted are returned separately
/// ([`SearchOutcome::possible`]), and pruning under an exhausted budget
/// only ever widens the candidate superset, never narrows it.
#[derive(Clone, Debug, PartialEq)]
pub enum Completeness {
    /// The full algorithm ran; results are exact.
    Exact,
    /// The budget tripped; results are best-effort (verified answers
    /// plus unverified survivors).
    Truncated {
        /// The phase in which the budget first tripped.
        phase: TruncationPhase,
        /// Checkpoint counters at the end of the query.
        stats: BudgetStats,
    },
    /// Every budget checkpoint passed, but one or more index shards
    /// stayed dark (quarantined, or failed primary *and* replica), so
    /// their classes never joined the intersection. Still sound the
    /// same way a truncated range slot is: missing data only widens the
    /// candidate set, every reported answer is verified, and
    /// `answers ⊆ exact ⊆ answers ∪ possible` holds. A budget trip
    /// takes precedence — a query that is both truncated and degraded
    /// reports [`Truncated`](Completeness::Truncated), with the dark
    /// shards still listed in [`SearchStats::degraded_shards`].
    Degraded {
        /// The dark shards, sorted ascending.
        shards: Vec<usize>,
    },
}

impl Completeness {
    /// Whether the search ran to completion.
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }

    /// Reads the completeness of a finished query off its budget state.
    pub(crate) fn of_state(budget: &BudgetState) -> Completeness {
        match budget.trip_site() {
            None => Completeness::Exact,
            Some(site) => Completeness::Truncated {
                phase: TruncationPhase::from_site(site),
                stats: budget.stats(),
            },
        }
    }
}

/// Result of one PIS search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// `CQ`: candidate answer set after all pruning, sorted by id.
    pub candidates: Vec<GraphId>,
    /// Verified answers (empty when verification is disabled).
    pub answers: Vec<GraphId>,
    /// Exact minimum superimposed distance of each answer, parallel to
    /// `answers` (free — verification computes it anyway).
    pub answer_distances: Vec<f64>,
    /// Candidates whose verification the budget interrupted: none is
    /// disproved, any might be an answer. Empty on an
    /// [`Exact`](Completeness::Exact) search. Together,
    /// `answers ∪ possible` is a superset of the exact answer set.
    pub possible: Vec<GraphId>,
    /// Whether the search ran to completion.
    pub completeness: Completeness,
    /// Stage counters.
    pub stats: SearchStats,
}

/// A query fragment with its range-query hits (sorted by graph id) and
/// its selectivity `w(g)` — the unit of the reference pipeline.
type ScoredFragment = (QueryFragment, Vec<(GraphId, f64)>, f64);

/// Reusable state for the optimized candidate funnel.
///
/// One scratch serves any number of sequential searches (it re-sizes to
/// the database on every call); after warm-up the serial funnel —
/// fragment enumeration included, via the arena-backed
/// [`FragmentBuffer`] — performs no heap allocation outside the
/// returned [`SearchOutcome`]. (When a large probe set fans out across
/// the pool, workers trade per-slot buffer allocations for core
/// scaling.) Scratches are independent — one per thread for concurrent
/// searches.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Arena-backed store for the query's enumerated fragments.
    fragments: FragmentBuffer,
    /// Range-query dense accumulator (shared across the whole search).
    range: RangeScratch,
    /// The live candidate set `CQ`.
    candidates: GraphBitSet,
    /// Per-fragment membership mask, re-filled per intersection.
    mask: GraphBitSet,
    /// Partition lower-bound accumulator, stamped by `generation`.
    bound: Vec<f64>,
    /// How many partition fragments contained each graph, same stamp.
    seen_in: Vec<u32>,
    /// Generation stamp validating `bound`/`seen_in` slots.
    stamp: Vec<u64>,
    generation: u64,
    /// Memo of unique `(feature, vector)` probes → slot index.
    memo: FxHashMap<Vec<u64>, usize>,
    /// Reusable probe-key assembly buffer.
    key_buf: Vec<u64>,
    /// Per-slot range-query hits (buffers reused across searches).
    hits: Vec<Vec<(GraphId, f64)>>,
    /// Per-slot selectivity `w(g)`.
    weights: Vec<f64>,
    /// Slots in use this search.
    slots_used: usize,
    /// Per-fragment slot assignment.
    slot_of: Vec<usize>,
    /// Fragment index that first produced each slot.
    unique_fragment: Vec<usize>,
    /// Which slots have already been intersected into `candidates`.
    intersected: Vec<bool>,
    /// Whether each slot's range query ran to completion under the
    /// query budget. An incomplete slot's hits are empty and must not
    /// prune (its true hit set is unknown): the slot is skipped by the
    /// intersection and excluded from the fragment pool.
    slot_complete: Vec<bool>,
    /// The final candidate list of the last search, ascending.
    cand_buf: Vec<GraphId>,
    /// Partition-stage lower bound of each final candidate, parallel to
    /// `cand_buf` (0 when the partition is empty). `knn` orders its
    /// verifications cheapest-first by these.
    cand_lb: Vec<f64>,
    /// Verifier state: match plan, adjacency bitset, DFS buffers and
    /// remaining-cost tables, amortized across every candidate of every
    /// search through this scratch.
    verify: VerifyScratch,
    /// Fragment indices surviving the ε selectivity filter (the pool).
    pool: Vec<usize>,
    /// The overlapping-relation graph `Q̃`, rebuilt in place per search.
    overlap: OverlapGraph,
    /// Working memory for `Q̃` construction and the MWIS solvers.
    partition: PartitionScratch,
    /// MWIS output buffer (indices into `pool`).
    selection: Vec<usize>,
    /// Nanoseconds spent in the partition stage (`Q̃` build + MWIS)
    /// since the last [`SearchScratch::take_partition_nanos`].
    partition_nanos: u64,
    /// Nanoseconds spent running range queries since the last
    /// [`SearchScratch::take_range_query_stats`].
    range_nanos: u64,
    /// Range-query hits (distinct `(probe, graph)` pairs) produced in
    /// the same window — the phase's correctness fingerprint.
    range_hits: u64,
}

impl SearchScratch {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Candidates produced by the last `search_into` (sorted by id).
    pub(crate) fn candidates(&self) -> &[GraphId] {
        &self.cand_buf
    }

    /// Partition lower bounds parallel to
    /// [`SearchScratch::candidates`].
    pub(crate) fn candidate_bounds(&self) -> &[f64] {
        &self.cand_lb
    }

    /// The verifier scratch folded into this search scratch (`knn`
    /// drives per-candidate verification through it directly).
    pub(crate) fn verify_scratch(&mut self) -> &mut VerifyScratch {
        &mut self.verify
    }

    /// Returns the verification-phase counters (calls, precheck
    /// refutations, DFS nodes expanded/pruned, nanos) accumulated since
    /// the last call, and resets them. `pipeline_bench` reports the
    /// phase as its own `verification` row.
    pub fn take_verify_stats(&mut self) -> VerifyStats {
        self.verify.take_stats()
    }

    /// Returns the nanoseconds spent in the partition stage (building
    /// `Q̃` and solving the MWIS) since the last call, and resets the
    /// counter. `pipeline_bench` uses this to report the stage as its
    /// own phase.
    pub fn take_partition_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.partition_nanos)
    }

    /// Returns `(nanoseconds, hits)` of the range-query phase — the
    /// time spent answering the unique probes of each search, and the
    /// total hits they produced (distinct `(probe, graph)` pairs, the
    /// phase's machine-independent fingerprint) — since the last call,
    /// and resets both counters. `pipeline_bench` reports the phase as
    /// its own gated row.
    pub fn take_range_query_stats(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.range_nanos), std::mem::take(&mut self.range_hits))
    }

    /// Prepares for a search over `n` database graphs.
    fn begin(&mut self, n: usize) {
        self.candidates.reset(n);
        self.mask.reset(n);
        if self.bound.len() < n {
            self.bound.resize(n, 0.0);
            self.seen_in.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.memo.clear();
        self.weights.clear();
        self.slots_used = 0;
        self.slot_of.clear();
        self.unique_fragment.clear();
        self.intersected.clear();
        self.slot_complete.clear();
        self.cand_buf.clear();
        self.cand_lb.clear();
        self.pool.clear();
        self.selection.clear();
    }

    /// Maps a fragment to its unique-probe slot, allocating a new slot
    /// for first-seen `(feature, vector)` pairs.
    fn assign_slot(
        &mut self,
        fragment_idx: usize,
        feature: pis_mining::FeatureId,
        vector: FragmentVectorRef<'_>,
    ) {
        self.key_buf.clear();
        self.key_buf.push(feature.0 as u64);
        match vector {
            FragmentVectorRef::Labels(v) => self.key_buf.extend(v.iter().map(|l| l.0 as u64)),
            FragmentVectorRef::Weights(v) => self.key_buf.extend(v.iter().map(|w| w.to_bits())),
        }
        let slot = match self.memo.get(&self.key_buf) {
            Some(&s) => s,
            None => {
                let s = self.slots_used;
                self.slots_used += 1;
                if self.hits.len() < self.slots_used {
                    self.hits.push(Vec::new());
                }
                self.memo.insert(self.key_buf.clone(), s);
                self.unique_fragment.push(fragment_idx);
                self.intersected.push(false);
                self.slot_complete.push(true);
                s
            }
        };
        self.slot_of.push(slot);
    }
}

/// The PIS search pipeline bound to an index and its database.
pub struct PisSearcher<'a> {
    index: &'a FragmentIndex,
    database: &'a [LabeledGraph],
    config: PisConfig,
    /// Scatter-gather router, present iff `config.shard` is set. Owns
    /// the per-shard health/replica state shared by every query issued
    /// through this searcher.
    router: Option<ShardRouter>,
}

impl<'a> PisSearcher<'a> {
    /// Binds a searcher to an index and the database it was built from.
    ///
    /// # Panics
    /// Panics if `database.len()` differs from the index's graph count.
    pub fn new(index: &'a FragmentIndex, database: &'a [LabeledGraph], config: PisConfig) -> Self {
        assert_eq!(
            database.len(),
            index.graph_count(),
            "database does not match the index it claims to back"
        );
        let router = config.shard.clone().map(ShardRouter::new);
        PisSearcher { index, database, config, router }
    }

    /// The searcher's configuration.
    pub fn config(&self) -> &PisConfig {
        &self.config
    }

    /// The scatter-gather shard router, when `config.shard` is set.
    /// Exposes per-shard health snapshots, the replica handoff hook,
    /// and force-quarantine for tests/operators.
    pub fn router(&self) -> Option<&ShardRouter> {
        self.router.as_ref()
    }

    /// The fragment index this searcher queries.
    pub fn index(&self) -> &FragmentIndex {
        self.index
    }

    /// The database this searcher verifies against.
    pub fn database(&self) -> &[LabeledGraph] {
        self.database
    }

    /// Runs Algorithm 2 (plus the structure check and verification if
    /// configured) for one query.
    ///
    /// Allocates a fresh [`SearchScratch`] per call; callers issuing
    /// many searches should hold one and use
    /// [`PisSearcher::search_with_scratch`].
    pub fn search(&self, query: &LabeledGraph, sigma: f64) -> SearchOutcome {
        self.search_with_scratch(query, sigma, &mut SearchScratch::new())
    }

    /// [`PisSearcher::search`] with caller-provided scratch state, so
    /// repeated searches reuse every internal buffer.
    pub fn search_with_scratch(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        let budget = BudgetState::new(&self.config.budget);
        self.search_with_state(query, sigma, &budget, scratch)
    }

    /// [`PisSearcher::search`] under a per-call [`QueryBudget`] that
    /// overrides the configured one. When the budget trips, the
    /// outcome's [`SearchOutcome::completeness`] is
    /// [`Truncated`](Completeness::Truncated) and unverified survivors
    /// land in [`SearchOutcome::possible`].
    pub fn search_budgeted(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        budget: &QueryBudget,
    ) -> SearchOutcome {
        self.search_budgeted_with_scratch(query, sigma, budget, &mut SearchScratch::new())
    }

    /// [`PisSearcher::search_budgeted`] with caller-provided scratch.
    pub fn search_budgeted_with_scratch(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        budget: &QueryBudget,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        let state = BudgetState::new(budget);
        self.search_with_state(query, sigma, &state, scratch)
    }

    /// [`PisSearcher::search`] with boundary validation: rejects a
    /// non-finite or negative `sigma` and non-finite query weights with
    /// a typed [`QueryError`] instead of computing garbage.
    pub fn try_search(
        &self,
        query: &LabeledGraph,
        sigma: f64,
    ) -> Result<SearchOutcome, QueryError> {
        self.try_search_with_scratch(query, sigma, &mut SearchScratch::new())
    }

    /// [`PisSearcher::try_search`] with caller-provided scratch.
    pub fn try_search_with_scratch(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        scratch: &mut SearchScratch,
    ) -> Result<SearchOutcome, QueryError> {
        validate_sigma(sigma)?;
        validate_query(query)?;
        Ok(self.search_with_scratch(query, sigma, scratch))
    }

    /// The shared body of every search entry point: runs the funnel and
    /// verification under one resolved budget state and assembles the
    /// outcome (completeness included).
    fn search_with_state(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        budget: &BudgetState,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        let mut stats = self.search_into(query, sigma, scratch, budget);
        let candidates = scratch.cand_buf.clone();
        let mut answers = Vec::new();
        let mut answer_distances = Vec::new();
        let mut possible = Vec::new();
        if self.config.verify {
            stats.verification_calls = candidates.len();
            let (resolved, unverified) = self.verify_candidates_budgeted(
                query,
                &candidates,
                sigma,
                &mut scratch.verify,
                budget,
            );
            for (gid, d) in resolved {
                answers.push(gid);
                answer_distances.push(d);
            }
            possible = unverified;
        }
        // A budget trip outranks shard loss: `Truncated` already says
        // "superset semantics apply everywhere", which subsumes the
        // weaker per-shard statement.
        let completeness = match Completeness::of_state(budget) {
            Completeness::Exact if !stats.degraded_shards.is_empty() => {
                Completeness::Degraded { shards: stats.degraded_shards.clone() }
            }
            c => c,
        };
        SearchOutcome { candidates, answers, answer_distances, possible, completeness, stats }
    }

    /// The pruning funnel (Algorithm 2 lines 3–23 plus the structure
    /// check): leaves the candidate list in `scratch` and returns the
    /// stage counters. Verification is the caller's business.
    ///
    /// Under an exhausted budget every stage degrades to a *sound
    /// superset*: incomplete range queries neither prune nor join the
    /// fragment pool, a tripped exact partition demotes to
    /// `EnhancedGreedy(2)`, and interrupted structure checks keep their
    /// candidate. The flow is deliberately linear — no early returns —
    /// so the fragment arena always returns to the scratch.
    pub(crate) fn search_into(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        scratch: &mut SearchScratch,
        budget: &BudgetState,
    ) -> SearchStats {
        let n = self.database.len();
        let mut stats = SearchStats {
            rtree_stale_classes: self.index.rtree_stale_classes(),
            ..SearchStats::default()
        };

        // Lines 3–4: enumerate indexed fragments into the scratch-owned
        // arena (taken out for the duration of the borrow).
        let mut fragments = std::mem::take(&mut scratch.fragments);
        self.index.enumerate_query_fragments_into(query, &mut fragments);
        stats.query_fragments = fragments.len();

        // Lines 6–18: one range query per *unique* `(feature, vector)`
        // probe — automorphic fragments share hits and selectivity.
        scratch.begin(n);
        for i in 0..fragments.len() {
            scratch.assign_slot(i, fragments.feature(i), fragments.vector(i));
        }
        let scatter = self.run_range_queries(&fragments, sigma, scratch, budget);
        stats.degraded_shards = scatter.degraded;
        stats.shard_retries = scatter.retries;
        stats.shard_failures = scatter.failures;
        for s in 0..scratch.slots_used {
            // An incomplete slot's hits are cleared; a selectivity
            // computed from them would be fiction. The placeholder never
            // matters: incomplete slots are barred from the pool below.
            let w = if scratch.slot_complete[s] {
                selectivity(&scratch.hits[s], n, sigma, self.config.lambda)
            } else {
                0.0
            };
            scratch.weights.push(w);
        }

        // `CQ` seeds from the first completed fragment's hits (the
        // zero-fragment query — and the fully truncated one — keeps the
        // full universe) and shrinks by word-parallel intersection;
        // duplicate probes are idempotent and skipped, incomplete slots
        // must not prune.
        let mut seeded = false;
        for fi in 0..fragments.len() {
            let slot = scratch.slot_of[fi];
            if scratch.intersected[slot] || !scratch.slot_complete[slot] {
                continue;
            }
            scratch.intersected[slot] = true;
            if !seeded {
                seeded = true;
                for &(g, _) in &scratch.hits[slot] {
                    scratch.candidates.insert(g);
                }
            } else {
                scratch.mask.clear();
                for &(g, _) in &scratch.hits[slot] {
                    scratch.mask.insert(g);
                }
                scratch.candidates.intersect_with(&scratch.mask);
                if scratch.candidates.is_empty() {
                    break;
                }
            }
        }
        if !seeded {
            scratch.candidates.fill();
        }
        stats.candidates_after_intersection = scratch.candidates.count();

        // Line 5: drop fragments with selectivity <= epsilon. Fragments
        // whose range query was cut short carry no trustworthy hits or
        // weight — partitioning on them would prune unsoundly, so they
        // never enter the pool.
        scratch.pool.clear();
        scratch.pool.extend((0..fragments.len()).filter(|&fi| {
            let slot = scratch.slot_of[fi];
            scratch.slot_complete[slot] && scratch.weights[slot] > self.config.epsilon
        }));
        stats.fragments_in_pool = scratch.pool.len();

        // Lines 19–20: overlapping-relation graph + MWIS partition. The
        // vertex sets are borrowed straight from the arena and `Q̃` is
        // rebuilt in place through the partition scratch, so in steady
        // state this whole stage allocates nothing.
        let partition_start = std::time::Instant::now();
        {
            let weights = &scratch.weights;
            let slot_of = &scratch.slot_of;
            scratch.overlap.rebuild_from_sets(
                &mut scratch.partition,
                scratch.pool.iter().map(|&fi| (weights[slot_of[fi]], fragments.vertices(fi))),
            );
        }
        let (algo, fell_back) = effective_partition_algo(self.config.partition, scratch.pool.len());
        stats.exact_fallback = fell_back;
        match algo {
            PartitionAlgo::Greedy => {
                greedy_mwis_with(&scratch.overlap, &mut scratch.partition, &mut scratch.selection);
            }
            PartitionAlgo::EnhancedGreedy(k) => enhanced_greedy_mwis_with(
                &scratch.overlap,
                k,
                &mut scratch.partition,
                &mut scratch.selection,
            ),
            PartitionAlgo::Exact => {
                let completed = exact_mwis_budgeted_with(
                    &scratch.overlap,
                    &mut scratch.partition,
                    &mut scratch.selection,
                    budget,
                );
                if !completed {
                    // Same demotion as the node-cap fallback: the
                    // incumbent of an interrupted branch-and-bound is
                    // not the optimum, so the polynomial greedy takes
                    // over and the stats flag it.
                    stats.exact_fallback = true;
                    enhanced_greedy_mwis_with(
                        &scratch.overlap,
                        EXACT_FALLBACK_K,
                        &mut scratch.partition,
                        &mut scratch.selection,
                    );
                }
            }
        }
        scratch.partition_nanos += partition_start.elapsed().as_nanos() as u64;
        stats.partition_size = scratch.selection.len();
        stats.partition_weight = selection_weight(&scratch.overlap, &scratch.selection);

        // Lines 21–23: partition lower-bound pruning. Each partition
        // fragment's hits stream into a dense stamped accumulator; a
        // candidate survives iff every partition fragment contained it
        // and the summed bound stays within sigma.
        let partition: Vec<usize> = scratch.selection.iter().map(|&i| scratch.pool[i]).collect();
        stats.partition = partition
            .iter()
            .map(|&fi| PartitionFragment {
                feature: fragments.feature(fi),
                vertices: fragments.vertices(fi).len(),
                weight: scratch.weights[scratch.slot_of[fi]],
            })
            .collect();
        scratch.generation += 1;
        let generation = scratch.generation;
        for &fi in &partition {
            for &(g, d) in &scratch.hits[scratch.slot_of[fi]] {
                if !scratch.candidates.contains(g) {
                    continue;
                }
                let i = g.index();
                if scratch.stamp[i] != generation {
                    scratch.stamp[i] = generation;
                    scratch.bound[i] = d;
                    scratch.seen_in[i] = 1;
                } else {
                    scratch.bound[i] += d;
                    scratch.seen_in[i] += 1;
                }
            }
        }
        let members = partition.len() as u32;
        for g in scratch.candidates.iter() {
            let i = g.index();
            let keep = members == 0
                || (scratch.stamp[i] == generation
                    && scratch.seen_in[i] == members
                    && scratch.bound[i] <= sigma);
            if keep {
                scratch.cand_buf.push(g);
                scratch.cand_lb.push(if members == 0 { 0.0 } else { scratch.bound[i] });
            }
        }
        stats.candidates_after_partition = scratch.cand_buf.len();

        // The gIndex substrate's exact containment test (the paper
        // builds PIS on gIndex, so its candidates are always
        // structure-containing graphs). The lower bounds stay in
        // lockstep with the surviving candidates. The query's match plan
        // is target-independent, so each check reuses the verify
        // scratch's plan, adjacency bitset and DFS buffers instead of
        // rebuilding them per candidate; large batches spread across the
        // pool like verification does (most checks are refutations,
        // which pay for a full DFS).
        if self.config.structure_check {
            let database = self.database;
            let pool = ScopedPool::default();
            let parallel_keep: Option<Vec<bool>> = (pool.workers() > 1
                && !ScopedPool::in_worker()
                && scratch.cand_buf.len() >= self.config.parallel_verify_threshold.max(2))
            .then(|| {
                pool.map_with(
                    &scratch.cand_buf,
                    self.config.parallel_verify_threshold,
                    || {
                        let mut verify = VerifyScratch::new();
                        verify.begin_query(query);
                        verify
                    },
                    |verify, _, &gid| {
                        // A check the budget interrupts keeps its
                        // candidate — refutation needs a completed DFS.
                        budget.is_tripped()
                            || verify
                                .contains_structure_budgeted(query, &database[gid.index()], budget)
                                .unwrap_or(true)
                    },
                )
            });
            if parallel_keep.is_none() {
                scratch.verify.begin_query(query);
            }
            let mut kept = 0;
            for i in 0..scratch.cand_buf.len() {
                let gid = scratch.cand_buf[i];
                let keep = match &parallel_keep {
                    Some(flags) => flags[i],
                    None => {
                        budget.is_tripped()
                            || scratch
                                .verify
                                .contains_structure_budgeted(query, &database[gid.index()], budget)
                                .unwrap_or(true)
                    }
                };
                if keep {
                    scratch.cand_buf[kept] = gid;
                    scratch.cand_lb[kept] = scratch.cand_lb[i];
                    kept += 1;
                }
            }
            scratch.cand_buf.truncate(kept);
            scratch.cand_lb.truncate(kept);
        }
        stats.candidates_after_structure = scratch.cand_buf.len();
        scratch.fragments = fragments;
        stats
    }

    /// Runs the range queries of one search: unique probe slots are
    /// grouped into *sibling batches* — consecutive slots of the same
    /// feature (the enumeration is feature-major, so equal features are
    /// always adjacent) — and each batch is answered in one pass by
    /// [`FragmentIndex::range_query_batch_normalized_into`], which
    /// prices every level's alphabet once per distinct query label and
    /// descends the class arena once for the whole group. Lone probes
    /// keep the scalar descent. Large probe sets fan the batches out
    /// across the pool instead.
    fn run_range_queries(
        &self,
        fragments: &FragmentBuffer,
        sigma: f64,
        scratch: &mut SearchScratch,
        budget: &BudgetState,
    ) -> ScatterStats {
        let start = std::time::Instant::now();
        let pool = ScopedPool::default();
        let unique = scratch.slots_used;
        let mut scatter = ScatterStats::default();
        if let Some(router) = &self.router {
            scatter = self.run_range_queries_sharded(router, fragments, sigma, scratch, budget);
        } else if pool.workers() > 1
            && !ScopedPool::in_worker()
            && unique >= self.config.parallel_fragment_threshold
        {
            // Inside a pool worker (e.g. a `run_workload` fan-out) a
            // nested map would run serially anyway — take the
            // scratch-reusing serial path directly instead of
            // allocating per-probe buffers.
            let index = self.index;
            let unique_fragment = &scratch.unique_fragment;
            let groups = sibling_groups(fragments, unique_fragment);
            // One group's per-slot hit lists plus its completeness flag
            // (false = the batch descent tripped the budget mid-group).
            type GroupHits = (Vec<Vec<(GraphId, f64)>>, bool);
            let results: Vec<GroupHits> =
                pool.map_with(&groups, 2, RangeScratch::new, |range, _, &(s, e)| {
                    let mut outs: Vec<Vec<(GraphId, f64)>> = vec![Vec::new(); e - s];
                    let complete = index.range_query_batch_normalized_budgeted_into(
                        fragments.feature(unique_fragment[s]),
                        e - s,
                        |i| fragments.vector(unique_fragment[s + i]),
                        sigma,
                        range,
                        budget,
                        &mut outs,
                    );
                    (outs, complete)
                });
            for (&(s, _), (outs, complete)) in groups.iter().zip(results) {
                for (k, hits) in outs.into_iter().enumerate() {
                    scratch.hits[s + k] = hits;
                    scratch.slot_complete[s + k] = complete;
                }
            }
        } else {
            let SearchScratch { range, hits, unique_fragment, slot_complete, .. } = scratch;
            for_each_sibling_group(fragments, unique_fragment, |s, e| {
                let feature = fragments.feature(unique_fragment[s]);
                let complete = if e - s == 1 {
                    self.index.range_query_normalized_budgeted_into(
                        feature,
                        fragments.vector(unique_fragment[s]),
                        sigma,
                        range,
                        budget,
                        &mut hits[s],
                    )
                } else {
                    // A batch descent prices all siblings in one pass;
                    // a trip mid-descent invalidates the whole group.
                    self.index.range_query_batch_normalized_budgeted_into(
                        feature,
                        e - s,
                        |i| fragments.vector(unique_fragment[s + i]),
                        sigma,
                        range,
                        budget,
                        &mut hits[s..e],
                    )
                };
                for flag in &mut slot_complete[s..e] {
                    *flag = complete;
                }
            });
        }
        scratch.range_nanos += start.elapsed().as_nanos() as u64;
        scratch.range_hits += scratch.hits[..unique].iter().map(|h| h.len() as u64).sum::<u64>();
        scatter
    }

    /// Fault-tolerant scatter-gather over class shards (`DESIGN.md`
    /// §6.12). Probe groups are bucketed by owning shard
    /// (`feature index mod N`), each shard's bucket runs as one job on
    /// the shared pool against a zero-copy
    /// [`ShardView`](pis_index::ShardView) under a
    /// sub-deadline carved from the query budget, and a failed attempt
    /// retries once against the next replica after a deterministic
    /// backoff. Quarantined shards are skipped up front; a shard that
    /// stays dark has its slots darkened — hits cleared, completeness
    /// flag lowered — which the funnel already treats soundly (missing
    /// data never prunes), and is reported in `ScatterStats::degraded`.
    ///
    /// With one healthy shard and an unlimited budget this path issues
    /// the exact same scalar/batch descents in the exact same group
    /// order as the serial arm of [`Self::run_range_queries`], so its
    /// output is byte-identical to the unsharded funnel
    /// (`proptest_shard.rs` holds that bitwise).
    fn run_range_queries_sharded(
        &self,
        router: &ShardRouter,
        fragments: &FragmentBuffer,
        sigma: f64,
        scratch: &mut SearchScratch,
        budget: &BudgetState,
    ) -> ScatterStats {
        let mut scatter = ScatterStats::default();
        let seq = router.begin_query();
        let shards = router.shards();
        let reserve = router.config().coordinator_reserve;
        let groups = sibling_groups(fragments, &scratch.unique_fragment);

        // Bucket sibling groups by owning shard. Group order within a
        // bucket follows the feature-major enumeration, so a one-shard
        // scatter sees the exact group sequence of the serial path.
        let mut by_shard: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
        for &(s, e) in &groups {
            let feature = fragments.feature(scratch.unique_fragment[s]);
            by_shard[router.shard_of(feature.index())].push((s, e));
        }
        let mut jobs: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for (shard, shard_groups) in by_shard.into_iter().enumerate() {
            if shard_groups.is_empty() {
                continue;
            }
            if router.should_probe(shard) {
                jobs.push((shard, shard_groups));
            } else {
                // Quarantined and not yet due for a cooldown re-probe:
                // stay dark without spending a descent.
                scatter.degraded.push(shard);
                darken_slots(scratch, &shard_groups);
            }
        }

        let index = self.index;
        let unique_fragment = &scratch.unique_fragment;
        let pool = ScopedPool::default();
        type ShardOutcome = (Result<GroupHits, ShardError>, usize, usize);
        let results: Vec<ShardOutcome> =
            pool.map_with(&jobs, 2, RangeScratch::new, |range, _, (shard, shard_groups)| {
                let shard = *shard;
                let mut retries = 0;
                let mut failures = 0;
                router.record_call(shard);
                let mut outcome = shard_attempt(
                    index,
                    router,
                    fragments,
                    unique_fragment,
                    shard,
                    shards,
                    0,
                    sigma,
                    reserve,
                    budget,
                    range,
                    shard_groups,
                );
                if let Err(error) = outcome {
                    failures += 1;
                    router.record_failure(error);
                    // One failover: deterministic backoff, then the
                    // replica set's next role serves the retry.
                    retries += 1;
                    router.record_retry(shard);
                    std::thread::sleep(router.backoff_delay(seq, shard, 1));
                    router.record_call(shard);
                    outcome = shard_attempt(
                        index,
                        router,
                        fragments,
                        unique_fragment,
                        shard,
                        shards,
                        1,
                        sigma,
                        reserve,
                        budget,
                        range,
                        shard_groups,
                    );
                    if let Err(error) = outcome {
                        failures += 1;
                        router.record_failure(error);
                    }
                }
                if outcome.is_ok() {
                    router.record_success(shard);
                }
                (outcome, retries, failures)
            });

        for ((shard, shard_groups), (outcome, retries, failures)) in jobs.iter().zip(results) {
            scatter.retries += retries;
            scatter.failures += failures;
            match outcome {
                Ok(per_group) => {
                    for (&(s, _), (complete, hits)) in shard_groups.iter().zip(per_group) {
                        for (k, h) in hits.into_iter().enumerate() {
                            scratch.hits[s + k] = h;
                            scratch.slot_complete[s + k] = complete;
                        }
                    }
                }
                Err(_) => {
                    // Both replicas failed: the shard stays dark for
                    // this query and its classes leave the intersection
                    // the PR 7 way.
                    scatter.degraded.push(*shard);
                    darken_slots(scratch, shard_groups);
                }
            }
        }
        scatter.degraded.sort_unstable();
        scatter
    }

    /// The seed's straight-line transcription of Algorithm 2, kept as an
    /// executable specification of the optimized funnel: per-fragment
    /// `Vec` intersection, per-candidate binary-search pruning, no
    /// memoization, no scratch. Differential tests
    /// (`tests/proptest_funnel.rs`) and the `pipeline_bench` baseline
    /// hold [`PisSearcher::search`] to byte-identical `candidates`,
    /// `answers` and `SearchStats` against this path.
    pub fn search_reference(&self, query: &LabeledGraph, sigma: f64) -> SearchOutcome {
        let n = self.database.len();
        let mut stats = SearchStats {
            rtree_stale_classes: self.index.rtree_stale_classes(),
            ..SearchStats::default()
        };

        // Lines 3–4: enumerate indexed fragments.
        let fragments = self.index.enumerate_query_fragments(query);
        stats.query_fragments = fragments.len();

        // Lines 6–18: one range query per fragment; intersect candidate
        // sets and compute selectivities. Range-query hits arrive sorted
        // by graph id, so the intersection is a linear merge.
        let mut candidates: Vec<GraphId> = (0..n as u32).map(GraphId).collect();
        let mut scored: Vec<ScoredFragment> = Vec::with_capacity(fragments.len());
        for fragment in fragments {
            let hits = self.index.range_query(fragment.feature, &fragment.vector, sigma);
            let w = selectivity(&hits, n, sigma, self.config.lambda);
            candidates = intersect_with_hits(&candidates, &hits);
            scored.push((fragment, hits, w));
        }
        stats.candidates_after_intersection = candidates.len();

        // Line 5: drop fragments with selectivity <= epsilon.
        let pool: Vec<&ScoredFragment> =
            scored.iter().filter(|(_, _, w)| *w > self.config.epsilon).collect();
        stats.fragments_in_pool = pool.len();

        // Lines 19–20: overlapping-relation graph + MWIS partition, on
        // the retained pointer-adjacency reference implementations.
        let overlap_input: Vec<(f64, Vec<pis_graph::VertexId>)> =
            pool.iter().map(|(f, _, w)| (*w, f.vertices.clone())).collect();
        let overlap = AdjOverlapGraph::new(&overlap_input);
        let (algo, fell_back) = effective_partition_algo(self.config.partition, pool.len());
        stats.exact_fallback = fell_back;
        let selection = match algo {
            PartitionAlgo::Greedy => greedy_mwis_ref(&overlap),
            PartitionAlgo::EnhancedGreedy(k) => enhanced_greedy_mwis_ref(&overlap, k),
            PartitionAlgo::Exact => exact_mwis_ref(&overlap),
        };
        stats.partition_size = selection.len();
        stats.partition_weight = overlap.selection_weight(&selection);

        // Lines 21–23: partition lower-bound pruning.
        let partition: Vec<&ScoredFragment> = selection.iter().map(|&i| pool[i]).collect();
        stats.partition = partition
            .iter()
            .map(|(f, _, w)| PartitionFragment {
                feature: f.feature,
                vertices: f.vertices.len(),
                weight: *w,
            })
            .collect();
        candidates.retain(|gid| {
            let mut bound = 0.0;
            for (_, hits, _) in &partition {
                match hits.binary_search_by_key(gid, |(g, _)| *g) {
                    Ok(i) => bound += hits[i].1,
                    Err(_) => return false, // structure violation
                }
                if bound > sigma {
                    return false;
                }
            }
            true
        });
        stats.candidates_after_partition = candidates.len();

        if self.config.structure_check {
            candidates.retain(|gid| {
                pis_graph::iso::is_subgraph(
                    query,
                    &self.database[gid.index()],
                    pis_graph::iso::IsoConfig::STRUCTURE,
                )
            });
        }
        stats.candidates_after_structure = candidates.len();

        // Step 3: candidate verification, on the seed's one-shot
        // verifier (no remaining-cost bound, no scratch, no precheck).
        let mut answers = Vec::new();
        let mut answer_distances = Vec::new();
        if self.config.verify {
            stats.verification_calls = candidates.len();
            let distance = distance_dyn(self.index.distance());
            for &gid in &candidates {
                if let Some(d) = min_superimposed_distance_reference(
                    query,
                    &self.database[gid.index()],
                    distance,
                    sigma,
                ) {
                    answers.push(gid);
                    answer_distances.push(d);
                }
            }
        }

        SearchOutcome {
            candidates,
            answers,
            answer_distances,
            possible: Vec::new(),
            completeness: Completeness::Exact,
            stats,
        }
    }

    /// Verifies candidates with the bound-propagating verifier, through
    /// the shared pool when the batch is large enough to amortize thread
    /// startup. Results stay in candidate order; phase counters land in
    /// `verify` either way (parallel lanes verify through per-worker
    /// scratches and merge their counters back).
    ///
    /// Returns the verified `(graph, distance)` answers plus the
    /// candidates whose verification the budget interrupted (never
    /// disproved — the caller reports them as `possible`). Pass
    /// [`BudgetState::unlimited`] for the plain exhaustive pass.
    pub(crate) fn verify_candidates_budgeted(
        &self,
        query: &LabeledGraph,
        candidates: &[GraphId],
        sigma: f64,
        verify: &mut VerifyScratch,
        budget: &BudgetState,
    ) -> (Vec<(GraphId, f64)>, Vec<GraphId>) {
        // Dispatch on the concrete distance once per batch so the whole
        // branch-and-bound loop monomorphizes (per-element cost calls
        // inline) instead of paying virtual dispatch per DFS node.
        match self.index.distance() {
            IndexDistance::Mutation(md) => {
                self.verify_candidates_with(query, candidates, sigma, verify, md, budget)
            }
            IndexDistance::Linear(ld) => {
                self.verify_candidates_with(query, candidates, sigma, verify, ld, budget)
            }
        }
    }

    fn verify_candidates_with<D: SuperimposedDistance>(
        &self,
        query: &LabeledGraph,
        candidates: &[GraphId],
        sigma: f64,
        verify: &mut VerifyScratch,
        distance: &D,
        budget: &BudgetState,
    ) -> (Vec<(GraphId, f64)>, Vec<GraphId>) {
        let pool = ScopedPool::default();
        let mut out = Vec::new();
        let mut possible = Vec::new();
        if pool.workers() > 1
            && !ScopedPool::in_worker()
            && candidates.len() >= self.config.parallel_verify_threshold.max(2)
        {
            let database = self.database;
            let results = pool.map_with(
                candidates,
                self.config.parallel_verify_threshold,
                || {
                    let mut scratch = VerifyScratch::new();
                    scratch.begin_query(query);
                    scratch
                },
                |scratch, _, &gid| {
                    // A trip observed before this candidate starts means
                    // its DFS could never complete — skip straight to
                    // `possible` instead of burning the checkpoint
                    // interval first.
                    let d = if budget.is_tripped() {
                        Err(pis_graph::budget::Interrupted)
                    } else {
                        scratch.distance_within_budgeted(
                            query,
                            &database[gid.index()],
                            distance,
                            sigma,
                            budget,
                        )
                    };
                    (d, scratch.take_stats())
                },
            );
            for (&gid, (resolved, stats)) in candidates.iter().zip(results) {
                verify.absorb_stats(&stats);
                match resolved {
                    Ok(Some(d)) => out.push((gid, d)),
                    Ok(None) => {}
                    Err(_) => possible.push(gid),
                }
            }
        } else {
            verify.begin_query(query);
            for &gid in candidates {
                if budget.is_tripped() {
                    possible.push(gid);
                    continue;
                }
                match verify.distance_within_budgeted(
                    query,
                    &self.database[gid.index()],
                    distance,
                    sigma,
                    budget,
                ) {
                    Ok(Some(d)) => out.push((gid, d)),
                    Ok(None) => {}
                    Err(_) => possible.push(gid),
                }
            }
        }
        (out, possible)
    }
}

/// Visits the unique probe slots as maximal runs `[s, e)` of equal
/// feature — the sibling batches of the range-query phase. Fragment
/// enumeration is feature-major, so one linear scan finds every group;
/// the callback form keeps the serial funnel allocation-free while the
/// parallel fan-out collects the same groups through
/// [`sibling_groups`].
fn for_each_sibling_group(
    fragments: &FragmentBuffer,
    unique_fragment: &[usize],
    mut visit: impl FnMut(usize, usize),
) {
    let mut s = 0;
    while s < unique_fragment.len() {
        let feature = fragments.feature(unique_fragment[s]);
        let mut e = s + 1;
        while e < unique_fragment.len() && fragments.feature(unique_fragment[e]) == feature {
            e += 1;
        }
        visit(s, e);
        s = e;
    }
}

/// The collected form of [`for_each_sibling_group`], for the parallel
/// fan-out's work list.
fn sibling_groups(fragments: &FragmentBuffer, unique_fragment: &[usize]) -> Vec<(usize, usize)> {
    let mut groups = Vec::new();
    for_each_sibling_group(fragments, unique_fragment, |s, e| groups.push((s, e)));
    groups
}

/// What one query's scatter-gather observed: which shards stayed dark
/// and how much failover work was spent. Folded into [`SearchStats`].
#[derive(Default)]
struct ScatterStats {
    /// Shards whose slots were darkened (quarantine skip or exhausted
    /// failover), sorted ascending by the scatter's epilogue.
    degraded: Vec<usize>,
    /// Replica-failover retries across all shards.
    retries: usize,
    /// Failed shard attempts across all shards.
    failures: usize,
}

/// One sibling group's scatter result: the slot-completeness flag plus
/// the per-member hit lists, in group order.
type GroupHits = Vec<(bool, Vec<Vec<(GraphId, f64)>>)>;

/// One attempt at a shard's probe bucket, against the replica role the
/// shard's handoff generation selects for `attempt`. Runs the same
/// scalar/batch descents as the serial funnel through a
/// [`ShardView`](pis_index::ShardView), under a sub-deadline carved
/// from `parent` (the parent budget passes through unchanged when it
/// has no wall-clock deadline). Worker panics are caught here and
/// surface as [`ShardError::Panicked`] so one bad shard cannot take
/// down the coordinator; an incomplete descent while the *parent* is
/// healthy means the sub-deadline tripped and reports
/// [`ShardError::DeadlineExceeded`] (retryable), while a tripped parent
/// keeps PR 7's truncation semantics — incomplete flags stand, nothing
/// retries.
#[allow(clippy::too_many_arguments)]
fn shard_attempt(
    index: &FragmentIndex,
    router: &ShardRouter,
    fragments: &FragmentBuffer,
    unique_fragment: &[usize],
    shard: usize,
    shards: usize,
    attempt: u32,
    sigma: f64,
    reserve: f64,
    parent: &BudgetState,
    range: &mut RangeScratch,
    groups: &[(usize, usize)],
) -> Result<GroupHits, ShardError> {
    let role = router.replica_set(shard).role_of(attempt);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::shard::consult_failpoint(shard, role)?;
        let view = index.shard_view(shard, shards);
        let slice = parent.shard_slice(reserve);
        let sub = slice.as_ref().unwrap_or(parent);
        let mut out = Vec::with_capacity(groups.len());
        for &(s, e) in groups {
            let feature = fragments.feature(unique_fragment[s]);
            let mut hits: Vec<Vec<(GraphId, f64)>> = vec![Vec::new(); e - s];
            let complete = if e - s == 1 {
                view.range_query_normalized_budgeted_into(
                    feature,
                    fragments.vector(unique_fragment[s]),
                    sigma,
                    range,
                    sub,
                    &mut hits[0],
                )
            } else {
                view.range_query_batch_normalized_budgeted_into(
                    feature,
                    e - s,
                    |i| fragments.vector(unique_fragment[s + i]),
                    sigma,
                    range,
                    sub,
                    &mut hits,
                )
            };
            if !complete && !parent.is_tripped() {
                // The sub-deadline (not the query's own budget) cut
                // this descent short: a shard fault, eligible for the
                // replica retry.
                return Err(ShardError::DeadlineExceeded { shard });
            }
            out.push((complete, hits));
        }
        Ok(out)
    }));
    match result {
        Ok(outcome) => outcome,
        Err(_) => Err(ShardError::Panicked { shard }),
    }
}

/// Darkens a dark shard's probe slots: hits cleared, completeness flag
/// lowered. The funnel then treats them exactly like PR 7's incomplete
/// range slots — excluded from the intersection, barred from the
/// selectivity pool — so a missing shard can only widen the candidate
/// set, never prune it.
fn darken_slots(scratch: &mut SearchScratch, groups: &[(usize, usize)]) {
    for &(s, e) in groups {
        for slot in s..e {
            scratch.hits[slot].clear();
            scratch.slot_complete[slot] = false;
        }
    }
}

/// EnhancedGreedy order used when the exact solver's node cap forces a
/// fallback (the paper's evaluated approximation setting).
const EXACT_FALLBACK_K: usize = 2;

/// Resolves the configured partition algorithm against the fragment
/// pool size: [`PartitionAlgo::Exact`] above [`EXACT_MWIS_MAX_NODES`]
/// demotes to `EnhancedGreedy(2)` instead of panicking mid-search.
/// Returns the algorithm to run and whether a fallback happened.
fn effective_partition_algo(configured: PartitionAlgo, pool_len: usize) -> (PartitionAlgo, bool) {
    match configured {
        PartitionAlgo::Exact if pool_len > EXACT_MWIS_MAX_NODES => {
            (PartitionAlgo::EnhancedGreedy(EXACT_FALLBACK_K), true)
        }
        algo => (algo, false),
    }
}

/// Intersects a sorted candidate list with sorted range-query hits.
fn intersect_with_hits(candidates: &[GraphId], hits: &[(GraphId, f64)]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(candidates.len().min(hits.len()));
    let (mut i, mut j) = (0, 0);
    while i < candidates.len() && j < hits.len() {
        match candidates[i].cmp(&hits[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(candidates[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Borrows the index distance as a trait object for verification.
pub(crate) fn distance_dyn(d: &IndexDistance) -> &dyn SuperimposedDistance {
    match d {
        IndexDistance::Mutation(md) => md,
        IndexDistance::Linear(ld) => ld,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_distance::oracle::sssd_brute;
    use pis_distance::MutationDistance;

    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};
    use pis_index::{Backend, IndexConfig};
    use pis_mining::exhaustive::exhaustive_features;

    fn cycle_with_edge_labels(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    fn build_index(db: &[LabeledGraph], max_edges: usize) -> FragmentIndex {
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, max_edges);
        FragmentIndex::build(
            db,
            features,
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig { backend: Backend::Default, ..IndexConfig::default() },
        )
    }

    fn example_db() -> Vec<LabeledGraph> {
        vec![
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 2]),
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]),
            cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]),
            pis_graph::graph::path_graph(7, Label(0), Label(1)),
        ]
    }

    #[test]
    fn answers_match_brute_force_oracle() {
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let md = MutationDistance::edge_hamming();
        let queries = [
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]),
            cycle_with_edge_labels(&[2, 1, 1, 1, 1, 1]),
        ];
        for q in &queries {
            for sigma in [0.0, 1.0, 2.0, 4.0] {
                let outcome = searcher.search(q, sigma);
                let expected: Vec<GraphId> =
                    sssd_brute(&db, q, &md, sigma).into_iter().map(|i| GraphId(i as u32)).collect();
                assert_eq!(outcome.answers, expected, "query mismatch at sigma={sigma}");
                // Soundness: candidates must cover every answer.
                for a in &expected {
                    assert!(outcome.candidates.contains(a), "candidate set lost answer {a}");
                }
            }
        }
    }

    #[test]
    fn optimized_funnel_equals_reference() {
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let mut scratch = SearchScratch::new();
        for q in [
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]),
        ] {
            for sigma in [0.0, 1.0, 2.0, 4.0] {
                let fast = searcher.search_with_scratch(&q, sigma, &mut scratch);
                let reference = searcher.search_reference(&q, sigma);
                assert_eq!(fast.candidates, reference.candidates, "sigma={sigma}");
                assert_eq!(fast.answers, reference.answers, "sigma={sigma}");
                assert_eq!(fast.stats, reference.stats, "sigma={sigma}");
            }
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_across_searches() {
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let mut scratch = SearchScratch::new();
        let queries = [
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]),
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
        ];
        let sigmas = [4.0, 0.0, 1.0];
        for (q, sigma) in queries.iter().zip(sigmas) {
            let reused = searcher.search_with_scratch(q, sigma, &mut scratch);
            let fresh = searcher.search(q, sigma);
            assert_eq!(reused.candidates, fresh.candidates);
            assert_eq!(reused.answers, fresh.answers);
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn pruning_is_monotone_in_sigma() {
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let mut last = 0;
        for sigma in [0.0, 1.0, 2.0, 3.0, 6.0] {
            let outcome = searcher.search(&q, sigma);
            assert!(outcome.candidates.len() >= last, "candidates shrank as sigma grew");
            last = outcome.candidates.len();
        }
    }

    #[test]
    fn partition_bound_prunes_beyond_intersection() {
        // The all-2 cycle passes single-fragment checks at sigma = 3
        // (any one ring fragment mutates within 3) but the partition sum
        // exceeds sigma, as in the paper's Example 4.
        let db = example_db();
        let index = build_index(&db, 6);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let outcome = searcher.search(&q, 2.0);
        assert!(
            outcome.stats.candidates_after_partition <= outcome.stats.candidates_after_intersection
        );
        // Graph 2 (all labels flipped, distance 6) must be pruned before
        // verification.
        assert!(!outcome.candidates.contains(&GraphId(2)));
    }

    #[test]
    fn stats_are_consistent() {
        let db = example_db();
        let index = build_index(&db, 3);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 1, 2, 1, 1, 1]);
        let o = searcher.search(&q, 1.0);
        assert!(o.stats.query_fragments >= o.stats.fragments_in_pool);
        assert!(o.stats.fragments_in_pool >= o.stats.partition_size);
        assert_eq!(o.stats.verification_calls, o.candidates.len());
        assert!(o.stats.candidates_after_partition >= o.stats.candidates_after_structure);
        assert_eq!(o.stats.candidates_after_structure, o.candidates.len());
        assert!(o.answers.len() <= o.candidates.len());
    }

    #[test]
    fn epsilon_filter_shrinks_pool_without_losing_answers() {
        let db = example_db();
        let index = build_index(&db, 4);
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 2]);
        let sigma = 2.0;
        let expected: Vec<GraphId> =
            sssd_brute(&db, &q, &md, sigma).into_iter().map(|i| GraphId(i as u32)).collect();
        for epsilon in [0.0, 0.2, 0.8] {
            let cfg = PisConfig { epsilon, ..PisConfig::default() };
            let searcher = PisSearcher::new(&index, &db, cfg);
            let o = searcher.search(&q, sigma);
            assert_eq!(o.answers, expected, "epsilon={epsilon}");
        }
    }

    #[test]
    fn partition_algorithms_agree_on_answers() {
        let db = example_db();
        let index = build_index(&db, 4);
        let q = cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]);
        let sigma = 2.0;
        let mut answer_sets = Vec::new();
        for algo in [PartitionAlgo::Greedy, PartitionAlgo::EnhancedGreedy(2), PartitionAlgo::Exact]
        {
            let cfg = PisConfig { partition: algo, ..PisConfig::default() };
            let searcher = PisSearcher::new(&index, &db, cfg);
            answer_sets.push(searcher.search(&q, sigma).answers);
        }
        assert_eq!(answer_sets[0], answer_sets[1]);
        assert_eq!(answer_sets[1], answer_sets[2]);
    }

    #[test]
    fn exact_partition_survives_a_pool_beyond_the_solver_cap() {
        // Two 80-edge paths differing only in edge label: the query's
        // 1- and 2-edge fragments all have positive selectivity
        // (graph 1 matches each at distance >= 1), so the epsilon
        // filter keeps a pool far above EXACT_MWIS_MAX_NODES. Exact
        // partitioning used to panic here; it must now demote to
        // EnhancedGreedy(2), flag the fallback, and return the same
        // answers as configuring EnhancedGreedy(2) directly.
        let db = vec![
            pis_graph::graph::path_graph(81, Label(0), Label(1)),
            pis_graph::graph::path_graph(81, Label(0), Label(2)),
        ];
        let index = build_index(&db, 2);
        let query = pis_graph::graph::path_graph(81, Label(0), Label(1));
        let sigma = 1.0;
        let exact_cfg = PisConfig { partition: PartitionAlgo::Exact, ..PisConfig::default() };
        let searcher = PisSearcher::new(&index, &db, exact_cfg);
        let outcome = searcher.search(&query, sigma);
        assert!(
            outcome.stats.fragments_in_pool > pis_partition::EXACT_MWIS_MAX_NODES,
            "test must exercise a pool beyond the cap, got {}",
            outcome.stats.fragments_in_pool
        );
        assert!(outcome.stats.exact_fallback, "fallback must be surfaced in the stats");
        assert_eq!(outcome.answers, vec![GraphId(0)]);

        // The optimized funnel and the reference pipeline agree on the
        // fallback path too.
        let reference = searcher.search_reference(&query, sigma);
        assert_eq!(outcome.candidates, reference.candidates);
        assert_eq!(outcome.stats, reference.stats);

        // Byte-identical to asking for EnhancedGreedy(2) outright,
        // except for the fallback flag.
        let eg_cfg =
            PisConfig { partition: PartitionAlgo::EnhancedGreedy(2), ..PisConfig::default() };
        let eg = PisSearcher::new(&index, &db, eg_cfg).search(&query, sigma);
        assert_eq!(outcome.candidates, eg.candidates);
        assert_eq!(outcome.answers, eg.answers);
        assert!(!eg.stats.exact_fallback);
        assert_eq!(outcome.stats.partition, eg.stats.partition);
    }

    #[test]
    fn exact_partition_runs_exactly_at_or_below_the_cap() {
        // Small pools keep the true exact solver (no fallback flag).
        let db = example_db();
        let index = build_index(&db, 4);
        let cfg = PisConfig { partition: PartitionAlgo::Exact, ..PisConfig::default() };
        let searcher = PisSearcher::new(&index, &db, cfg);
        let o = searcher.search(&cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]), 2.0);
        assert!(o.stats.fragments_in_pool <= pis_partition::EXACT_MWIS_MAX_NODES);
        assert!(!o.stats.exact_fallback);
    }

    #[test]
    fn no_verification_mode_returns_candidates_only() {
        let db = example_db();
        let index = build_index(&db, 3);
        let cfg = PisConfig { verify: false, ..PisConfig::default() };
        let searcher = PisSearcher::new(&index, &db, cfg);
        let o = searcher.search(&cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]), 1.0);
        assert!(o.answers.is_empty());
        assert_eq!(o.stats.verification_calls, 0);
        assert!(!o.candidates.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match the index")]
    fn database_index_mismatch_rejected() {
        let db = example_db();
        let index = build_index(&db, 2);
        let _ = PisSearcher::new(&index, &db[..2], PisConfig::default());
    }

    #[test]
    fn unlimited_search_is_exact() {
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let o = searcher.search(&cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]), 2.0);
        assert_eq!(o.completeness, Completeness::Exact);
        assert!(o.possible.is_empty());
    }

    #[test]
    fn tiny_node_budget_truncates_soundly() {
        use pis_graph::budget::QueryBudget;
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 2]);
        let sigma = 2.0;
        let exact = searcher.search(&q, sigma);
        let budget = QueryBudget { node_limit: Some(1), ..QueryBudget::default() };
        let truncated = searcher.search_budgeted(&q, sigma, &budget);
        let Completeness::Truncated { phase, stats } = &truncated.completeness else {
            panic!("a one-unit budget must truncate this query");
        };
        assert_eq!(*phase, TruncationPhase::RangeDescent, "the first phase trips first");
        assert!(stats.checkpoints > 0);
        // Soundness: verified answers are a subset of the exact answers,
        // and nothing exact is lost — it is either verified or possible.
        for a in &truncated.answers {
            assert!(exact.answers.contains(a), "truncated answer {a} is not exact");
        }
        for a in &exact.answers {
            assert!(
                truncated.answers.contains(a) || truncated.possible.contains(a),
                "exact answer {a} lost by truncation"
            );
        }
        // The candidate superset survives total range-query truncation.
        for a in &exact.candidates {
            assert!(truncated.candidates.contains(a));
        }
    }

    #[test]
    fn cancelled_search_returns_unverified_survivors_as_possible() {
        use pis_graph::budget::QueryBudget;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let exact = searcher.search(&q, 2.0);
        let cancel = Arc::new(AtomicBool::new(true)); // cancelled from the start
        let budget = QueryBudget { cancel: Some(cancel.clone()), ..QueryBudget::default() };
        let o = searcher.search_budgeted(&q, 2.0, &budget);
        assert!(!o.completeness.is_exact());
        assert!(o.answers.is_empty(), "a pre-cancelled query cannot verify anything");
        for a in &exact.answers {
            assert!(o.possible.contains(a), "cancelled query lost answer {a}");
        }
        // Un-cancelling restores exact behavior on the same budget spec.
        cancel.store(false, Ordering::Relaxed);
        let o = searcher.search_budgeted(&q, 2.0, &budget);
        assert_eq!(o.completeness, Completeness::Exact);
        assert_eq!(o.answers, exact.answers);
    }

    #[test]
    fn scratch_reuse_after_truncation_matches_fresh_scratch() {
        use pis_graph::budget::QueryBudget;
        let db = example_db();
        let index = build_index(&db, 4);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]);
        let mut scratch = SearchScratch::new();
        let budget = QueryBudget { node_limit: Some(1), ..QueryBudget::default() };
        let aborted = searcher.search_budgeted_with_scratch(&q, 2.0, &budget, &mut scratch);
        assert!(!aborted.completeness.is_exact());
        // The scratch must carry no truncation residue into later
        // searches: outcomes through it are byte-identical to a fresh
        // scratch.
        for (q2, sigma) in [
            (cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]), 2.0),
            (cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]), 0.0),
        ] {
            let reused = searcher.search_with_scratch(&q2, sigma, &mut scratch);
            let fresh = searcher.search(&q2, sigma);
            assert_eq!(reused.candidates, fresh.candidates);
            assert_eq!(reused.answers, fresh.answers);
            assert_eq!(
                reused.answer_distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                fresh.answer_distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(reused.stats, fresh.stats);
            assert_eq!(reused.completeness, Completeness::Exact);
        }
    }

    #[test]
    fn try_search_rejects_invalid_inputs() {
        use crate::error::QueryError;
        let db = example_db();
        let index = build_index(&db, 3);
        let searcher = PisSearcher::new(&index, &db, PisConfig::default());
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        assert!(matches!(searcher.try_search(&q, f64::NAN), Err(QueryError::InvalidSigma(_))));
        assert!(matches!(searcher.try_search(&q, -1.0), Err(QueryError::InvalidSigma(_))));
        assert!(matches!(searcher.try_search(&q, f64::INFINITY), Err(QueryError::InvalidSigma(_))));
        let mut b = pis_graph::GraphBuilder::new();
        let vs = b.add_vertices(2, VertexAttr::labeled(Label(0)));
        b.add_edge(vs[0], vs[1], EdgeAttr { label: Label(1), weight: f64::NAN }).unwrap();
        let poisoned = b.build();
        assert!(matches!(
            searcher.try_search(&poisoned, 1.0),
            Err(QueryError::NonFiniteQueryWeight)
        ));
        // Valid inputs pass through to the normal search.
        let ok = searcher.try_search(&q, 1.0).unwrap();
        assert_eq!(ok.answers, searcher.search(&q, 1.0).answers);
    }
}
