//! Fragment selectivity (Definition 5 and Algorithm 2, line 18).
//!
//! The selectivity of a fragment is its average minimum superimposed
//! distance to the database, with the singular `d(g, G) = ∞` cases
//! (structure absent, or distance beyond the range-query horizon) cut
//! off at `λσ`:
//!
//! `w(g) = Σ_{G ∈ T} min(d(g, G), λσ)/n + (n − |T|)/n · λσ`
//!
//! At `λ = 1` this is exactly line 18 of Algorithm 2. Figure 11 sweeps
//! `λ` and finds performance insensitive above 1 and degraded below —
//! the figures binary reproduces that as Figure 11 (`DESIGN.md` §5).

use pis_graph::GraphId;

/// Computes `w(g)` from a fragment's range-query hits.
///
/// * `hits` — `(graph, d(g, G))` pairs with `d ≤ σ` (range-query
///   output);
/// * `database_size` — `n`;
/// * `sigma` — the query threshold `σ`;
/// * `lambda` — the cutoff multiplier.
pub fn selectivity(hits: &[(GraphId, f64)], database_size: usize, sigma: f64, lambda: f64) -> f64 {
    assert!(database_size >= hits.len(), "more hits than database graphs");
    if database_size == 0 {
        return 0.0;
    }
    let cutoff = lambda * sigma;
    let matched: f64 = hits.iter().map(|&(_, d)| d.min(cutoff)).sum();
    let missing = (database_size - hits.len()) as f64 * cutoff;
    (matched + missing) / database_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ds: &[f64]) -> Vec<(GraphId, f64)> {
        ds.iter().enumerate().map(|(i, &d)| (GraphId(i as u32), d)).collect()
    }

    #[test]
    fn matches_line_18_at_lambda_one() {
        // n = 4, two hits at distance 1 and 2, sigma = 3.
        let w = selectivity(&hits(&[1.0, 2.0]), 4, 3.0, 1.0);
        assert!((w - (1.0 + 2.0 + 2.0 * 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_containment_everywhere_gives_zero() {
        // Fragment contained exactly (d = 0) in every graph: no pruning
        // power, w = 0 (Example 4's single-edge case).
        let w = selectivity(&hits(&[0.0, 0.0, 0.0]), 3, 2.0, 1.0);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn absent_fragment_maximizes_selectivity() {
        let w = selectivity(&[], 10, 2.0, 1.0);
        assert_eq!(w, 2.0);
        // Lambda scales the ceiling.
        assert_eq!(selectivity(&[], 10, 2.0, 2.0), 4.0);
    }

    #[test]
    fn small_lambda_caps_matched_distances() {
        // sigma = 4, lambda = 0.5 -> cutoff 2: a hit at distance 3 only
        // contributes 2.
        let w = selectivity(&hits(&[3.0]), 1, 4.0, 0.5);
        assert_eq!(w, 2.0);
    }

    #[test]
    fn lambda_above_one_changes_only_the_missing_term() {
        let h = hits(&[1.0, 2.0]);
        let w1 = selectivity(&h, 4, 3.0, 1.0);
        let w2 = selectivity(&h, 4, 3.0, 2.0);
        assert!(w2 > w1);
        // Matched contributions unchanged (1+2), missing doubled.
        assert!((w2 - (3.0 + 2.0 * 6.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_database() {
        assert_eq!(selectivity(&[], 0, 2.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "more hits")]
    fn hit_count_bounded_by_database() {
        let _ = selectivity(&hits(&[0.0, 0.0]), 1, 1.0, 1.0);
    }
}
