//! Fault-tolerant scatter-gather sharding of the fragment index.
//!
//! The index has been partitioned by feature class since the class-local
//! posting rework — a natural shard boundary. A [`ShardRouter`] carves
//! the frozen [`FragmentIndex`](pis_index::FragmentIndex) into N
//! round-robin class shards (zero-copy
//! [`ShardView`](pis_index::ShardView)s over the immutable arenas),
//! routes each query's feature-grouped probe batches to the shard
//! owning the feature, and the search coordinator merges the per-shard
//! candidate bitsets before partition + verification.
//!
//! Robustness model (per shard, per query):
//!
//! * every shard call runs under a **sub-budget** carved from the
//!   query's deadline
//!   ([`BudgetState::shard_slice`](pis_graph::BudgetState::shard_slice))
//!   with a coordinator reserve, so one slow shard cannot eat the whole
//!   query's wall clock;
//! * a failed / timed-out / panicked shard is **retried once** against
//!   the next replica of its [`ShardReplicaSet`], after a deterministic
//!   exponential backoff (jitter from the vendored xoshiro `StdRng`
//!   seeded per query — fault-injection runs are reproducible);
//! * repeated failures **quarantine** the shard in its `ShardHealth`
//!   entry (consecutive-failure threshold); a quarantined shard is
//!   skipped cheaply and re-probed every `cooldown_probes` queries, and
//!   one success lifts the quarantine;
//! * a shard that stays dark **degrades soundly**: its classes are
//!   excluded from the intersection exactly like a budget-tripped range
//!   slot (incomplete data never prunes), and the outcome reports
//!   `Completeness::Degraded { shards }`.
//!
//! The sharded scatter with N=1 — or any N with all shards healthy —
//! is byte-identical to the unsharded path: views delegate to the same
//! budgeted range-query kernels, and per-slot hit buffers make merge
//! order irrelevant (`crates/core/tests/proptest_shard.rs` holds this).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential-backoff doubling cap: 2^6 · base is the longest delay.
const BACKOFF_EXP_CAP: u32 = 6;

/// Scatter-gather configuration, set via `PisConfig::shard`. `None`
/// there means the legacy single-threaded probe loop; `Some` — even
/// with one shard — routes every query through the [`ShardRouter`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardConfig {
    /// Class-shard count N; feature class `c` lives on shard
    /// `c % shards`.
    pub shards: usize,
    /// Replicas per shard (zero-copy views over the same frozen
    /// arenas; ≥ 2 makes the retry serve from a different replica
    /// role).
    pub replicas: usize,
    /// Consecutive failures that quarantine a shard.
    pub failure_threshold: u32,
    /// Quarantined shards are re-probed every this many queries;
    /// in between they are skipped (degraded) without an attempt.
    pub cooldown_probes: u32,
    /// Base unit of the retry backoff
    /// (`base · 2^min(attempt + consecutive_failures, 6)` plus a
    /// deterministic jitter in `[0, base)`).
    pub backoff_base: Duration,
    /// Fraction of the *remaining* query deadline reserved for the
    /// coordinator (merge + retry + degrade) when carving per-shard
    /// sub-budgets. Clamped to `[0, 1]`.
    pub coordinator_reserve: f64,
}

impl ShardConfig {
    /// A configuration with `shards` shards and default robustness
    /// knobs.
    pub fn new(shards: usize) -> ShardConfig {
        ShardConfig {
            shards: shards.max(1),
            replicas: 2,
            failure_threshold: 3,
            cooldown_probes: 8,
            backoff_base: Duration::from_micros(100),
            coordinator_reserve: 0.1,
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(1)
    }
}

/// A typed per-shard failure, recorded in `ShardHealth` and surfaced
/// through [`ShardHealthSnapshot::last_error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The shard's sub-budget deadline elapsed before its probe groups
    /// finished.
    DeadlineExceeded {
        /// The shard that timed out.
        shard: usize,
    },
    /// The shard worker panicked mid-descent (caught at the shard
    /// boundary; the query continues).
    Panicked {
        /// The shard whose worker panicked.
        shard: usize,
    },
    /// The serving replica returned a detectably corrupt answer.
    Corrupt {
        /// The shard whose replica was corrupt.
        shard: usize,
    },
}

impl ShardError {
    /// The shard the failure is attributed to.
    pub fn shard(&self) -> usize {
        match *self {
            ShardError::DeadlineExceeded { shard }
            | ShardError::Panicked { shard }
            | ShardError::Corrupt { shard } => shard,
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ShardError::DeadlineExceeded { shard } => {
                write!(f, "shard {shard}: sub-budget deadline exceeded")
            }
            ShardError::Panicked { shard } => write!(f, "shard {shard}: worker panicked"),
            ShardError::Corrupt { shard } => write!(f, "shard {shard}: corrupt replica answer"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Which replica of a shard serves, with a seqlock-style epoch so a
/// re-freeze or compaction can swap a new generation in **without
/// blocking readers**: [`ShardReplicaSet::install`] bumps the epoch to
/// odd, publishes the generation, and bumps back to even; readers retry
/// while the epoch is odd or moved under them, so they only ever act on
/// a fully-published generation.
#[derive(Debug)]
pub struct ShardReplicaSet {
    /// Replica slots (views over the same immutable arenas).
    replicas: usize,
    /// Seqlock epoch: even = stable, odd = handoff in progress.
    epoch: AtomicU64,
    /// Monotonic generation; `generation % replicas` is the primary
    /// replica slot.
    generation: AtomicU64,
}

impl ShardReplicaSet {
    /// A replica set with `replicas` slots (at least one), generation 0.
    pub fn new(replicas: usize) -> ShardReplicaSet {
        ShardReplicaSet {
            replicas: replicas.max(1),
            epoch: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Replica slot count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Publishes `generation` (a re-freeze / compaction handoff, or a
    /// failover rotation). Readers running concurrently either see the
    /// old generation or the new one — never a torn in-between.
    pub fn install(&self, generation: u64) {
        self.epoch.fetch_add(1, Ordering::AcqRel); // even -> odd
        self.generation.store(generation, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel); // odd -> even
    }

    /// The current generation, read under the epoch seqlock.
    pub fn read(&self) -> u64 {
        loop {
            let before = self.epoch.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let generation = self.generation.load(Ordering::Acquire);
            if self.epoch.load(Ordering::Acquire) == before {
                return generation;
            }
        }
    }

    /// The replica slot serving attempt `attempt` (0 = primary) of the
    /// current generation.
    pub fn role_of(&self, attempt: u32) -> usize {
        (self.read() as usize + attempt as usize) % self.replicas
    }
}

/// Lock-free health bookkeeping for one shard. All counters are
/// monotonic except `consecutive_failures` (reset by a success) and the
/// quarantine flag (lifted by a success).
#[derive(Debug, Default)]
struct ShardHealth {
    calls: AtomicU64,
    failures: AtomicU64,
    retries: AtomicU64,
    skipped_queries: AtomicU64,
    quarantine_trips: AtomicU64,
    consecutive_failures: AtomicU32,
    cooldown_skips: AtomicU32,
    quarantined: AtomicBool,
    last_error: Mutex<Option<ShardError>>,
}

impl ShardHealth {
    fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.quarantined.store(false, Ordering::Relaxed);
    }

    fn record_failure(&self, error: ShardError, threshold: u32) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let consecutive = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        *self.last_error.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(error);
        if consecutive >= threshold && !self.quarantined.swap(true, Ordering::Relaxed) {
            self.quarantine_trips.fetch_add(1, Ordering::Relaxed);
            self.cooldown_skips.store(0, Ordering::Relaxed);
        }
    }

    /// Whether this query should attempt the shard. Healthy shards are
    /// always attempted; a quarantined shard is skipped (counted) until
    /// every `cooldown`-th query re-probes it.
    fn should_probe(&self, cooldown: u32) -> bool {
        if !self.quarantined.load(Ordering::Relaxed) {
            return true;
        }
        let waited = self.cooldown_skips.fetch_add(1, Ordering::Relaxed) + 1;
        if waited >= cooldown.max(1) {
            self.cooldown_skips.store(0, Ordering::Relaxed);
            return true;
        }
        self.skipped_queries.fetch_add(1, Ordering::Relaxed);
        false
    }
}

/// A point-in-time copy of one shard's `ShardHealth` plus its replica
/// state, for diagnostics (`explain`, tests, operators).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHealthSnapshot {
    /// The shard this row describes.
    pub shard: usize,
    /// Whether the shard is currently quarantined.
    pub quarantined: bool,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Attempts routed to this shard (retries included).
    pub calls: u64,
    /// Failed attempts (any [`ShardError`]).
    pub failures: u64,
    /// Replica-failover retries.
    pub retries: u64,
    /// Times the consecutive-failure threshold tripped quarantine.
    pub quarantine_trips: u64,
    /// Queries that skipped the shard while quarantined (degraded
    /// without an attempt).
    pub skipped_queries: u64,
    /// The most recent failure, if any.
    pub last_error: Option<ShardError>,
    /// The replica generation currently serving.
    pub replica_generation: u64,
}

/// Per-shard state: health plus the replica set.
#[derive(Debug)]
struct ShardState {
    health: ShardHealth,
    replicas: ShardReplicaSet,
}

/// Routes feature classes to shards and tracks per-shard health across
/// the queries of one searcher. The router owns no index data — shard
/// views are carved zero-copy per scatter — so it is cheap to build
/// and `Sync` (all state is atomic).
#[derive(Debug)]
pub struct ShardRouter {
    config: ShardConfig,
    states: Vec<ShardState>,
    query_seq: AtomicU64,
}

impl ShardRouter {
    /// A router for `config` with all shards healthy.
    pub fn new(config: ShardConfig) -> ShardRouter {
        let states = (0..config.shards.max(1))
            .map(|_| ShardState {
                health: ShardHealth::default(),
                replicas: ShardReplicaSet::new(config.replicas),
            })
            .collect();
        ShardRouter { config, states, query_seq: AtomicU64::new(0) }
    }

    /// The shard count N.
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    /// The configuration the router was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// The shard owning feature class `feature_index` (round-robin).
    pub fn shard_of(&self, feature_index: usize) -> usize {
        feature_index % self.states.len()
    }

    /// Starts one query's scatter: returns the query sequence number
    /// that seeds its deterministic backoff jitter.
    pub fn begin_query(&self) -> u64 {
        self.query_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// One shard's replica set (epoch handoff target for re-freeze /
    /// compaction).
    pub fn replica_set(&self, shard: usize) -> &ShardReplicaSet {
        &self.states[shard].replicas
    }

    /// Force-quarantines `shard` (operator hook; also how tests model a
    /// dark shard without arming failpoints).
    pub fn quarantine(&self, shard: usize) {
        let health = &self.states[shard].health;
        health.quarantined.store(true, Ordering::Relaxed);
        health.consecutive_failures.store(self.config.failure_threshold, Ordering::Relaxed);
        health.quarantine_trips.fetch_add(1, Ordering::Relaxed);
        health.cooldown_skips.store(0, Ordering::Relaxed);
    }

    /// Whether this query should attempt `shard` (false = quarantined
    /// and inside its cooldown window; the caller degrades the shard
    /// without an attempt).
    pub fn should_probe(&self, shard: usize) -> bool {
        self.states[shard].health.should_probe(self.config.cooldown_probes)
    }

    /// Records one attempt routed to `shard`.
    pub fn record_call(&self, shard: usize) {
        self.states[shard].health.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a replica-failover retry on `shard`.
    pub fn record_retry(&self, shard: usize) {
        self.states[shard].health.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful attempt: resets the failure streak and
    /// lifts any quarantine.
    pub fn record_success(&self, shard: usize) {
        self.states[shard].health.record_success();
    }

    /// Records a failed attempt; trips quarantine at the configured
    /// consecutive-failure threshold.
    pub fn record_failure(&self, error: ShardError) {
        self.states[error.shard()].health.record_failure(error, self.config.failure_threshold);
    }

    /// Whether `shard` is currently quarantined.
    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.states[shard].health.quarantined.load(Ordering::Relaxed)
    }

    /// The retry delay before attempt `attempt` (1 = first retry) of
    /// query `query_seq` against `shard`: exponential in the shard's
    /// failure streak, with jitter drawn from a per-(query, shard,
    /// attempt) seeded [`StdRng`] — two runs of the same workload back
    /// off identically, no wall-clock randomness.
    pub fn backoff_delay(&self, query_seq: u64, shard: usize, attempt: u32) -> Duration {
        let streak = self.states[shard].health.consecutive_failures.load(Ordering::Relaxed);
        let exp = (attempt + streak).min(BACKOFF_EXP_CAP);
        let mut rng = StdRng::seed_from_u64(backoff_seed(query_seq, shard as u64, attempt as u64));
        let jitter: f64 = rng.random();
        let base = self.config.backoff_base;
        base * 2u32.pow(exp) + base.mul_f64(jitter)
    }

    /// Point-in-time health rows for every shard, in shard order.
    pub fn health(&self) -> Vec<ShardHealthSnapshot> {
        self.states
            .iter()
            .enumerate()
            .map(|(shard, state)| ShardHealthSnapshot {
                shard,
                quarantined: state.health.quarantined.load(Ordering::Relaxed),
                consecutive_failures: state.health.consecutive_failures.load(Ordering::Relaxed),
                calls: state.health.calls.load(Ordering::Relaxed),
                failures: state.health.failures.load(Ordering::Relaxed),
                retries: state.health.retries.load(Ordering::Relaxed),
                quarantine_trips: state.health.quarantine_trips.load(Ordering::Relaxed),
                skipped_queries: state.health.skipped_queries.load(Ordering::Relaxed),
                last_error: *state
                    .health
                    .last_error
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                replica_generation: state.replicas.read(),
            })
            .collect()
    }
}

/// SplitMix64-style mix of (query, shard, attempt) into one backoff
/// seed: distinct triples land in distinct xoshiro streams.
fn backoff_seed(query_seq: u64, shard: u64, attempt: u64) -> u64 {
    let mut z = query_seq
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shard.rotate_left(24))
        .wrapping_add(attempt.rotate_left(48));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Consults the fault-injection registry for shard scatter sites
/// (`shard-{s}-primary`, `shard-{s}-replica-{j}`, and their `-corrupt`
/// twins). A `Trip` models a stall past the sub-deadline, a `Panic` a
/// crashed worker, and an armed `-corrupt` site a replica returning
/// garbage the coordinator detects. No-op (and allocation-free) unless
/// the test-only `failpoints` feature is on.
pub(crate) fn consult_failpoint(shard: usize, role: usize) -> Result<(), ShardError> {
    if !cfg!(feature = "failpoints") {
        return Ok(());
    }
    use pis_graph::budget::{failpoint, FailAction};
    let name = if role == 0 {
        format!("shard-{shard}-primary")
    } else {
        format!("shard-{shard}-replica-{}", role - 1)
    };
    if failpoint(&format!("{name}-corrupt")).is_some() {
        return Err(ShardError::Corrupt { shard });
    }
    match failpoint(&name) {
        Some(FailAction::Trip) => Err(ShardError::DeadlineExceeded { shard }),
        Some(FailAction::Panic) => panic!("failpoint panic at {name}"),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_routing_covers_every_shard() {
        let router = ShardRouter::new(ShardConfig::new(3));
        let shards: Vec<usize> = (0..7).map(|f| router.shard_of(f)).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn quarantine_trips_at_threshold_and_a_success_lifts_it() {
        let router = ShardRouter::new(ShardConfig::new(2));
        let threshold = router.config().failure_threshold;
        for i in 0..threshold {
            assert!(!router.is_quarantined(1), "not quarantined after {i} failures");
            router.record_failure(ShardError::DeadlineExceeded { shard: 1 });
        }
        assert!(router.is_quarantined(1));
        assert!(!router.is_quarantined(0), "failures attribute to their shard only");
        let snap = &router.health()[1];
        assert_eq!(snap.failures, u64::from(threshold));
        assert_eq!(snap.quarantine_trips, 1);
        assert_eq!(snap.last_error, Some(ShardError::DeadlineExceeded { shard: 1 }));
        router.record_success(1);
        assert!(!router.is_quarantined(1), "one success lifts quarantine");
        assert_eq!(router.health()[1].consecutive_failures, 0);
    }

    #[test]
    fn cooldown_skips_then_reprobes() {
        let config = ShardConfig { cooldown_probes: 3, ..ShardConfig::new(1) };
        let router = ShardRouter::new(config);
        router.quarantine(0);
        assert!(!router.should_probe(0), "skip 1");
        assert!(!router.should_probe(0), "skip 2");
        assert!(router.should_probe(0), "every cooldown-th query re-probes");
        assert_eq!(router.health()[0].skipped_queries, 2);
        // The window restarts after the probe.
        assert!(!router.should_probe(0));
    }

    #[test]
    fn healthy_shards_probe_without_counting() {
        let router = ShardRouter::new(ShardConfig::new(2));
        for _ in 0..10 {
            assert!(router.should_probe(0));
        }
        assert_eq!(router.health()[0].skipped_queries, 0);
    }

    #[test]
    fn backoff_is_deterministic_and_grows_with_the_streak() {
        let router = ShardRouter::new(ShardConfig::new(2));
        let a = router.backoff_delay(7, 1, 1);
        let b = router.backoff_delay(7, 1, 1);
        assert_eq!(a, b, "same (query, shard, attempt) => same delay");
        assert_ne!(router.backoff_delay(8, 1, 1), a, "different queries draw different jitter");
        let base = router.config().backoff_base;
        assert!(a >= base * 2 && a < base * 3, "streak 0, attempt 1: 2·base + jitter");
        router.record_failure(ShardError::Panicked { shard: 1 });
        router.record_failure(ShardError::Panicked { shard: 1 });
        let c = router.backoff_delay(7, 1, 1);
        assert!(c >= base * 8, "streak 2, attempt 1: 8·base + jitter");
    }

    #[test]
    fn replica_set_handoff_never_tears() {
        let set = ShardReplicaSet::new(2);
        assert_eq!(set.read(), 0);
        assert_eq!(set.role_of(0), 0);
        assert_eq!(set.role_of(1), 1);
        set.install(1);
        assert_eq!(set.read(), 1);
        assert_eq!(set.role_of(0), 1, "the new generation's primary slot");
        // Concurrent installs and reads: every read returns a value
        // some install published (monotonic installs => monotonic
        // per-reader observations).
        let set = ShardReplicaSet::new(3);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for g in 2..2_000 {
                    set.install(g);
                }
            });
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut last = 0;
                    for _ in 0..2_000 {
                        let g = set.read();
                        assert!(g >= last, "reads never go backwards: {g} < {last}");
                        last = g;
                    }
                });
            }
        });
        assert_eq!(set.read(), 1_999);
    }

    #[test]
    fn shard_error_reports_its_shard() {
        for e in [
            ShardError::DeadlineExceeded { shard: 4 },
            ShardError::Panicked { shard: 4 },
            ShardError::Corrupt { shard: 4 },
        ] {
            assert_eq!(e.shard(), 4);
            assert!(e.to_string().contains("shard 4"), "{e}");
        }
    }

    #[test]
    fn consult_failpoint_is_ok_when_disarmed() {
        #[cfg(not(feature = "failpoints"))]
        {
            assert_eq!(consult_failpoint(0, 0), Ok(()));
            assert_eq!(consult_failpoint(3, 2), Ok(()));
        }
    }
}
