//! Candidate verification: branch-and-bound minimum superimposed
//! distance.
//!
//! Computes `d(Q, G)` (Definition 1) exactly, like the brute-force
//! oracle in `pis-distance`, but prunes every partial superposition
//! whose accumulated cost already exceeds the running bound
//! `min(σ, best found)` — superimposed distances are sums of
//! non-negative per-element costs, so partial cost is monotone and the
//! pruning is lossless. On chemical data most partial mappings die
//! within a few assignments.

use std::ops::ControlFlow;

use pis_distance::SuperimposedDistance;
use pis_graph::iso::{IsoConfig, MatchVisitor, SubgraphMatcher};
use pis_graph::{Embedding, LabeledGraph, VertexId};

/// Exact minimum superimposed distance, bounded by `sigma`.
///
/// Returns `Some(d(Q, G))` iff some superposition costs at most
/// `sigma`; returns `None` both when `Q ⊄ G` and when every
/// superposition exceeds the budget (the SSSD predicate of
/// Definition 2 in either case).
pub fn min_superimposed_distance(
    query: &LabeledGraph,
    target: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
    sigma: f64,
) -> Option<f64> {
    let mut visitor = BoundedVisitor {
        query,
        target,
        distance,
        map: vec![None; query.vertex_count()],
        cost_stack: Vec::with_capacity(query.vertex_count()),
        cost: 0.0,
        bound: sigma,
        best: None,
    };
    SubgraphMatcher::new(query, target, IsoConfig::STRUCTURE).search(&mut visitor);
    visitor.best
}

struct BoundedVisitor<'a> {
    query: &'a LabeledGraph,
    target: &'a LabeledGraph,
    distance: &'a dyn SuperimposedDistance,
    /// Our own copy of the partial mapping (the matcher's is private).
    map: Vec<Option<VertexId>>,
    /// Per-assignment cost deltas, for O(1) rollback.
    cost_stack: Vec<f64>,
    cost: f64,
    /// Current pruning bound: min(sigma, best complete cost so far).
    bound: f64,
    best: Option<f64>,
}

impl MatchVisitor for BoundedVisitor<'_> {
    fn assign(&mut self, p: VertexId, t: VertexId) -> bool {
        let mut delta = self.distance.vertex_cost(self.query.vertex(p), self.target.vertex(t));
        for &(q, qe) in self.query.neighbors(p) {
            let Some(tq) = self.map[q.index()] else { continue };
            let te =
                self.target.edge_between(tq, t).expect("matcher guarantees structural feasibility");
            delta += self.distance.edge_cost(self.query.edge(qe).attr, self.target.edge(te).attr);
        }
        if self.cost + delta > self.bound {
            return false;
        }
        self.map[p.index()] = Some(t);
        self.cost_stack.push(delta);
        self.cost += delta;
        true
    }

    fn unassign(&mut self, p: VertexId, _t: VertexId) {
        self.map[p.index()] = None;
        let delta = self.cost_stack.pop().expect("unassign pairs with assign");
        self.cost -= delta;
    }

    fn complete(&mut self, _embedding: &Embedding) -> ControlFlow<()> {
        if self.best.is_none_or(|b| self.cost < b) {
            self.best = Some(self.cost);
            self.bound = self.bound.min(self.cost);
        }
        if self.best == Some(0.0) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_distance::oracle::min_superimposed_distance_brute;
    use pis_distance::{LinearDistance, MutationDistance};
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    fn cycle_with_edge_labels(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    #[test]
    fn agrees_with_brute_force_within_budget() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let cases = [
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 1, 2, 1, 1, 2]),
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]),
        ];
        for g in &cases {
            let brute = min_superimposed_distance_brute(&q, g, &md).unwrap();
            for sigma in [0.0, 1.0, 2.0, 6.0] {
                let bounded = min_superimposed_distance(&q, g, &md, sigma);
                if brute <= sigma {
                    assert_eq!(bounded, Some(brute), "sigma {sigma}");
                } else {
                    assert_eq!(bounded, None, "sigma {sigma}");
                }
            }
        }
    }

    #[test]
    fn no_structural_match_is_none() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_graph(5, Label(0), Label(0));
        let g = path_graph(8, Label(0), Label(0));
        assert_eq!(min_superimposed_distance(&q, &g, &md, 100.0), None);
    }

    #[test]
    fn works_for_linear_distance() {
        let ld = LinearDistance::edges_only();
        let mk = |w: f64| {
            let mut b = GraphBuilder::new();
            let u = b.add_vertex(VertexAttr::labeled(Label(0)));
            let v = b.add_vertex(VertexAttr::labeled(Label(0)));
            b.add_edge(u, v, EdgeAttr { label: Label(0), weight: w }).unwrap();
            b.build()
        };
        let q = mk(1.0);
        let g = mk(1.75);
        assert_eq!(min_superimposed_distance(&q, &g, &ld, 1.0), Some(0.75));
        assert_eq!(min_superimposed_distance(&q, &g, &ld, 0.5), None);
    }

    #[test]
    fn randomized_agreement_with_oracle() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gen = pis_datasets::MoleculeGenerator::default();
        let db = gen.database(12, 77);
        let mut rng = StdRng::seed_from_u64(5);
        let md = MutationDistance::edge_hamming();
        let mut checked = 0;
        for g in &db {
            if g.edge_count() < 6 {
                continue;
            }
            let Some(q) = pis_datasets::query::sample_query(g, 5, &mut rng) else { continue };
            for target in db.iter().take(6) {
                let brute = min_superimposed_distance_brute(&q, target, &md);
                for sigma in [0.0, 1.0, 3.0] {
                    let fast = min_superimposed_distance(&q, target, &md, sigma);
                    match brute {
                        Some(b) if b <= sigma => {
                            assert_eq!(fast, Some(b), "sigma={sigma}");
                        }
                        _ => assert_eq!(fast, None, "sigma={sigma}"),
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "exercised too few cases ({checked})");
    }

    #[test]
    fn zero_budget_finds_exact_label_matches_only() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 2, 1, 2]);
        let same = cycle_with_edge_labels(&[2, 1, 2, 1]); // rotation
        let diff = cycle_with_edge_labels(&[1, 1, 2, 2]);
        assert_eq!(min_superimposed_distance(&q, &same, &md, 0.0), Some(0.0));
        assert_eq!(min_superimposed_distance(&q, &diff, &md, 0.0), None);
    }
}
