//! Candidate verification: branch-and-bound minimum superimposed
//! distance.
//!
//! Computes `d(Q, G)` (Definition 1) exactly, like the brute-force
//! oracle in `pis-distance`, but prunes partial superpositions against
//! the running bound `min(σ, best found)` — superimposed distances are
//! sums of non-negative per-element costs, so partial cost is monotone
//! and the pruning is lossless.
//!
//! The optimized path adds an **admissible remaining-cost lower bound**:
//! before the subgraph search, one pass over the pair builds per-element
//! cost floors (each query vertex's minimum vertex cost over
//! degree-compatible target vertices, each query edge's minimum edge
//! cost over degree-dominating target edges — see
//! `SuperimposedDistance::min_vertex_costs_into`), folds them into
//! per-depth suffix sums aligned with the matcher's plan, and prunes a
//! partial assignment as soon as `cost + delta + remaining_lb > bound`
//! instead of waiting for the cost to accrue. A distance-specific
//! whole-pair precheck ([`SuperimposedDistance::pair_lower_bound`])
//! refutes hopeless candidates before any DFS at all. Because every
//! floor lower-bounds the true completion cost, only superpositions
//! strictly worse than the final answer are skipped and the result is
//! byte-identical to the seed verifier.
//!
//! All per-candidate setup (match plan, adjacency bitset, DFS buffers,
//! floor/suffix tables) lives in a reusable [`VerifyScratch`], so
//! verifying a candidate list amortizes its allocations the same way the
//! funnel's `SearchScratch` does. The seed verifier is retained verbatim
//! as [`min_superimposed_distance_reference`] — the executable spec the
//! reference pipeline and the differential tests run against.

use std::ops::ControlFlow;
use std::time::Instant;

use pis_distance::SuperimposedDistance;
use pis_graph::budget::{BudgetState, CheckpointSite, Interrupted};
use pis_graph::iso::{
    AdjBits, EdgeGrid, IsoConfig, MatchPlan, MatchVisitor, SearchBuffers, SubgraphMatcher,
};
use pis_graph::{EdgeId, Embedding, Label, LabeledGraph, VertexId};

/// Assignments between budget checkpoints inside the verification and
/// structure-check DFS loops: frequent enough to bound overshoot to a
/// fraction of a millisecond, rare enough that the counter is the only
/// per-assign overhead.
const DFS_CHECK_INTERVAL: u32 = 1024;

/// Exact minimum superimposed distance, bounded by `sigma`.
///
/// Returns `Some(d(Q, G))` iff some superposition costs at most
/// `sigma`; returns `None` both when `Q ⊄ G` and when every
/// superposition exceeds the budget (the SSSD predicate of
/// Definition 2 in either case).
///
/// One-shot convenience over [`VerifyScratch`]; callers verifying many
/// candidates should hold a scratch and amortize the setup.
pub fn min_superimposed_distance(
    query: &LabeledGraph,
    target: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
    sigma: f64,
) -> Option<f64> {
    let mut scratch = VerifyScratch::new();
    scratch.begin_query(query);
    scratch.distance_within(query, target, distance, sigma)
}

/// The seed's branch-and-bound verifier, kept verbatim as the executable
/// spec: no remaining-cost bound, no precheck, no scratch reuse. The
/// reference pipeline (`search_reference`) and the oracle-equivalence
/// suites hold the optimized verifier byte-identical to this.
pub fn min_superimposed_distance_reference(
    query: &LabeledGraph,
    target: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
    sigma: f64,
) -> Option<f64> {
    let mut visitor = BoundedVisitor {
        query,
        target,
        distance,
        map: vec![None; query.vertex_count()],
        cost_stack: Vec::with_capacity(query.vertex_count()),
        cost: 0.0,
        bound: sigma,
        best: None,
    };
    SubgraphMatcher::new(query, target, IsoConfig::STRUCTURE).search(&mut visitor);
    visitor.best
}

/// Counters and timing for the verification phase, drained per query via
/// `SearchScratch::take_verify_stats` and surfaced as the bench
/// pipeline's `verification` row.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VerifyStats {
    /// Bounded-distance evaluations (one per candidate reaching the
    /// verifier).
    pub calls: u64,
    /// Candidates refuted before any subgraph search: size check,
    /// distance precheck, or an infeasible whole-pattern floor.
    pub prechecked: u64,
    /// DFS assignments accepted (search-tree nodes expanded).
    pub nodes_expanded: u64,
    /// DFS assignments rejected by `cost + delta + remaining_lb >
    /// bound`.
    pub nodes_pruned: u64,
    /// Wall time spent inside the verifier.
    pub nanos: u64,
}

impl VerifyStats {
    /// Folds another phase's counters into this one (parallel verify
    /// lanes merge their per-worker stats).
    pub fn absorb(&mut self, other: &VerifyStats) {
        self.calls += other.calls;
        self.prechecked += other.prechecked;
        self.nodes_expanded += other.nodes_expanded;
        self.nodes_pruned += other.nodes_pruned;
        self.nanos += other.nanos;
    }
}

/// Reusable state for verifying one query against many candidates: the
/// match plan (target-independent under structure-only matching, built
/// once per query), the target adjacency bitset, the DFS buffers, and
/// the floor/suffix tables of the remaining-cost bound. Dropping none of
/// them between candidates makes steady-state verification
/// allocation-free.
#[derive(Debug, Default)]
pub struct VerifyScratch {
    plan: MatchPlan,
    adj: AdjBits,
    bufs: SearchBuffers,
    map: Vec<Option<VertexId>>,
    cost_stack: Vec<f64>,
    vertex_floor: Vec<f64>,
    edge_floor: Vec<f64>,
    suffix: Vec<f64>,
    vertex_suffix: Vec<f64>,
    deficit: DeficitTable,
    fwd: ForwardFloors,
    grid: EdgeGrid,
    stats: VerifyStats,
}

impl VerifyScratch {
    /// Empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        VerifyScratch::default()
    }

    /// Rebuilds the match plan for `query`. Must be called before
    /// [`VerifyScratch::distance_within`] whenever the query changes;
    /// the plan then serves every candidate target.
    pub fn begin_query(&mut self, query: &LabeledGraph) {
        self.plan.rebuild_for_pattern(query);
    }

    /// Drains the accumulated phase counters, resetting them to zero.
    pub fn take_stats(&mut self) -> VerifyStats {
        std::mem::take(&mut self.stats)
    }

    /// Folds counters from another scratch (a parallel verify lane)
    /// into this one's.
    pub fn absorb_stats(&mut self, stats: &VerifyStats) {
        self.stats.absorb(stats);
    }

    /// Exact bounded minimum superimposed distance of the query passed
    /// to the latest [`VerifyScratch::begin_query`] against `target` —
    /// same contract as [`min_superimposed_distance`].
    /// Generic over the distance so callers holding the concrete type
    /// (the funnel matches on `IndexDistance` before verifying) get a
    /// monomorphized search loop with the per-element cost calls
    /// inlined; trait-object callers still work via `?Sized`.
    pub fn distance_within<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
        bound: f64,
    ) -> Option<f64> {
        let result = self.run(query, target, distance, bound, true, BudgetState::unlimited());
        debug_assert!(result.is_ok(), "the unlimited budget never interrupts verification");
        result.unwrap_or(None)
    }

    /// [`VerifyScratch::distance_within`] under a query budget: the DFS
    /// charges one [`CheckpointSite::Verify`] batch every
    /// `DFS_CHECK_INTERVAL` assignments. `Err(Interrupted)` means the
    /// search unwound before exploring every superposition — even a best
    /// distance found so far is unusable then, because a cheaper
    /// unexplored superposition could exist (and a `None`-so-far could
    /// still hide an answer), so the candidate stays *unverified* rather
    /// than *refuted*.
    pub fn distance_within_budgeted<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
        bound: f64,
        budget: &BudgetState,
    ) -> Result<Option<f64>, Interrupted> {
        // One zero-unit checkpoint per candidate: bounds deadline and
        // cancellation latency to a single verification even on targets
        // too small for the DFS ever to reach the assignment interval.
        if !budget.checkpoint(CheckpointSite::Verify, 0) {
            return Err(Interrupted);
        }
        self.run(query, target, distance, bound, true, budget)
    }

    /// Structure-only containment (`Q ⊆ G` up to labels) of the query
    /// passed to the latest [`VerifyScratch::begin_query`] — the exact
    /// test `pis_graph::iso::is_subgraph` runs under
    /// [`IsoConfig::STRUCTURE`], minus its per-candidate plan and
    /// adjacency-bitset setup. The structure-check stage of the funnel
    /// runs hundreds of these per query, most of them refutations, so
    /// the amortization matters as much here as in the verifier proper.
    pub fn contains_structure(&mut self, query: &LabeledGraph, target: &LabeledGraph) -> bool {
        let result = self.contains_structure_budgeted(query, target, BudgetState::unlimited());
        debug_assert!(result.is_ok(), "the unlimited budget never interrupts structure checks");
        result.unwrap_or(false)
    }

    /// [`VerifyScratch::contains_structure`] under a query budget:
    /// charges one [`CheckpointSite::StructureCheck`] batch every
    /// `DFS_CHECK_INTERVAL` assignments. On `Err(Interrupted)` the
    /// containment question is unresolved — the candidate must be kept
    /// (dropping it could lose an answer).
    pub fn contains_structure_budgeted(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        budget: &BudgetState,
    ) -> Result<bool, Interrupted> {
        // Zero-unit per-candidate checkpoint, as in
        // [`VerifyScratch::distance_within_budgeted`].
        if !budget.checkpoint(CheckpointSite::StructureCheck, 0) {
            return Err(Interrupted);
        }
        debug_assert_eq!(self.plan.len(), query.vertex_count(), "begin_query first");
        if query.vertex_count() > target.vertex_count() || query.edge_count() > target.edge_count()
        {
            return Ok(false);
        }
        // Degree-sequence domination: every embedding maps a query
        // vertex of degree `d` onto a target vertex of degree ≥ `d`
        // (neighbors stay injective), so the target must offer at least
        // as many vertices of degree ≥ `d` as the query demands, for
        // every `d`. One histogram pass refutes such candidates without
        // touching the DFS. The top bucket saturates, which only pools
        // demands that must be compared jointly anyway.
        const DEG_BUCKETS: usize = 16;
        let mut qh = [0u32; DEG_BUCKETS];
        let mut th = [0u32; DEG_BUCKETS];
        for v in query.vertex_ids() {
            qh[query.degree(v).min(DEG_BUCKETS - 1)] += 1;
        }
        for v in target.vertex_ids() {
            th[target.degree(v).min(DEG_BUCKETS - 1)] += 1;
        }
        let (mut cum_q, mut cum_t) = (0u32, 0u32);
        for d in (1..DEG_BUCKETS).rev() {
            cum_q += qh[d];
            cum_t += th[d];
            if cum_q > cum_t {
                return Ok(false);
            }
        }
        let VerifyScratch { plan, adj, bufs, .. } = self;
        let adj_ref = adj.rebuild(target).then_some(&*adj);
        let matcher =
            SubgraphMatcher::with_parts(query, target, IsoConfig::STRUCTURE, plan, adj_ref);
        let mut found = false;
        struct Exists<'a> {
            found: &'a mut bool,
            budget: &'a BudgetState,
            since_check: u32,
            tripped: bool,
        }
        impl MatchVisitor for Exists<'_> {
            fn assign(&mut self, _p: VertexId, _t: VertexId) -> bool {
                if self.tripped {
                    return false;
                }
                self.since_check += 1;
                if self.since_check >= DFS_CHECK_INTERVAL {
                    self.since_check = 0;
                    if !self
                        .budget
                        .checkpoint(CheckpointSite::StructureCheck, u64::from(DFS_CHECK_INTERVAL))
                    {
                        // Refusing every further assignment unwinds the
                        // matcher along its cheapest path.
                        self.tripped = true;
                        return false;
                    }
                }
                true
            }
            fn unassign(&mut self, _p: VertexId, _t: VertexId) {}
            fn complete(&mut self, _embedding: &Embedding) -> ControlFlow<()> {
                *self.found = true;
                ControlFlow::Break(())
            }
        }
        let mut visitor = Exists { found: &mut found, budget, since_check: 0, tripped: false };
        matcher.search_with_buffers(bufs, &mut visitor);
        if visitor.tripped && !found {
            // A trip after a witness embedding was found keeps the
            // (sound) positive answer; without one, containment is
            // unresolved.
            return Err(Interrupted);
        }
        Ok(found)
    }

    /// The optimized verifier with the remaining-cost bound disabled
    /// (seed-style `cost > bound` pruning only); exists so tests can
    /// measure how many DFS nodes the tightened bound removes.
    #[doc(hidden)]
    pub fn distance_within_plain<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
        bound: f64,
    ) -> Option<f64> {
        let result = self.run(query, target, distance, bound, false, BudgetState::unlimited());
        debug_assert!(result.is_ok(), "the unlimited budget never interrupts verification");
        result.unwrap_or(None)
    }

    fn run<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
        bound: f64,
        remaining_lb: bool,
        budget: &BudgetState,
    ) -> Result<Option<f64>, Interrupted> {
        let start = Instant::now();
        let result = self.run_timed(query, target, distance, bound, remaining_lb, budget);
        self.stats.nanos += start.elapsed().as_nanos() as u64;
        result
    }

    fn run_timed<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
        bound: f64,
        remaining_lb: bool,
        budget: &BudgetState,
    ) -> Result<Option<f64>, Interrupted> {
        debug_assert_eq!(
            self.plan.len(),
            query.vertex_count(),
            "begin_query must precede distance_within"
        );
        self.stats.calls += 1;
        if query.vertex_count() > target.vertex_count()
            || query.edge_count() > target.edge_count()
            || distance.pair_lower_bound(query, target) > bound
        {
            self.stats.prechecked += 1;
            return Ok(None);
        }
        let VerifyScratch {
            plan,
            adj,
            bufs,
            map,
            cost_stack,
            vertex_floor,
            edge_floor,
            suffix,
            vertex_suffix,
            deficit,
            fwd,
            grid,
            stats,
        } = self;
        if remaining_lb {
            distance.min_vertex_costs_into(query, target, vertex_floor);
            distance.min_edge_costs_into(query, target, edge_floor);
            deficit.rebuild(query, target, distance);
            // Reverse walk over the plan (the specialization of
            // `MatchPlan::suffix_lower_bounds` this scratch uses):
            // accumulate per-element floors and, alongside them, the
            // capacity deficit of the edge labels still unpaid. The
            // floor sum and the deficit each lower-bound the remaining
            // edge cost on their own, so the suffix takes their max on
            // the edge side and adds the vertex floors (kept split out
            // in `vertex_suffix` so the visitor's forward-checking
            // bound can recombine without double counting).
            let n = plan.len();
            suffix.clear();
            suffix.resize(n + 1, 0.0);
            vertex_suffix.clear();
            vertex_suffix.resize(n + 1, 0.0);
            let (mut vertices, mut edges, mut shortfall) = (0.0f64, 0.0f64, 0.0f64);
            for depth in (0..n).rev() {
                vertices += vertex_floor[plan.vertex(depth).index()];
                for &(_, e) in plan.checks(depth) {
                    edges += edge_floor[e.index()];
                    shortfall += deficit.consume(query.edge(e).attr.label);
                }
                vertex_suffix[depth] = vertices;
                suffix[depth] = vertices + edges.max(shortfall);
            }
            if suffix[0] > bound {
                stats.prechecked += 1;
                return Ok(None);
            }
        } else {
            suffix.clear();
            suffix.resize(plan.len() + 1, 0.0);
            vertex_suffix.clear();
            vertex_suffix.resize(plan.len() + 1, 0.0);
        }
        let adj_ref = adj.rebuild(target).then_some(&*adj);
        let grid_ref = grid.rebuild(target).then_some(&*grid);
        let matcher =
            SubgraphMatcher::with_parts(query, target, IsoConfig::STRUCTURE, plan, adj_ref);
        map.clear();
        map.resize(query.vertex_count(), None);
        cost_stack.clear();
        let fwd_ref = if remaining_lb
            && deficit.enabled
            && fwd.rebuild(query, target, distance, &deficit.rows)
        {
            Some(&mut *fwd)
        } else {
            None
        };
        let mut visitor = BoundedLbVisitor {
            query,
            target,
            distance,
            plan,
            grid: grid_ref,
            zero_vertex_costs: distance.max_vertex_cost() == Some(0.0),
            fwd: fwd_ref,
            map,
            cost_stack,
            suffix,
            vertex_suffix,
            fc: 0.0,
            cost: 0.0,
            bound,
            best: None,
            expanded: 0,
            pruned: 0,
            budget,
            since_check: 0,
            tripped: false,
        };
        matcher.search_with_buffers(bufs, &mut visitor);
        stats.nodes_expanded += visitor.expanded;
        stats.nodes_pruned += visitor.pruned;
        if visitor.tripped {
            // Unexplored superpositions remain: a found best could be
            // beaten and a miss could hide an answer, so neither is a
            // sound result.
            return Err(Interrupted);
        }
        Ok(visitor.best)
    }
}

/// Edge-label capacity accounting behind the suffix bound's deficit
/// refinement: the target supplies `capacity` edges of each query edge
/// label, and every query edge demanded beyond that supply must pay at
/// least the label's cheapest relabeling
/// ([`SuperimposedDistance::edge_label_substitution_floor`]). The same
/// injectivity argument as the pair-level `pair_lower_bound`, applied
/// per plan depth: label runs are disjoint, so the per-label shortfalls
/// add up to an admissible bound on the remaining edge cost.
#[derive(Debug, Default)]
struct DeficitTable {
    /// One row per distinct query edge label, sorted by label.
    rows: Vec<DeficitRow>,
    /// Scratch: sorted target edge labels, then their distinct values.
    t_labels: Vec<u32>,
    t_distinct: Vec<Label>,
    q_labels: Vec<u32>,
    /// Cleared when the distance cannot floor relabelings by label
    /// alone; `consume` then contributes nothing (still admissible).
    enabled: bool,
}

#[derive(Debug)]
struct DeficitRow {
    label: u32,
    /// Target edges carrying this label (shared supply).
    capacity: u32,
    /// Query edges of this label consumed by the reverse walk so far.
    seen: u32,
    /// Floor paid by each query edge beyond `capacity`.
    floor: f64,
}

impl DeficitTable {
    /// Recomputes capacities and relabeling floors for one (query,
    /// target) pair; buffers are retained across calls.
    fn rebuild<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
    ) {
        self.t_labels.clear();
        self.t_labels.extend(target.edges().iter().map(|e| e.attr.label.0));
        self.t_labels.sort_unstable();
        self.t_distinct.clear();
        self.t_distinct.extend(self.t_labels.iter().copied().map(Label));
        self.t_distinct.dedup();
        self.rows.clear();
        self.enabled = true;
        self.q_labels.clear();
        self.q_labels.extend(query.edges().iter().map(|e| e.attr.label.0));
        self.q_labels.sort_unstable();
        self.q_labels.dedup();
        for i in 0..self.q_labels.len() {
            let label = self.q_labels[i];
            let capacity = (self.t_labels.partition_point(|&x| x <= label)
                - self.t_labels.partition_point(|&x| x < label)) as u32;
            let Some(floor) =
                distance.edge_label_substitution_floor(Label(label), &self.t_distinct)
            else {
                self.enabled = false;
                return;
            };
            self.rows.push(DeficitRow { label, capacity, seen: 0, floor });
        }
    }

    /// Charges one query edge of `label` against the target's supply and
    /// returns the marginal deficit cost: zero while supply lasts, the
    /// relabeling floor for each edge past it.
    fn consume(&mut self, label: Label) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let i = self
            .rows
            .binary_search_by_key(&label.0, |r| r.label)
            .expect("every query edge label has a deficit row");
        let row = &mut self.rows[i];
        row.seen += 1;
        if row.seen > row.capacity {
            row.floor
        } else {
            0.0
        }
    }
}

/// Incident-edge cost floors for label-driven forward checking: once
/// the DFS places a query vertex on target vertex `t`, each of the
/// vertex's still-unpaid query edges must map onto an edge incident to
/// `t`, so it pays at least `incident[t × L + row(label)]` — the
/// cheapest [`SuperimposedDistance::edge_label_cost_floor`] over `t`'s
/// incident edges. The visitor keeps the sum of these floors over all
/// frontier edges (placed endpoint, unpaid) as an admissible
/// remaining-cost bound that tightens with every placement.
#[derive(Debug, Default)]
struct ForwardFloors {
    /// `target.vertex_count() × L` floor table (`L` = deficit rows).
    incident: Vec<f64>,
    /// Query edge → deficit-row index of its label.
    edge_row: Vec<u32>,
    /// The floor currently charged for each query edge (written when
    /// the edge's first endpoint is placed, removed when it is paid).
    edge_floor: Vec<f64>,
    rows_len: usize,
}

impl ForwardFloors {
    /// Rebuilds the incident-floor table for one (query, target) pair.
    /// Returns `false` when the distance cannot floor edge costs by
    /// label (forward checking then stays off for this call).
    fn rebuild<D: SuperimposedDistance + ?Sized>(
        &mut self,
        query: &LabeledGraph,
        target: &LabeledGraph,
        distance: &D,
        rows: &[DeficitRow],
    ) -> bool {
        self.rows_len = rows.len();
        self.edge_row.clear();
        for e in query.edges() {
            let r = rows
                .binary_search_by_key(&e.attr.label.0, |row| row.label)
                .expect("rows cover every query edge label");
            self.edge_row.push(r as u32);
        }
        self.edge_floor.clear();
        self.edge_floor.resize(query.edge_count(), 0.0);
        self.incident.clear();
        self.incident.resize(target.vertex_count() * rows.len(), f64::INFINITY);
        for e in target.edges() {
            for (r, row) in rows.iter().enumerate() {
                let Some(floor) = distance.edge_label_cost_floor(Label(row.label), e.attr.label)
                else {
                    return false;
                };
                let (u, v) = (e.source.index(), e.target.index());
                let iu = &mut self.incident[u * self.rows_len + r];
                *iu = iu.min(floor);
                let iv = &mut self.incident[v * self.rows_len + r];
                *iv = iv.min(floor);
            }
        }
        true
    }

    /// The floor an unpaid edge `qe` pays if its open endpoint must land
    /// next to target vertex `t`.
    #[inline]
    fn floor_at(&self, t: VertexId, qe: EdgeId) -> f64 {
        self.incident[t.index() * self.rows_len + self.edge_row[qe.index()] as usize]
    }
}

/// The optimized branch-and-bound visitor: seed cost accounting plus the
/// per-depth remaining-cost floor from the plan-aligned suffix table.
struct BoundedLbVisitor<'a, D: SuperimposedDistance + ?Sized> {
    query: &'a LabeledGraph,
    target: &'a LabeledGraph,
    distance: &'a D,
    /// The matcher's plan: `checks(depth)` lists exactly the
    /// already-placed neighbors whose edges this assignment pays for, so
    /// the delta prices them directly instead of rescanning and
    /// filtering the full neighbor list. The filtered scan visits the
    /// same edges in the same order, so the sum is bit-identical.
    plan: &'a MatchPlan,
    /// O(1) target edge lookup (falls back to `edge_between` scans on
    /// oversized targets).
    grid: Option<&'a EdgeGrid>,
    /// Skips the per-node vertex-cost call outright when the distance
    /// bounds every vertex cost by zero (the paper's edge-Hamming
    /// setting).
    zero_vertex_costs: bool,
    /// Incident-edge floors for forward checking (`None` when the
    /// distance offers no label floors or the plain path runs).
    fwd: Option<&'a mut ForwardFloors>,
    /// Our own copy of the partial mapping (the matcher's is private).
    map: &'a mut Vec<Option<VertexId>>,
    /// Per-assignment cost deltas, for O(1) rollback.
    cost_stack: &'a mut Vec<f64>,
    /// `suffix[d]` lower-bounds the cost steps `d..` still have to pay;
    /// the stack depth is exactly the plan depth, so each assignment at
    /// depth `d` checks `cost + delta + suffix[d + 1]`.
    suffix: &'a [f64],
    /// The vertex-floor part of the suffix on its own, so the
    /// forward-checking sum can replace the edge side without double
    /// counting.
    vertex_suffix: &'a [f64],
    /// Running forward-checking sum: the incident floors of every
    /// frontier edge (one endpoint placed, not yet paid). Admissible
    /// because frontier edges are distinct and each floor prices only
    /// its own edge's eventual cost.
    fc: f64,
    cost: f64,
    /// Current pruning bound: min(sigma, best complete cost so far).
    bound: f64,
    best: Option<f64>,
    expanded: u64,
    pruned: u64,
    /// Budget the DFS charges every `DFS_CHECK_INTERVAL` assignment
    /// attempts; `tripped` makes every later assignment refuse, so the
    /// matcher unwinds along its cheapest path.
    budget: &'a BudgetState,
    since_check: u32,
    tripped: bool,
}

impl<D: SuperimposedDistance + ?Sized> MatchVisitor for BoundedLbVisitor<'_, D> {
    fn assign(&mut self, p: VertexId, t: VertexId) -> bool {
        if self.tripped {
            return false;
        }
        self.since_check += 1;
        if self.since_check >= DFS_CHECK_INTERVAL {
            self.since_check = 0;
            if !self.budget.checkpoint(CheckpointSite::Verify, u64::from(DFS_CHECK_INTERVAL)) {
                self.tripped = true;
                return false;
            }
        }
        let depth = self.cost_stack.len();
        debug_assert_eq!(self.plan.vertex(depth), p, "assign depth tracks the plan");
        let mut delta = if self.zero_vertex_costs {
            0.0
        } else {
            self.distance.vertex_cost(self.query.vertex(p), self.target.vertex(t))
        };
        if let Some(fwd) = self.fwd.as_deref_mut() {
            // Forward-checking variant of the delta scan: walk *all* of
            // `p`'s neighbors so paid edges (placed neighbor) release
            // their charged floor while still-open edges pick up the
            // floor `t`'s incident edges impose. The placed subset is
            // exactly `checks(depth)` in the same order, so the cost sum
            // stays bit-identical to the reference. Open edges record
            // their charged floor in `edge_floor` right away: the slot of
            // an edge with both endpoints unplaced is dead (every read is
            // preceded by the write at frontier creation), so the store
            // is harmless even when the assignment is rejected below.
            let mut fc_new = self.fc;
            for &(q, qe) in self.query.neighbors(p) {
                match self.map[q.index()] {
                    Some(tq) => {
                        let te = match self.grid {
                            Some(grid) => grid.get(tq, t),
                            None => self.target.edge_between(tq, t),
                        }
                        .expect("matcher guarantees structural feasibility");
                        delta += self
                            .distance
                            .edge_cost(self.query.edge(qe).attr, self.target.edge(te).attr);
                        fc_new -= fwd.edge_floor[qe.index()];
                    }
                    None => {
                        let floor = fwd.floor_at(t, qe);
                        fwd.edge_floor[qe.index()] = floor;
                        fc_new += floor;
                    }
                }
            }
            // The forward-checking sum and the static edge-floor suffix
            // each bound the remaining edge cost on their own; take the
            // stronger (`f64::max` sidesteps any INF-INF artifacts —
            // infinite floors never survive an accepted assign, because
            // `bound` is finite).
            let remaining = self.suffix[depth + 1].max(self.vertex_suffix[depth + 1] + fc_new);
            if self.cost + delta + remaining > self.bound {
                self.pruned += 1;
                return false;
            }
            self.fc = fc_new;
        } else {
            for &(q, qe) in self.plan.checks(depth) {
                let tq = self.map[q.index()].expect("checks reference already-placed vertices");
                let te = match self.grid {
                    Some(grid) => grid.get(tq, t),
                    None => self.target.edge_between(tq, t),
                }
                .expect("matcher guarantees structural feasibility");
                delta +=
                    self.distance.edge_cost(self.query.edge(qe).attr, self.target.edge(te).attr);
            }
            if self.cost + delta + self.suffix[depth + 1] > self.bound {
                self.pruned += 1;
                return false;
            }
        }
        self.expanded += 1;
        self.map[p.index()] = Some(t);
        self.cost_stack.push(delta);
        self.cost += delta;
        true
    }

    fn unassign(&mut self, p: VertexId, _t: VertexId) {
        self.map[p.index()] = None;
        if let Some(fwd) = &self.fwd {
            // DFS order makes the neighbor placement state here exactly
            // what it was at the matching assign: placed neighbors had
            // released their edge's floor (restore it), open neighbors
            // had been charged `t`'s floor (drop it again).
            for &(q, qe) in self.query.neighbors(p) {
                match self.map[q.index()] {
                    Some(_) => self.fc += fwd.edge_floor[qe.index()],
                    None => self.fc -= fwd.edge_floor[qe.index()],
                }
            }
        }
        let delta = self.cost_stack.pop().expect("unassign pairs with assign");
        self.cost -= delta;
    }

    fn complete(&mut self, _embedding: &Embedding) -> ControlFlow<()> {
        if self.best.is_none_or(|b| self.cost < b) {
            self.best = Some(self.cost);
            self.bound = self.bound.min(self.cost);
        }
        if self.best == Some(0.0) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// The seed visitor, unchanged: prunes on accumulated cost alone.
struct BoundedVisitor<'a> {
    query: &'a LabeledGraph,
    target: &'a LabeledGraph,
    distance: &'a dyn SuperimposedDistance,
    /// Our own copy of the partial mapping (the matcher's is private).
    map: Vec<Option<VertexId>>,
    /// Per-assignment cost deltas, for O(1) rollback.
    cost_stack: Vec<f64>,
    cost: f64,
    /// Current pruning bound: min(sigma, best complete cost so far).
    bound: f64,
    best: Option<f64>,
}

impl MatchVisitor for BoundedVisitor<'_> {
    fn assign(&mut self, p: VertexId, t: VertexId) -> bool {
        let mut delta = self.distance.vertex_cost(self.query.vertex(p), self.target.vertex(t));
        for &(q, qe) in self.query.neighbors(p) {
            let Some(tq) = self.map[q.index()] else { continue };
            let te =
                self.target.edge_between(tq, t).expect("matcher guarantees structural feasibility");
            delta += self.distance.edge_cost(self.query.edge(qe).attr, self.target.edge(te).attr);
        }
        if self.cost + delta > self.bound {
            return false;
        }
        self.map[p.index()] = Some(t);
        self.cost_stack.push(delta);
        self.cost += delta;
        true
    }

    fn unassign(&mut self, p: VertexId, _t: VertexId) {
        self.map[p.index()] = None;
        let delta = self.cost_stack.pop().expect("unassign pairs with assign");
        self.cost -= delta;
    }

    fn complete(&mut self, _embedding: &Embedding) -> ControlFlow<()> {
        if self.best.is_none_or(|b| self.cost < b) {
            self.best = Some(self.cost);
            self.bound = self.bound.min(self.cost);
        }
        if self.best == Some(0.0) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_distance::oracle::min_superimposed_distance_brute;
    use pis_distance::{LinearDistance, MutationDistance};
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    fn cycle_with_edge_labels(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    #[test]
    fn agrees_with_brute_force_within_budget() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let cases = [
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 1, 2, 1, 1, 2]),
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]),
        ];
        for g in &cases {
            let brute = min_superimposed_distance_brute(&q, g, &md).unwrap();
            for sigma in [0.0, 1.0, 2.0, 6.0] {
                let bounded = min_superimposed_distance(&q, g, &md, sigma);
                if brute <= sigma {
                    assert_eq!(bounded, Some(brute), "sigma {sigma}");
                } else {
                    assert_eq!(bounded, None, "sigma {sigma}");
                }
            }
        }
    }

    #[test]
    fn no_structural_match_is_none() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_graph(5, Label(0), Label(0));
        let g = path_graph(8, Label(0), Label(0));
        assert_eq!(min_superimposed_distance(&q, &g, &md, 100.0), None);
    }

    #[test]
    fn works_for_linear_distance() {
        let ld = LinearDistance::edges_only();
        let mk = |w: f64| {
            let mut b = GraphBuilder::new();
            let u = b.add_vertex(VertexAttr::labeled(Label(0)));
            let v = b.add_vertex(VertexAttr::labeled(Label(0)));
            b.add_edge(u, v, EdgeAttr { label: Label(0), weight: w }).unwrap();
            b.build()
        };
        let q = mk(1.0);
        let g = mk(1.75);
        assert_eq!(min_superimposed_distance(&q, &g, &ld, 1.0), Some(0.75));
        assert_eq!(min_superimposed_distance(&q, &g, &ld, 0.5), None);
    }

    #[test]
    fn randomized_agreement_with_oracle() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gen = pis_datasets::MoleculeGenerator::default();
        let db = gen.database(12, 77);
        let mut rng = StdRng::seed_from_u64(5);
        let md = MutationDistance::edge_hamming();
        let mut checked = 0;
        for g in &db {
            if g.edge_count() < 6 {
                continue;
            }
            let Some(q) = pis_datasets::query::sample_query(g, 5, &mut rng) else { continue };
            for target in db.iter().take(6) {
                let brute = min_superimposed_distance_brute(&q, target, &md);
                for sigma in [0.0, 1.0, 3.0] {
                    let fast = min_superimposed_distance(&q, target, &md, sigma);
                    match brute {
                        Some(b) if b <= sigma => {
                            assert_eq!(fast, Some(b), "sigma={sigma}");
                        }
                        _ => assert_eq!(fast, None, "sigma={sigma}"),
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "exercised too few cases ({checked})");
    }

    #[test]
    fn zero_budget_finds_exact_label_matches_only() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 2, 1, 2]);
        let same = cycle_with_edge_labels(&[2, 1, 2, 1]); // rotation
        let diff = cycle_with_edge_labels(&[1, 1, 2, 2]);
        assert_eq!(min_superimposed_distance(&q, &same, &md, 0.0), Some(0.0));
        assert_eq!(min_superimposed_distance(&q, &diff, &md, 0.0), None);
    }

    #[test]
    fn reference_and_optimized_agree_bitwise_on_molecules() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gen = pis_datasets::MoleculeGenerator::default();
        let db = gen.database(10, 31);
        let mut rng = StdRng::seed_from_u64(9);
        for distance in [MutationDistance::edge_hamming(), MutationDistance::unit()] {
            let mut scratch = VerifyScratch::new();
            for g in &db {
                let Some(q) = pis_datasets::query::sample_query(g, 4, &mut rng) else { continue };
                scratch.begin_query(&q);
                for target in &db {
                    for sigma in [0.0, 2.0, 5.0] {
                        let reference =
                            min_superimposed_distance_reference(&q, target, &distance, sigma);
                        let fast = scratch.distance_within(&q, target, &distance, sigma);
                        assert_eq!(
                            fast.map(f64::to_bits),
                            reference.map(f64::to_bits),
                            "sigma={sigma}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn remaining_lb_strictly_reduces_expanded_nodes() {
        // Seeded workload: molecule queries against the whole database.
        // The tightened bound must expand strictly fewer DFS nodes than
        // plain cost-only pruning while returning identical distances.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gen = pis_datasets::MoleculeGenerator::default();
        let db = gen.database(14, 42);
        let mut rng = StdRng::seed_from_u64(7);
        let md = MutationDistance::edge_hamming();
        let mut with_lb = VerifyScratch::new();
        let mut plain = VerifyScratch::new();
        for g in &db {
            if g.edge_count() < 8 {
                continue;
            }
            let Some(q) = pis_datasets::query::sample_query(g, 6, &mut rng) else { continue };
            with_lb.begin_query(&q);
            plain.begin_query(&q);
            for target in &db {
                for sigma in [1.0, 3.0] {
                    let a = with_lb.distance_within(&q, target, &md, sigma);
                    let b = plain.distance_within_plain(&q, target, &md, sigma);
                    assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
                }
            }
        }
        let tightened = with_lb.take_stats();
        let baseline = plain.take_stats();
        assert_eq!(tightened.calls, baseline.calls);
        assert!(tightened.calls > 20, "workload too small ({} calls)", tightened.calls);
        assert!(
            tightened.nodes_expanded < baseline.nodes_expanded,
            "remaining-cost bound did not reduce expansions: {} vs {}",
            tightened.nodes_expanded,
            baseline.nodes_expanded
        );
    }

    #[test]
    fn stats_account_for_prechecks_and_drain() {
        let md = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1]);
        let hopeless = cycle_with_edge_labels(&[2, 2, 2, 2]);
        let mut scratch = VerifyScratch::new();
        scratch.begin_query(&q);
        // The label-deficit precheck (4 mismatched edges > σ=1) refutes
        // the pair before any DFS.
        assert_eq!(scratch.distance_within(&q, &hopeless, &md, 1.0), None);
        let stats = scratch.take_stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.prechecked, 1);
        assert_eq!(stats.nodes_expanded, 0);
        // Draining resets.
        assert_eq!(scratch.take_stats(), VerifyStats::default());
        // A matching pair goes through the DFS.
        assert_eq!(scratch.distance_within(&q, &q, &md, 1.0), Some(0.0));
        let stats = scratch.take_stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.prechecked, 0);
        assert!(stats.nodes_expanded > 0);
    }
}
