//! Equivalence and soundness suite for the sharded scatter-gather.
//!
//! The shard router must be invisible when healthy: for any shard count
//! N — including N=1 and N=num_classes — a scatter over healthy shards
//! is **byte-identical** (candidates, answers, raw `f64` distance bits)
//! to the unsharded funnel, across both distance families, all three
//! partition algorithms, and scratch reuse.
//!
//! When shards go dark the bar drops to **soundness**: a query that
//! loses shards (modeled by force-quarantining them) must still return,
//! report `Completeness::Degraded` naming only dark shards, and its
//! answers must be a verified subset of the exact answer set — missing
//! data may widen the candidate set but never prune it.

use pis_core::{Completeness, PartitionAlgo, PisConfig, PisSearcher, SearchScratch, ShardConfig};
use pis_distance::{LinearDistance, MutationDistance};
use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr, VertexId};
use pis_index::{FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::exhaustive::exhaustive_features;
use proptest::prelude::*;

/// Connected labeled graph: spanning tree plus extra edges, small label
/// vocabulary so fragment classes collide across the database.
fn connected_graph(
    max_vertices: usize,
    max_extra_edges: usize,
    label_count: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices).prop_flat_map(move |n| {
        let tree_parents = proptest::collection::vec(0..n, n - 1);
        let extra = proptest::collection::vec((0..n, 0..n), 0..=max_extra_edges);
        let vlabels = proptest::collection::vec(0..label_count, n);
        let elabels = proptest::collection::vec(0..label_count, n - 1 + max_extra_edges);
        (tree_parents, extra, vlabels, elabels).prop_map(move |(parents, extra, vl, el)| {
            let mut b = GraphBuilder::new();
            let vs: Vec<VertexId> =
                (0..n).map(|i| b.add_vertex(VertexAttr::labeled(Label(vl[i])))).collect();
            let mut next = 0usize;
            for i in 1..n {
                let p = parents[i - 1] % i;
                b.add_edge(vs[p], vs[i], EdgeAttr::labeled(Label(el[next])))
                    .expect("tree edges are fresh");
                next += 1;
            }
            for &(u, v) in &extra {
                if u != v {
                    let _ = b.add_edge(vs[u], vs[v], EdgeAttr::labeled(Label(el[next])));
                }
                next += 1;
            }
            b.build()
        })
    })
}

/// Copies a graph, deriving dyadic numeric weights from the labels so
/// linear distances have something to measure and sums stay exact.
fn weighted_from_labels(g: &LabeledGraph) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    for v in g.vertex_ids() {
        let attr = g.vertex(v);
        b.add_vertex(VertexAttr { label: attr.label, weight: attr.label.0 as f64 * 0.5 });
    }
    for e in g.edges() {
        b.add_edge(
            e.source,
            e.target,
            EdgeAttr { label: e.attr.label, weight: 1.0 + e.attr.label.0 as f64 },
        )
        .expect("copying a simple graph");
    }
    b.build()
}

fn build_index(db: &[LabeledGraph], distance: IndexDistance) -> FragmentIndex {
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    FragmentIndex::build(db, exhaustive_features(&structures, 3), distance, &IndexConfig::default())
}

/// Bitwise comparison of one sharded outcome against the unsharded
/// reference.
fn assert_identical(
    got: &pis_core::SearchOutcome,
    expect: &pis_core::SearchOutcome,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.candidates, &expect.candidates, "candidates differ: {}", context);
    prop_assert_eq!(&got.answers, &expect.answers, "answers differ: {}", context);
    let got_bits: Vec<u64> = got.answer_distances.iter().map(|d| d.to_bits()).collect();
    let expect_bits: Vec<u64> = expect.answer_distances.iter().map(|d| d.to_bits()).collect();
    prop_assert_eq!(got_bits, expect_bits, "distance bits differ: {}", context);
    prop_assert!(
        got.completeness.is_exact(),
        "a healthy scatter must stay Exact ({}): {:?}",
        context,
        got.completeness
    );
    prop_assert!(
        got.stats.degraded_shards.is_empty(),
        "a healthy scatter reports no dark shards ({})",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Healthy scatter-gather is byte-identical to the unsharded funnel
    /// for every shard count in {1, 2, 7, num_classes}, under both
    /// distance families and all three partition algorithms, through
    /// one reused scratch.
    #[test]
    fn healthy_scatter_is_byte_identical(
        db in proptest::collection::vec(connected_graph(5, 2, 3), 2..6),
        qi in 0usize..8,
        algo in prop::sample::select(vec![
            PartitionAlgo::Greedy,
            PartitionAlgo::EnhancedGreedy(2),
            PartitionAlgo::Exact,
        ]),
        linear in prop::sample::select(vec![false, true]),
    ) {
        let db: Vec<LabeledGraph> = if linear {
            db.iter().map(weighted_from_labels).collect()
        } else {
            db
        };
        let distance = if linear {
            IndexDistance::Linear(LinearDistance::edges_only())
        } else {
            IndexDistance::Mutation(MutationDistance::edge_hamming())
        };
        let index = build_index(&db, distance);
        let query = db[qi % db.len()].clone();
        let config = PisConfig { partition: algo, ..PisConfig::default() };
        let reference = PisSearcher::new(&index, &db, config.clone());
        let num_classes = index.features().len().max(1);
        // One scratch spans every (sigma, shard count) pair: residue
        // from a previous scatter would surface as a bit mismatch.
        let mut scratch = SearchScratch::new();
        for sigma in [0.5, 2.0] {
            let expect = reference.search(&query, sigma);
            prop_assert!(expect.completeness.is_exact());
            for shards in [1usize, 2, 7, num_classes] {
                let sharded = PisSearcher::new(
                    &index,
                    &db,
                    PisConfig { shard: Some(ShardConfig::new(shards)), ..config.clone() },
                );
                let got = sharded.search_with_scratch(&query, sigma, &mut scratch);
                let context = format!("{shards} shards, sigma {sigma}, linear {linear}");
                assert_identical(&got, &expect, &context)?;
            }
        }
    }

    /// Force-quarantined shards degrade soundly: the query still
    /// returns, `Degraded` names only dark shards, and the verified
    /// answers are a subset of the exact answer set.
    #[test]
    fn quarantined_shards_degrade_soundly(
        db in proptest::collection::vec(connected_graph(5, 2, 3), 2..6),
        qi in 0usize..8,
        shards in 2usize..6,
        dark_mask in 1usize..63,
    ) {
        let index = build_index(&db, IndexDistance::Mutation(MutationDistance::edge_hamming()));
        let query = db[qi % db.len()].clone();
        let exact = PisSearcher::new(&index, &db, PisConfig::default()).search(&query, 2.0);
        let sharded = PisSearcher::new(
            &index,
            &db,
            PisConfig { shard: Some(ShardConfig::new(shards)), ..PisConfig::default() },
        );
        let router = sharded.router().expect("a sharded searcher exposes its router");
        let mut dark = Vec::new();
        for s in 0..router.shards() {
            if dark_mask & (1 << s) != 0 {
                router.quarantine(s);
                dark.push(s);
            }
        }
        let got = sharded.search(&query, 2.0);
        for a in &got.answers {
            prop_assert!(
                exact.answers.contains(a),
                "degraded answers must be a subset of exact: {:?} not in {:?}",
                a,
                exact.answers
            );
        }
        // Every reported answer distance is the true one (verification
        // never runs on fiction).
        for (a, d) in got.answers.iter().zip(&got.answer_distances) {
            let i = exact.answers.iter().position(|g| g == a).expect("subset");
            prop_assert_eq!(d.to_bits(), exact.answer_distances[i].to_bits());
        }
        match &got.completeness {
            Completeness::Exact => {
                // None of the dark shards owned a probe for this query,
                // so nothing was lost and the outcome must match.
                prop_assert_eq!(&got.answers, &exact.answers);
                prop_assert!(got.stats.degraded_shards.is_empty());
            }
            Completeness::Degraded { shards: degraded } => {
                prop_assert!(!degraded.is_empty());
                for s in degraded {
                    prop_assert!(dark.contains(s), "only dark shards may degrade: {}", s);
                }
                prop_assert_eq!(degraded.clone(), got.stats.degraded_shards.clone());
            }
            Completeness::Truncated { .. } => {
                prop_assert!(false, "an unlimited budget cannot truncate");
            }
        }
    }
}
