//! Oracle-equivalence suite for the bound-propagating verifier.
//!
//! [`VerifyScratch::distance_within`] prunes DFS branches with an
//! admissible remaining-cost lower bound and reuses its match plan and
//! buffers across candidates. These properties hold it **byte-identical**
//! (`f64::to_bits`) to two independent answers on random inputs:
//!
//! * the exhaustive brute-force oracle
//!   (`pis_distance::oracle::min_superimposed_distance_brute`), filtered
//!   by the budget, and
//! * the seed's un-pruned branch-and-bound verifier
//!   ([`min_superimposed_distance_reference`]), kept verbatim as the
//!   executable specification.
//!
//! Targets are *not* forced connected and may be smaller than the query,
//! so structural refutations (`None`) and disconnected inputs are part
//! of every run; one scratch serves every (query, target, σ) triple, so
//! state leakage across reuse would surface as a mismatch.

use pis_core::{min_superimposed_distance_reference, VerifyScratch};
use pis_distance::oracle::min_superimposed_distance_brute;
use pis_distance::{LinearDistance, MutationDistance, SuperimposedDistance};
use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr, VertexId};
use proptest::prelude::*;

/// Connected labeled graph: spanning tree plus extra edges, small label
/// vocabulary so collisions are common.
fn connected_graph(
    max_vertices: usize,
    max_extra_edges: usize,
    label_count: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices).prop_flat_map(move |n| {
        let tree_parents = proptest::collection::vec(0..n, n - 1);
        let extra = proptest::collection::vec((0..n, 0..n), 0..=max_extra_edges);
        let vlabels = proptest::collection::vec(0..label_count, n);
        let elabels = proptest::collection::vec(0..label_count, n - 1 + max_extra_edges);
        (tree_parents, extra, vlabels, elabels).prop_map(move |(parents, extra, vl, el)| {
            let mut b = GraphBuilder::new();
            let vs: Vec<VertexId> =
                (0..n).map(|i| b.add_vertex(VertexAttr::labeled(Label(vl[i])))).collect();
            let mut next = 0usize;
            for i in 1..n {
                let p = parents[i - 1] % i;
                b.add_edge(vs[p], vs[i], EdgeAttr::labeled(Label(el[next])))
                    .expect("tree edges are fresh");
                next += 1;
            }
            for &(u, v) in &extra {
                if u != v {
                    let _ = b.add_edge(vs[u], vs[v], EdgeAttr::labeled(Label(el[next])));
                }
                next += 1;
            }
            b.build()
        })
    })
}

/// Possibly-disconnected target: random vertices plus a random edge
/// soup (self-loops and duplicates dropped). Small targets double as
/// no-match cases whenever the query is larger.
fn loose_graph(max_vertices: usize, label_count: u32) -> impl Strategy<Value = LabeledGraph> {
    (1..=max_vertices).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..=n + 2);
        let vlabels = proptest::collection::vec(0..label_count, n);
        let elabels = proptest::collection::vec(0..label_count, n + 2);
        (edges, vlabels, elabels).prop_map(move |(edges, vl, el)| {
            let mut b = GraphBuilder::new();
            let vs: Vec<VertexId> =
                (0..n).map(|i| b.add_vertex(VertexAttr::labeled(Label(vl[i])))).collect();
            for (k, &(u, v)) in edges.iter().enumerate() {
                if u != v {
                    let _ = b.add_edge(vs[u], vs[v], EdgeAttr::labeled(Label(el[k])));
                }
            }
            b.build()
        })
    })
}

/// Copies a graph, deriving numeric weights from the labels so linear
/// distances have something to measure. Weights are dyadic (multiples
/// of 0.5), so cost sums are exact and order-independent — bitwise
/// comparison stays meaningful.
fn weighted_from_labels(g: &LabeledGraph) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    for v in g.vertex_ids() {
        let attr = g.vertex(v);
        b.add_vertex(VertexAttr { label: attr.label, weight: attr.label.0 as f64 * 0.5 });
    }
    for e in g.edges() {
        b.add_edge(
            e.source,
            e.target,
            EdgeAttr { label: e.attr.label, weight: 1.0 + e.attr.label.0 as f64 },
        )
        .expect("copying a simple graph");
    }
    b.build()
}

/// Checks one (query, target, σ) triple through a shared scratch
/// against the reference verifier and the budget-filtered brute oracle,
/// comparing raw `f64` bits.
fn assert_triple(
    scratch: &mut VerifyScratch,
    query: &LabeledGraph,
    target: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
    sigma: f64,
) -> Result<(), TestCaseError> {
    let got = scratch.distance_within(query, target, distance, sigma);
    let reference = min_superimposed_distance_reference(query, target, distance, sigma);
    let brute = min_superimposed_distance_brute(query, target, distance).filter(|&d| d <= sigma);
    prop_assert_eq!(
        got.map(f64::to_bits),
        reference.map(f64::to_bits),
        "scratch vs reference, sigma {}",
        sigma
    );
    prop_assert_eq!(
        got.map(f64::to_bits),
        brute.map(f64::to_bits),
        "scratch vs brute oracle, sigma {}",
        sigma
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mutation distances over mixed targets. σ spans zero (exact label
    /// match only), a small budget (pruning does real work) and a large
    /// one (nothing structural survives un-verified).
    #[test]
    fn verifier_matches_oracle_mutation(
        query in connected_graph(5, 2, 3),
        targets in proptest::collection::vec(loose_graph(6, 3), 1..6),
        unit in prop::sample::select(vec![false, true]),
    ) {
        let md = if unit { MutationDistance::unit() } else { MutationDistance::edge_hamming() };
        let mut scratch = VerifyScratch::new();
        scratch.begin_query(&query);
        for target in &targets {
            for sigma in [0.0, 1.5, 10.0] {
                assert_triple(&mut scratch, &query, target, &md, sigma)?;
            }
        }
    }

    /// Linear distances (numeric weights) through the same shared
    /// scratch, including the edges-only variant whose zero vertex scale
    /// takes the fast-path floor tables.
    #[test]
    fn verifier_matches_oracle_linear(
        query in connected_graph(4, 1, 3),
        targets in proptest::collection::vec(loose_graph(5, 3), 1..5),
        edges_only in prop::sample::select(vec![false, true]),
    ) {
        let ld = if edges_only { LinearDistance::edges_only() } else { LinearDistance::new() };
        let query = weighted_from_labels(&query);
        let mut scratch = VerifyScratch::new();
        scratch.begin_query(&query);
        for target in &targets {
            let target = weighted_from_labels(target);
            for sigma in [0.0, 2.0, 12.0] {
                assert_triple(&mut scratch, &query, &target, &ld, sigma)?;
            }
        }
    }

    /// One scratch across a shifting workload of *queries* — every
    /// `begin_query` must fully rebuild the plan and floor tables, with
    /// no residue from the previous query or its targets.
    #[test]
    fn scratch_reuse_across_queries_is_clean(
        queries in proptest::collection::vec(connected_graph(5, 2, 3), 2..4),
        targets in proptest::collection::vec(loose_graph(6, 3), 1..5),
        sigmas in proptest::collection::vec(0.0f64..6.0, 1..3),
    ) {
        let md = MutationDistance::edge_hamming();
        let mut scratch = VerifyScratch::new();
        for query in &queries {
            scratch.begin_query(query);
            for target in &targets {
                for &sigma in &sigmas {
                    assert_triple(&mut scratch, query, target, &md, sigma)?;
                }
            }
        }
    }
}
