//! Atom and bond vocabularies for the synthetic chemical dataset.
//!
//! Frequencies are calibrated to the AIDS antiviral screen's character:
//! carbon dominates the atom distribution and single bonds dominate the
//! bond distribution, which is exactly what makes substructure search on
//! it hard (the paper: "most of the atoms are carbons and most of the
//! edges are carbon-carbon bonds").

use pis_graph::Label;

/// An atom vocabulary: element symbols with occurrence frequencies.
#[derive(Clone, Debug)]
pub struct AtomVocabulary {
    symbols: Vec<&'static str>,
    frequencies: Vec<f64>,
    /// Representative atomic masses, used as vertex weights in weighted
    /// datasets.
    masses: Vec<f64>,
}

impl Default for AtomVocabulary {
    fn default() -> Self {
        AtomVocabulary::aids_like()
    }
}

impl AtomVocabulary {
    /// The AIDS-screen-like distribution (carbon-dominated).
    pub fn aids_like() -> Self {
        AtomVocabulary {
            symbols: vec!["C", "N", "O", "S", "P", "F", "Cl", "Br", "I"],
            frequencies: vec![0.726, 0.105, 0.120, 0.018, 0.006, 0.009, 0.011, 0.004, 0.001],
            masses: vec![12.011, 14.007, 15.999, 32.06, 30.974, 18.998, 35.45, 79.904, 126.904],
        }
    }

    /// Number of atom types.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The label of an element symbol, if known.
    pub fn label_of(&self, symbol: &str) -> Option<Label> {
        self.symbols.iter().position(|s| s.eq_ignore_ascii_case(symbol)).map(|i| Label(i as u32))
    }

    /// The element symbol of a label (`"?"` if out of range).
    pub fn symbol_of(&self, label: Label) -> &'static str {
        self.symbols.get(label.index()).copied().unwrap_or("?")
    }

    /// Occurrence frequencies, parallel to labels.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Atomic mass of a label (0 if out of range).
    pub fn mass_of(&self, label: Label) -> f64 {
        self.masses.get(label.index()).copied().unwrap_or(0.0)
    }
}

/// A bond vocabulary: bond kinds with occurrence frequencies.
#[derive(Clone, Debug)]
pub struct BondVocabulary {
    names: Vec<&'static str>,
    /// Frequencies for acyclic (chain) edges.
    chain_frequencies: Vec<f64>,
    /// Frequencies for ring edges (aromatic systems live in rings).
    ring_frequencies: Vec<f64>,
    /// Typical bond lengths in Å, used as edge weights in weighted
    /// datasets.
    lengths: Vec<f64>,
}

impl Default for BondVocabulary {
    fn default() -> Self {
        BondVocabulary::aids_like()
    }
}

impl BondVocabulary {
    /// The AIDS-screen-like bond distribution (single-bond dominated;
    /// aromatic bonds concentrated in rings).
    pub fn aids_like() -> Self {
        BondVocabulary {
            names: vec!["single", "double", "triple", "aromatic"],
            chain_frequencies: vec![0.86, 0.12, 0.02, 0.0],
            ring_frequencies: vec![0.47, 0.08, 0.0, 0.45],
            lengths: vec![1.54, 1.34, 1.20, 1.39],
        }
    }

    /// Number of bond kinds.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The label of a bond name, if known.
    pub fn label_of(&self, name: &str) -> Option<Label> {
        self.names.iter().position(|s| s.eq_ignore_ascii_case(name)).map(|i| Label(i as u32))
    }

    /// The bond name of a label (`"?"` if out of range).
    pub fn name_of(&self, label: Label) -> &'static str {
        self.names.get(label.index()).copied().unwrap_or("?")
    }

    /// Frequencies used for acyclic edges.
    pub fn chain_frequencies(&self) -> &[f64] {
        &self.chain_frequencies
    }

    /// Frequencies used for ring edges.
    pub fn ring_frequencies(&self) -> &[f64] {
        &self.ring_frequencies
    }

    /// Typical length of a bond label in Å (0 if out of range).
    pub fn length_of(&self, label: Label) -> f64 {
        self.lengths.get(label.index()).copied().unwrap_or(0.0)
    }

    /// Label for an SDF/MOL numeric bond type (1, 2, 3, 4 = aromatic).
    pub fn label_of_mol_type(&self, mol_type: u32) -> Option<Label> {
        match mol_type {
            1..=4 => Some(Label(mol_type - 1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_vocabulary_is_carbon_dominated() {
        let v = AtomVocabulary::aids_like();
        assert_eq!(v.label_of("C"), Some(Label(0)));
        assert_eq!(v.symbol_of(Label(0)), "C");
        assert!(v.frequencies()[0] > 0.7);
        let total: f64 = v.frequencies().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "frequencies must sum to 1, got {total}");
        assert_eq!(v.frequencies().len(), v.len());
    }

    #[test]
    fn atom_lookup_is_case_insensitive_and_total() {
        let v = AtomVocabulary::aids_like();
        assert_eq!(v.label_of("cl"), v.label_of("Cl"));
        assert_eq!(v.label_of("Xx"), None);
        assert_eq!(v.symbol_of(Label(99)), "?");
        assert!(v.mass_of(Label(0)) > 11.0);
        assert_eq!(v.mass_of(Label(99)), 0.0);
    }

    #[test]
    fn bond_vocabulary_is_single_dominated() {
        let v = BondVocabulary::aids_like();
        assert!(v.chain_frequencies()[0] > 0.5);
        for freqs in [v.chain_frequencies(), v.ring_frequencies()] {
            let total: f64 = freqs.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bond_mol_types_map_to_labels() {
        let v = BondVocabulary::aids_like();
        assert_eq!(v.label_of_mol_type(1), v.label_of("single"));
        assert_eq!(v.label_of_mol_type(4), v.label_of("aromatic"));
        assert_eq!(v.label_of_mol_type(0), None);
        assert_eq!(v.label_of_mol_type(9), None);
    }

    #[test]
    fn bond_lengths_are_chemically_ordered() {
        let v = BondVocabulary::aids_like();
        let single = v.length_of(v.label_of("single").unwrap());
        let double = v.length_of(v.label_of("double").unwrap());
        let triple = v.length_of(v.label_of("triple").unwrap());
        assert!(single > double && double > triple);
    }
}
