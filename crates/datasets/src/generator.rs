//! Synthetic molecule generator.
//!
//! Builds molecule-like labeled graphs whose size and label statistics
//! match the AIDS antiviral screen sample used by the paper: mean ≈ 25
//! vertices / ≈ 27 edges (≈ 3 rings per molecule), a heavy tail past 200
//! vertices, carbon-dominated atoms, single-bond-dominated bonds with
//! aromatic bonds concentrated in rings.
//!
//! Construction is motif-based: starting from a ring or a short chain,
//! the generator repeatedly attaches fused rings, spiro rings, chains
//! and branches until the drawn size budget is reached, then assigns
//! labels (and, optionally, weights for the linear-distance
//! experiments). Determinism: a database is fully determined by its
//! seed.

use pis_graph::algo::bridges;
use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chemistry::{AtomVocabulary, BondVocabulary};

/// Configuration of the synthetic molecule generator.
#[derive(Clone, Debug)]
pub struct MoleculeConfig {
    /// Mean vertex count of the log-normal size distribution.
    pub mean_vertices: f64,
    /// Log-normal spread (σ of the underlying normal).
    pub size_spread: f64,
    /// Probability of drawing a macro-molecule (150–220 vertices),
    /// reproducing the screen's heavy tail (max 214 vertices).
    pub macro_probability: f64,
    /// Probability that a growth step attaches a ring (vs a chain);
    /// 0.36 calibrates to ≈ 3 rings per 25-vertex molecule, giving the
    /// paper's E ≈ V + 2 relation.
    pub ring_fraction: f64,
    /// Minimum vertex count of any generated molecule.
    pub min_vertices: usize,
    /// Also assign numeric weights (atomic masses / bond lengths with
    /// jitter) for linear-distance experiments.
    pub weighted: bool,
    /// Atom vocabulary.
    pub atoms: AtomVocabulary,
    /// Bond vocabulary.
    pub bonds: BondVocabulary,
}

impl Default for MoleculeConfig {
    fn default() -> Self {
        MoleculeConfig {
            mean_vertices: 25.0,
            size_spread: 0.42,
            macro_probability: 0.001,
            ring_fraction: 0.36,
            min_vertices: 5,
            weighted: false,
            atoms: AtomVocabulary::default(),
            bonds: BondVocabulary::default(),
        }
    }
}

/// Deterministic molecule-like graph generator.
#[derive(Clone, Debug, Default)]
pub struct MoleculeGenerator {
    config: MoleculeConfig,
}

impl MoleculeGenerator {
    /// A generator with the given configuration.
    pub fn new(config: MoleculeConfig) -> Self {
        MoleculeGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &MoleculeConfig {
        &self.config
    }

    /// Generates one molecule.
    pub fn generate(&self, rng: &mut impl Rng) -> LabeledGraph {
        let target = self.draw_size(rng);
        let skeleton = self.grow_skeleton(target, rng);
        self.assign_attributes(skeleton, rng)
    }

    /// Generates a database of `n` molecules from a seed.
    pub fn database(&self, n: usize, seed: u64) -> Vec<LabeledGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.generate(&mut rng)).collect()
    }

    fn draw_size(&self, rng: &mut impl Rng) -> usize {
        if rng.random::<f64>() < self.config.macro_probability {
            return rng.random_range(150..=220);
        }
        let sigma = self.config.size_spread;
        let mu = self.config.mean_vertices.ln() - sigma * sigma / 2.0;
        let n = (mu + sigma * standard_normal(rng)).exp().round() as usize;
        n.clamp(self.config.min_vertices, 250)
    }

    /// Grows an unlabeled skeleton of roughly `target` vertices.
    fn grow_skeleton(&self, target: usize, rng: &mut impl Rng) -> LabeledGraph {
        let mut b = GraphBuilder::with_capacity(target + 8, target + 12);
        let blank_v = VertexAttr::default();
        let blank_e = EdgeAttr::default();

        // Seed motif: usually a ring (most molecules are ring systems).
        if rng.random::<f64>() < 0.8 {
            let k = ring_size(rng);
            let vs = b.add_vertices(k, blank_v);
            for i in 0..k {
                b.add_edge(vs[i], vs[(i + 1) % k], blank_e).expect("fresh ring is simple");
            }
        } else {
            let vs = b.add_vertices(4, blank_v);
            for w in vs.windows(2) {
                b.add_edge(w[0], w[1], blank_e).expect("fresh chain is simple");
            }
        }

        while b.vertex_count() < target {
            if rng.random::<f64>() < self.config.ring_fraction {
                self.attach_ring(&mut b, rng);
            } else {
                self.attach_chain(&mut b, rng);
            }
        }
        b.build()
    }

    /// Attaches a ring, fused on an existing edge (sharing two vertices)
    /// or spiro at a vertex (sharing one).
    fn attach_ring(&self, b: &mut GraphBuilder, rng: &mut impl Rng) {
        let k = ring_size(rng);
        let blank_v = VertexAttr::default();
        let blank_e = EdgeAttr::default();
        let fused = rng.random::<f64>() < 0.6 && b.edge_count() > 0;
        if fused {
            // Pick a random existing edge (u, v); bridge it with k-2 new
            // vertices, closing a k-ring.
            let e = b.edges()[rng.random_range(0..b.edge_count())];
            let mut prev = e.source;
            for i in 0..k - 2 {
                let w = b.add_vertex(blank_v);
                let from = if i == 0 { e.source } else { prev };
                b.add_edge(from, w, blank_e).expect("new vertex has no edges yet");
                prev = w;
            }
            // Closing edge to the other endpoint; a parallel path may
            // already exist only via new vertices, so this cannot be a
            // duplicate.
            b.add_edge(prev, e.target, blank_e).expect("closure touches a fresh vertex");
        } else {
            let anchor = VertexId(rng.random_range(0..b.vertex_count() as u32));
            let mut prev = anchor;
            let mut first_new = None;
            for _ in 0..k - 1 {
                let w = b.add_vertex(blank_v);
                first_new.get_or_insert(w);
                b.add_edge(prev, w, blank_e).expect("new vertex has no edges yet");
                prev = w;
            }
            b.add_edge(prev, anchor, blank_e).expect("ring closure touches a fresh vertex");
        }
    }

    /// Attaches a chain of 1–3 vertices at a random anchor.
    fn attach_chain(&self, b: &mut GraphBuilder, rng: &mut impl Rng) {
        let len = 1 + rng.random_range(0..3);
        let mut prev = VertexId(rng.random_range(0..b.vertex_count() as u32));
        for _ in 0..len {
            let w = b.add_vertex(VertexAttr::default());
            b.add_edge(prev, w, EdgeAttr::default()).expect("new vertex has no edges yet");
            prev = w;
        }
    }

    /// Assigns atom/bond labels (and weights when configured) to a
    /// skeleton.
    fn assign_attributes(&self, skeleton: LabeledGraph, rng: &mut impl Rng) -> LabeledGraph {
        let bridge_flags = bridges(&skeleton);
        let mut b = GraphBuilder::with_capacity(skeleton.vertex_count(), skeleton.edge_count());
        for _ in skeleton.vertex_ids() {
            let label = Label(weighted_choice(self.config.atoms.frequencies(), rng) as u32);
            let weight = if self.config.weighted {
                self.config.atoms.mass_of(label) * (1.0 + 0.01 * standard_normal(rng))
            } else {
                0.0
            };
            b.add_vertex(VertexAttr { label, weight });
        }
        for (i, e) in skeleton.edges().iter().enumerate() {
            let freqs = if bridge_flags[i] {
                self.config.bonds.chain_frequencies()
            } else {
                self.config.bonds.ring_frequencies()
            };
            let label = Label(weighted_choice(freqs, rng) as u32);
            let weight = if self.config.weighted {
                self.config.bonds.length_of(label) + 0.03 * standard_normal(rng)
            } else {
                0.0
            };
            b.add_edge(e.source, e.target, EdgeAttr { label, weight }).expect("skeleton is simple");
        }
        b.build()
    }
}

/// Ring sizes: mostly 6 (benzene-like), sometimes 5, rarely 7.
fn ring_size(rng: &mut impl Rng) -> usize {
    let x = rng.random::<f64>();
    if x < 0.68 {
        6
    } else if x < 0.95 {
        5
    } else {
        7
    }
}

/// Samples an index proportionally to `weights` (need not sum to 1).
fn weighted_choice(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A standard normal draw via Box–Muller (avoids a rand_distr
/// dependency).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::algo::cyclomatic_number;

    #[test]
    fn databases_are_deterministic() {
        let g = MoleculeGenerator::default();
        let a = g.database(20, 7);
        let b = g.database(20, 7);
        assert_eq!(a, b);
        let c = g.database(20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn molecules_are_connected_and_simple() {
        let g = MoleculeGenerator::default();
        for m in g.database(50, 42) {
            assert!(m.is_connected());
            assert!(m.vertex_count() >= 5);
        }
    }

    #[test]
    fn size_statistics_match_the_paper() {
        let g = MoleculeGenerator::default();
        let db = g.database(2000, 123);
        let avg_v: f64 = db.iter().map(|m| m.vertex_count() as f64).sum::<f64>() / db.len() as f64;
        let avg_e: f64 = db.iter().map(|m| m.edge_count() as f64).sum::<f64>() / db.len() as f64;
        // Paper: ~25 vertices, ~27 edges on average.
        assert!((20.0..30.0).contains(&avg_v), "avg vertices {avg_v}");
        assert!((21.0..33.0).contains(&avg_e), "avg edges {avg_e}");
        assert!(avg_e > avg_v, "molecules must carry rings on average");
        let avg_rings: f64 =
            db.iter().map(|m| cyclomatic_number(m) as f64).sum::<f64>() / db.len() as f64;
        assert!((1.5..4.5).contains(&avg_rings), "avg rings {avg_rings}");
    }

    #[test]
    fn labels_are_carbon_and_single_bond_dominated() {
        let g = MoleculeGenerator::default();
        let db = g.database(300, 9);
        let mut carbon = 0usize;
        let mut vertices = 0usize;
        let mut single = 0usize;
        let mut edges = 0usize;
        for m in &db {
            for v in m.vertex_ids() {
                vertices += 1;
                if m.vertex(v).label == Label(0) {
                    carbon += 1;
                }
            }
            for e in m.edges() {
                edges += 1;
                if e.attr.label == Label(0) {
                    single += 1;
                }
            }
        }
        assert!(carbon as f64 / vertices as f64 > 0.6);
        assert!(single as f64 / edges as f64 > 0.5);
    }

    #[test]
    fn weighted_config_assigns_weights() {
        let cfg = MoleculeConfig { weighted: true, ..MoleculeConfig::default() };
        let g = MoleculeGenerator::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let m = g.generate(&mut rng);
        assert!(m.vertex_ids().all(|v| m.vertex(v).weight > 0.0));
        assert!(m.edges().iter().all(|e| e.attr.weight > 0.5));
    }

    #[test]
    fn unweighted_config_leaves_weights_zero() {
        let g = MoleculeGenerator::default();
        let mut rng = StdRng::seed_from_u64(5);
        let m = g.generate(&mut rng);
        assert_eq!(m.total_weight(), 0.0);
    }

    #[test]
    fn macro_molecules_appear_with_forced_probability() {
        let cfg = MoleculeConfig { macro_probability: 1.0, ..MoleculeConfig::default() };
        let g = MoleculeGenerator::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let m = g.generate(&mut rng);
        assert!(m.vertex_count() >= 150);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[weighted_choice(&[0.8, 0.2, 0.0], &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert_eq!(counts[2], 0);
        assert!(counts[0] + counts[1] == 3000);
    }
}
