//! Evaluation datasets for PIS.
//!
//! The paper evaluates on 10 000 molecules sampled from the NCI/NIH AIDS
//! antiviral screen (avg 25 vertices / 27 edges, max 214/217, mostly
//! carbon atoms and carbon–carbon bonds). That file is not
//! redistributable here, so this crate provides:
//!
//! * [`generator`] — a synthetic molecule generator calibrated to the
//!   same size and label statistics (the substitution is documented in
//!   `DESIGN.md` §4.1); the difficulty driver the paper relies on — heavy
//!   structural redundancy with low label entropy — is preserved.
//! * [`sdf`] — a minimal MOL/SDF V2000 parser so a real screen file can
//!   be dropped in when available.
//! * [`query`] — query-set sampling: connected `m`-edge subgraphs drawn
//!   from database graphs, exactly how the paper builds `Q16`/`Q24`.
//! * [`stats`] — dataset statistics used to audit the calibration
//!   (experiment E0 in `DESIGN.md` §5).
//! * [`random`] — general Erdős–Rényi-style labeled graphs, used by the
//!   test suite to exercise the system away from the molecular
//!   distribution.

#![forbid(unsafe_code)]

pub mod chemistry;
pub mod generator;
pub mod query;
pub mod random;
pub mod sdf;
pub mod stats;

pub use chemistry::{AtomVocabulary, BondVocabulary};
pub use generator::{MoleculeConfig, MoleculeGenerator};
pub use query::sample_query_set;
pub use random::{random_database, RandomGraphConfig};
pub use stats::DatasetStats;
