//! Query-set sampling.
//!
//! The paper samples query graphs "directly from the database" and
//! groups them by edge count: `Qm` is a set of connected `m`-edge query
//! graphs (the evaluation uses `Q16` and `Q24`). This module reproduces
//! that protocol: pick a database graph with at least `m` edges and
//! extract a random connected `m`-edge subgraph by random edge growth.

use pis_graph::{EdgeId, LabeledGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extracts one random connected subgraph with exactly `m` edges.
///
/// Returns `None` if the graph has fewer than `m` edges (growth inside a
/// connected graph can otherwise always reach `m`).
pub fn sample_query(g: &LabeledGraph, m: usize, rng: &mut impl Rng) -> Option<LabeledGraph> {
    if g.edge_count() < m || m == 0 {
        return None;
    }
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(m);
    let mut in_sub = vec![false; g.edge_count()];
    let mut frontier: Vec<EdgeId> = Vec::new();

    let start = EdgeId(rng.random_range(0..g.edge_count() as u32));
    push_edge(g, start, &mut chosen, &mut in_sub, &mut frontier);
    while chosen.len() < m {
        if frontier.is_empty() {
            // The component of the start edge is exhausted; restart from
            // a fresh edge (can only happen in disconnected graphs).
            let remaining: Vec<EdgeId> = g.edge_ids().filter(|e| !in_sub[e.index()]).collect();
            if remaining.is_empty() {
                return None;
            }
            // A restart would produce a disconnected query; reject.
            return None;
        }
        let pick = rng.random_range(0..frontier.len());
        let e = frontier.swap_remove(pick);
        if in_sub[e.index()] {
            continue;
        }
        push_edge(g, e, &mut chosen, &mut in_sub, &mut frontier);
    }
    let (sub, _) = g.edge_subgraph(&chosen);
    debug_assert!(sub.is_connected());
    Some(sub)
}

fn push_edge(
    g: &LabeledGraph,
    e: EdgeId,
    chosen: &mut Vec<EdgeId>,
    in_sub: &mut [bool],
    frontier: &mut Vec<EdgeId>,
) {
    chosen.push(e);
    in_sub[e.index()] = true;
    let edge = g.edge(e);
    for v in [edge.source, edge.target] {
        for &(_, ne) in g.neighbors(v) {
            if !in_sub[ne.index()] {
                frontier.push(ne);
            }
        }
    }
}

/// Samples `count` connected `m`-edge queries from random database
/// graphs (the paper's `Qm` sets). Deterministic in `seed`.
///
/// # Panics
/// Panics if no database graph has at least `m` edges.
pub fn sample_query_set(
    database: &[LabeledGraph],
    m: usize,
    count: usize,
    seed: u64,
) -> Vec<LabeledGraph> {
    let eligible: Vec<&LabeledGraph> = database.iter().filter(|g| g.edge_count() >= m).collect();
    assert!(
        !eligible.is_empty(),
        "no database graph has >= {m} edges; cannot build query set Q{m}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    while queries.len() < count {
        let g = eligible[rng.random_range(0..eligible.len())];
        if let Some(q) = sample_query(g, m, &mut rng) {
            queries.push(q);
        }
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MoleculeGenerator;
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::iso::{is_subgraph, IsoConfig};
    use pis_graph::Label;

    #[test]
    fn sampled_query_is_connected_with_exact_size() {
        let db = MoleculeGenerator::default().database(30, 11);
        let queries = sample_query_set(&db, 8, 10, 3);
        assert_eq!(queries.len(), 10);
        for q in &queries {
            assert_eq!(q.edge_count(), 8);
            assert!(q.is_connected());
        }
    }

    #[test]
    fn query_is_labeled_subgraph_of_some_database_graph() {
        let db = MoleculeGenerator::default().database(20, 4);
        let queries = sample_query_set(&db, 6, 5, 5);
        for q in &queries {
            assert!(
                db.iter().any(|g| is_subgraph(q, g, IsoConfig::LABELED)),
                "query must embed label-preserving into its source graph"
            );
        }
    }

    #[test]
    fn sampling_more_edges_than_available_fails() {
        let g = path_graph(4, Label(0), Label(0)); // 3 edges
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_query(&g, 5, &mut rng).is_none());
        assert!(sample_query(&g, 0, &mut rng).is_none());
    }

    #[test]
    fn full_graph_can_be_sampled() {
        let g = cycle_graph(5, Label(0), Label(0));
        let mut rng = StdRng::seed_from_u64(0);
        let q = sample_query(&g, 5, &mut rng).unwrap();
        assert_eq!(q.edge_count(), 5);
        assert!(is_subgraph(&q, &g, IsoConfig::LABELED));
    }

    #[test]
    fn deterministic_in_seed() {
        let db = MoleculeGenerator::default().database(15, 2);
        let a = sample_query_set(&db, 6, 4, 99);
        let b = sample_query_set(&db, 6, 4, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot build query set")]
    fn empty_eligible_set_panics() {
        let db = vec![path_graph(3, Label(0), Label(0))];
        let _ = sample_query_set(&db, 100, 1, 0);
    }
}
