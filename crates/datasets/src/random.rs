//! General random labeled graphs (Erdős–Rényi-style).
//!
//! The paper evaluates on chemical data, but nothing in PIS is
//! chemistry-specific. This generator produces arbitrary connected
//! labeled graphs with controllable density and label entropy, used by
//! the test suite to check the system off the molecular distribution
//! (high-degree hubs, dense cores, uniform labels — the regimes where
//! molecule-tuned heuristics could hide bugs).

use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the random graph generator.
#[derive(Clone, Debug)]
pub struct RandomGraphConfig {
    /// Minimum vertex count (inclusive).
    pub min_vertices: usize,
    /// Maximum vertex count (inclusive).
    pub max_vertices: usize,
    /// Probability of each extra edge beyond the connecting spanning
    /// tree.
    pub edge_probability: f64,
    /// Number of distinct vertex labels (uniform).
    pub vertex_labels: u32,
    /// Number of distinct edge labels (uniform).
    pub edge_labels: u32,
    /// Assign uniform random weights in `[0, 1)` as well.
    pub weighted: bool,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            min_vertices: 4,
            max_vertices: 20,
            edge_probability: 0.1,
            vertex_labels: 4,
            edge_labels: 3,
            weighted: false,
        }
    }
}

/// Generates one connected random graph: a uniform random spanning tree
/// plus independent extra edges.
pub fn random_graph(config: &RandomGraphConfig, rng: &mut impl Rng) -> LabeledGraph {
    assert!(
        config.min_vertices >= 1 && config.min_vertices <= config.max_vertices,
        "invalid vertex range"
    );
    assert!(config.vertex_labels >= 1 && config.edge_labels >= 1, "need at least one label");
    let n = rng.random_range(config.min_vertices..=config.max_vertices);
    let mut b = GraphBuilder::with_capacity(n, n * 2);
    for _ in 0..n {
        let label = Label(rng.random_range(0..config.vertex_labels));
        let weight = if config.weighted { rng.random::<f64>() } else { 0.0 };
        b.add_vertex(VertexAttr { label, weight });
    }
    fn edge_attr<R: Rng>(config: &RandomGraphConfig, rng: &mut R) -> EdgeAttr {
        EdgeAttr {
            label: Label(rng.random_range(0..config.edge_labels)),
            weight: if config.weighted { rng.random::<f64>() } else { 0.0 },
        }
    }
    // Random spanning tree: attach vertex i to a uniform earlier vertex.
    for i in 1..n {
        let parent = rng.random_range(0..i);
        b.add_edge(VertexId(parent as u32), VertexId(i as u32), edge_attr(config, rng))
            .expect("tree edges are fresh");
    }
    // Extra edges.
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < config.edge_probability {
                // Ignore duplicates of tree edges.
                let _ = b.add_edge(VertexId(u as u32), VertexId(v as u32), edge_attr(config, rng));
            }
        }
    }
    b.build()
}

/// Generates a database of connected random graphs, deterministic in the
/// seed.
pub fn random_database(config: &RandomGraphConfig, count: usize, seed: u64) -> Vec<LabeledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_graph(config, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_are_connected_and_in_range() {
        let config = RandomGraphConfig::default();
        for g in random_database(&config, 50, 3) {
            assert!(g.is_connected());
            assert!(g.vertex_count() >= config.min_vertices);
            assert!(g.vertex_count() <= config.max_vertices);
            assert!(g.edge_count() >= g.vertex_count() - 1);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let config = RandomGraphConfig::default();
        assert_eq!(random_database(&config, 10, 9), random_database(&config, 10, 9));
        assert_ne!(random_database(&config, 10, 9), random_database(&config, 10, 10));
    }

    #[test]
    fn labels_stay_in_vocabulary() {
        let config =
            RandomGraphConfig { vertex_labels: 2, edge_labels: 1, ..RandomGraphConfig::default() };
        for g in random_database(&config, 20, 1) {
            for v in g.vertex_ids() {
                assert!(g.vertex(v).label.0 < 2);
            }
            for e in g.edges() {
                assert_eq!(e.attr.label, Label(0));
            }
        }
    }

    #[test]
    fn weighted_config_fills_weights() {
        let config = RandomGraphConfig { weighted: true, ..RandomGraphConfig::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_graph(&config, &mut rng);
        assert!(g.edges().iter().all(|e| (0.0..1.0).contains(&e.attr.weight)));
    }

    #[test]
    fn density_knob_works() {
        let sparse = RandomGraphConfig {
            min_vertices: 12,
            max_vertices: 12,
            edge_probability: 0.0,
            ..RandomGraphConfig::default()
        };
        let dense = RandomGraphConfig { edge_probability: 0.9, ..sparse.clone() };
        let gs = random_database(&sparse, 10, 7);
        let gd = random_database(&dense, 10, 7);
        let avg = |db: &[LabeledGraph]| {
            db.iter().map(LabeledGraph::edge_count).sum::<usize>() as f64 / db.len() as f64
        };
        assert_eq!(avg(&gs), 11.0); // pure trees
        assert!(avg(&gd) > 40.0);
    }

    #[test]
    #[should_panic(expected = "invalid vertex range")]
    fn bad_range_rejected() {
        let config =
            RandomGraphConfig { min_vertices: 5, max_vertices: 3, ..RandomGraphConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_graph(&config, &mut rng);
    }
}
