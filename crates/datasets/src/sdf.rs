//! Minimal MOL/SDF V2000 reader.
//!
//! The paper's dataset is distributed as an SD file
//! (`AIDO99SD.BIN` from the NCI DTP). When a real file is available this
//! loader turns it into `LabeledGraph`s with the crate's atom/bond
//! vocabularies; otherwise the synthetic generator stands in (see
//! `DESIGN.md` §4.2). Only the fields PIS needs are read: element symbols
//! and bond types. Records that cannot be parsed are skipped and
//! reported, matching how chemistry toolkits treat dirty screen data.

use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr, VertexId};

use crate::chemistry::{AtomVocabulary, BondVocabulary};

/// Result of loading an SD file.
#[derive(Debug, Default)]
pub struct SdfLoad {
    /// Successfully parsed molecules.
    pub molecules: Vec<LabeledGraph>,
    /// Number of records skipped (unparseable or non-simple).
    pub skipped: usize,
}

/// Parses the text of an SD file (`$$$$`-separated MOL V2000 records).
///
/// Atom labels use `atoms`' vocabulary with unknown elements mapped to
/// one label past the vocabulary; bond labels use MOL types 1–4.
pub fn parse_sdf(text: &str, atoms: &AtomVocabulary, bonds: &BondVocabulary) -> SdfLoad {
    let mut load = SdfLoad::default();
    for record in text.split("$$$$") {
        let record = record.trim_matches(['\n', '\r', ' ']);
        if record.is_empty() {
            continue;
        }
        match parse_mol_record(record, atoms, bonds) {
            Some(g) => load.molecules.push(g),
            None => load.skipped += 1,
        }
    }
    load
}

fn parse_mol_record(
    record: &str,
    atoms: &AtomVocabulary,
    bonds: &BondVocabulary,
) -> Option<LabeledGraph> {
    let lines: Vec<&str> = record.lines().collect();
    // Three header lines precede the counts line.
    let counts = lines.get(3)?;
    let natoms: usize = fixed_field(counts, 0, 3)?.parse().ok()?;
    let nbonds: usize = fixed_field(counts, 3, 6)?.parse().ok()?;
    let atom_block = lines.get(4..4 + natoms)?;
    let bond_block = lines.get(4 + natoms..4 + natoms + nbonds)?;

    let unknown = Label(atoms.len() as u32);
    let mut b = GraphBuilder::with_capacity(natoms, nbonds);
    for line in atom_block {
        // Atom line: x y z symbol …; the symbol is the 4th whitespace
        // field (column-exact parsing is unnecessary for the symbol).
        let symbol = line.split_whitespace().nth(3)?;
        let label = atoms.label_of(symbol).unwrap_or(unknown);
        b.add_vertex(VertexAttr::labeled(label));
    }
    for line in bond_block {
        // Bond line: aaabbbttt… in fixed 3-char columns (atom indices
        // are 1-based). Fall back to whitespace fields for loose files.
        let (u, v, t) = parse_bond_line(line)?;
        let label = bonds.label_of_mol_type(t)?;
        if u == 0 || v == 0 || u > natoms || v > natoms {
            return None;
        }
        b.add_edge(VertexId(u as u32 - 1), VertexId(v as u32 - 1), EdgeAttr::labeled(label))
            .ok()?;
    }
    Some(b.build())
}

fn parse_bond_line(line: &str) -> Option<(usize, usize, u32)> {
    // Strict fixed-width first.
    if line.len() >= 9 {
        if let (Some(u), Some(v), Some(t)) = (
            fixed_field(line, 0, 3).and_then(|s| s.parse().ok()),
            fixed_field(line, 3, 6).and_then(|s| s.parse().ok()),
            fixed_field(line, 6, 9).and_then(|s| s.parse().ok()),
        ) {
            return Some((u, v, t));
        }
    }
    let mut it = line.split_whitespace();
    let u = it.next()?.parse().ok()?;
    let v = it.next()?.parse().ok()?;
    let t = it.next()?.parse().ok()?;
    Some((u, v, t))
}

fn fixed_field(line: &str, start: usize, end: usize) -> Option<&str> {
    let s = line.get(start..end.min(line.len()))?.trim();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written two-record SD file: ethanol-ish and a benzene ring.
    const SAMPLE: &str = "\
ethanol
  test

  3  2  0  0  0  0  0  0  0  0999 V2000
    0.0000    0.0000    0.0000 C   0  0
    1.0000    0.0000    0.0000 C   0  0
    2.0000    0.0000    0.0000 O   0  0
  1  2  1  0
  2  3  1  0
M  END
$$$$
benzene
  test

  6  6  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
  1  2  4  0
  2  3  4  0
  3  4  4  0
  4  5  4  0
  5  6  4  0
  6  1  4  0
M  END
$$$$
";

    #[test]
    fn parses_molecules() {
        let atoms = AtomVocabulary::default();
        let bonds = BondVocabulary::default();
        let load = parse_sdf(SAMPLE, &atoms, &bonds);
        assert_eq!(load.skipped, 0);
        assert_eq!(load.molecules.len(), 2);

        let ethanol = &load.molecules[0];
        assert_eq!(ethanol.vertex_count(), 3);
        assert_eq!(ethanol.edge_count(), 2);
        assert_eq!(ethanol.vertex(VertexId(2)).label, atoms.label_of("O").unwrap());
        assert_eq!(ethanol.edges()[0].attr.label, bonds.label_of("single").unwrap());

        let benzene = &load.molecules[1];
        assert_eq!(benzene.vertex_count(), 6);
        assert_eq!(benzene.edge_count(), 6);
        assert!(benzene
            .edges()
            .iter()
            .all(|e| e.attr.label == bonds.label_of("aromatic").unwrap()));
        assert!(benzene.is_connected());
    }

    #[test]
    fn unknown_elements_map_past_vocabulary() {
        let atoms = AtomVocabulary::default();
        let bonds = BondVocabulary::default();
        let text = SAMPLE.replace(" O ", " Zz");
        let load = parse_sdf(&text, &atoms, &bonds);
        assert_eq!(load.molecules.len(), 2);
        assert_eq!(load.molecules[0].vertex(VertexId(2)).label, Label(atoms.len() as u32));
    }

    #[test]
    fn corrupt_records_are_skipped_not_fatal() {
        let atoms = AtomVocabulary::default();
        let bonds = BondVocabulary::default();
        let text = format!("garbage\nnot a mol\n$$$$\n{SAMPLE}");
        let load = parse_sdf(&text, &atoms, &bonds);
        assert_eq!(load.skipped, 1);
        assert_eq!(load.molecules.len(), 2);
    }

    #[test]
    fn out_of_range_bond_endpoints_skip_record() {
        let atoms = AtomVocabulary::default();
        let bonds = BondVocabulary::default();
        let text = SAMPLE.replace("  1  2  1  0", "  1  9  1  0");
        let load = parse_sdf(&text, &atoms, &bonds);
        assert_eq!(load.skipped, 1);
        assert_eq!(load.molecules.len(), 1);
    }

    #[test]
    fn empty_input() {
        let load = parse_sdf("", &AtomVocabulary::default(), &BondVocabulary::default());
        assert!(load.molecules.is_empty());
        assert_eq!(load.skipped, 0);
    }
}
