//! Dataset statistics (experiment E0, `DESIGN.md` §5: the calibration
//! audit of the evaluation-setup paragraph).

use std::collections::BTreeMap;
use std::fmt;

use pis_graph::algo::cyclomatic_number;
use pis_graph::{Label, LabeledGraph};

use crate::chemistry::{AtomVocabulary, BondVocabulary};

/// Summary statistics of a graph database, matching the numbers the
/// paper reports for its AIDS-screen sample (average/maximum vertex and
/// edge counts, label make-up).
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of graphs.
    pub graphs: usize,
    /// Mean vertex count.
    pub avg_vertices: f64,
    /// Mean edge count.
    pub avg_edges: f64,
    /// Maximum vertex count.
    pub max_vertices: usize,
    /// Maximum edge count.
    pub max_edges: usize,
    /// Mean ring count (cyclomatic number).
    pub avg_rings: f64,
    /// Vertex-label histogram.
    pub vertex_labels: BTreeMap<Label, usize>,
    /// Edge-label histogram.
    pub edge_labels: BTreeMap<Label, usize>,
}

impl DatasetStats {
    /// Computes statistics over a database.
    pub fn compute(database: &[LabeledGraph]) -> Self {
        let mut stats = DatasetStats {
            graphs: database.len(),
            avg_vertices: 0.0,
            avg_edges: 0.0,
            max_vertices: 0,
            max_edges: 0,
            avg_rings: 0.0,
            vertex_labels: BTreeMap::new(),
            edge_labels: BTreeMap::new(),
        };
        if database.is_empty() {
            return stats;
        }
        let mut tv = 0usize;
        let mut te = 0usize;
        let mut tr = 0usize;
        for g in database {
            tv += g.vertex_count();
            te += g.edge_count();
            tr += cyclomatic_number(g);
            stats.max_vertices = stats.max_vertices.max(g.vertex_count());
            stats.max_edges = stats.max_edges.max(g.edge_count());
            for v in g.vertex_ids() {
                *stats.vertex_labels.entry(g.vertex(v).label).or_insert(0) += 1;
            }
            for e in g.edges() {
                *stats.edge_labels.entry(e.attr.label).or_insert(0) += 1;
            }
        }
        let n = database.len() as f64;
        stats.avg_vertices = tv as f64 / n;
        stats.avg_edges = te as f64 / n;
        stats.avg_rings = tr as f64 / n;
        stats
    }

    /// Fraction of vertices carrying the most common vertex label.
    pub fn dominant_vertex_label_fraction(&self) -> f64 {
        let total: usize = self.vertex_labels.values().sum();
        let max = self.vertex_labels.values().copied().max().unwrap_or(0);
        if total == 0 {
            0.0
        } else {
            max as f64 / total as f64
        }
    }

    /// Renders the histogram with chemical names for the report binary.
    pub fn render(&self, atoms: &AtomVocabulary, bonds: &BondVocabulary) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "graphs: {}\navg vertices: {:.1} (max {})\navg edges: {:.1} (max {})\navg rings: {:.2}\n",
            self.graphs, self.avg_vertices, self.max_vertices, self.avg_edges, self.max_edges, self.avg_rings
        ));
        let tv: usize = self.vertex_labels.values().sum();
        out.push_str("atoms:\n");
        for (label, count) in &self.vertex_labels {
            out.push_str(&format!(
                "  {:<3} {:>7}  ({:.1}%)\n",
                atoms.symbol_of(*label),
                count,
                100.0 * *count as f64 / tv.max(1) as f64
            ));
        }
        let te: usize = self.edge_labels.values().sum();
        out.push_str("bonds:\n");
        for (label, count) in &self.edge_labels {
            out.push_str(&format!(
                "  {:<9} {:>7}  ({:.1}%)\n",
                bonds.name_of(*label),
                count,
                100.0 * *count as f64 / te.max(1) as f64
            ));
        }
        out
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} graphs, avg {:.1}V/{:.1}E, max {}V/{}E, {:.2} rings/graph",
            self.graphs,
            self.avg_vertices,
            self.avg_edges,
            self.max_vertices,
            self.max_edges,
            self.avg_rings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::MoleculeGenerator;
    use pis_graph::graph::{cycle_graph, path_graph};

    #[test]
    fn stats_of_known_graphs() {
        let db = vec![path_graph(3, Label(0), Label(1)), cycle_graph(5, Label(2), Label(1))];
        let s = DatasetStats::compute(&db);
        assert_eq!(s.graphs, 2);
        assert_eq!(s.avg_vertices, 4.0);
        assert_eq!(s.avg_edges, 3.5);
        assert_eq!(s.max_vertices, 5);
        assert_eq!(s.max_edges, 5);
        assert_eq!(s.avg_rings, 0.5);
        assert_eq!(s.vertex_labels[&Label(0)], 3);
        assert_eq!(s.vertex_labels[&Label(2)], 5);
        assert_eq!(s.edge_labels[&Label(1)], 7);
    }

    #[test]
    fn empty_database() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.graphs, 0);
        assert_eq!(s.dominant_vertex_label_fraction(), 0.0);
    }

    #[test]
    fn synthetic_database_is_carbon_dominated() {
        let db = MoleculeGenerator::default().database(200, 1);
        let s = DatasetStats::compute(&db);
        assert!(s.dominant_vertex_label_fraction() > 0.6);
        assert!(s.avg_rings > 1.0);
    }

    #[test]
    fn render_names_labels() {
        let db = MoleculeGenerator::default().database(5, 1);
        let s = DatasetStats::compute(&db);
        let text = s.render(&AtomVocabulary::default(), &BondVocabulary::default());
        assert!(text.contains("C"));
        assert!(text.contains("single"));
        assert!(text.contains("graphs: 5"));
    }

    #[test]
    fn display_is_one_line() {
        let s = DatasetStats::compute(&[path_graph(2, Label(0), Label(0))]);
        assert!(!s.to_string().contains('\n'));
    }
}
