//! srclint: run the repo's static-analysis rules and fail on any
//! unallowlisted finding.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pis-devtools --bin srclint [-- --root DIR] [--config FILE]
//! ```
//!
//! Exit status: 0 when clean, 1 on findings, 2 on config/IO errors.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use pis_devtools::config;
use pis_devtools::rules::{self, LintConfig};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("srclint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root_arg: Option<PathBuf> = None;
    let mut config_arg: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root_arg =
                    Some(PathBuf::from(args.next().ok_or("--root needs a directory argument")?));
            }
            "--config" => {
                config_arg =
                    Some(PathBuf::from(args.next().ok_or("--config needs a file argument")?));
            }
            "--help" | "-h" => {
                println!("usage: srclint [--root DIR] [--config FILE]");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    // Default root: walk up from the crate's own manifest dir (so the tool
    // works from any cwd under the workspace), falling back to the cwd.
    let root = match root_arg {
        Some(r) => r,
        None => {
            let start = env::var_os("CARGO_MANIFEST_DIR")
                .map_or_else(|| env::current_dir().unwrap_or_default(), PathBuf::from);
            pis_devtools::find_workspace_root(&start)
                .ok_or("could not locate workspace root (no srclint.toml found); pass --root")?
        }
    };
    let config_path = config_arg.unwrap_or_else(|| root.join("srclint.toml"));

    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("{}: {e}", config_path.display()))?;
    let table = config::parse(&text).map_err(|e| e.to_string())?;
    let cfg = LintConfig::from_table(&table)?;

    let report = rules::run(&root, &cfg).map_err(|e| e.to_string())?;
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "srclint: {} finding(s), {} allowlisted, root {}",
        report.findings.len(),
        report.allowlisted,
        root.display()
    );
    if report.findings.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}
