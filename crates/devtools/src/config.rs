//! Minimal TOML-subset parser for `srclint.toml`.
//!
//! The build environment has no registry access, so srclint parses its own
//! config with a small hand-rolled reader. The supported subset is exactly
//! what the committed config uses:
//!
//! - `[section]` and dotted `[section.sub]` table headers
//! - `[[section]]` array-of-tables headers (the allowlist)
//! - `key = "string"` (with `\"`, `\\`, `\n`, `\t` escapes)
//! - `key = [ "a", "b" ]` string arrays, which may span multiple lines
//! - `#` comments and blank lines
//!
//! Anything outside this subset is a hard error: a lint driver must never
//! silently ignore config it does not understand.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed config value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    Arr(Vec<String>),
    /// A nested table (`[a.b]` creates `Table` under `a`).
    Table(Table),
    /// An array of tables (`[[allow]]`).
    TableArr(Vec<Table>),
}

/// An ordered key → value map.
pub type Table = BTreeMap<String, Value>;

/// A config parse error with 1-based line attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number in the config file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srclint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

/// Parse the TOML subset into a root table.
pub fn parse(text: &str) -> Result<Table, ConfigError> {
    let mut root = Table::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    // Whether `current` addresses the last element of an array-of-tables.
    let mut current_is_arr = false;

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[header]]"))?
                .trim();
            if name.is_empty() || name.contains('.') {
                return Err(err(lineno, "array-of-tables name must be a bare key"));
            }
            let entry = root.entry(name.to_string()).or_insert_with(|| Value::TableArr(Vec::new()));
            match entry {
                Value::TableArr(v) => v.push(Table::new()),
                _ => return Err(err(lineno, format!("`{name}` is not an array of tables"))),
            }
            current = vec![name.to_string()];
            current_is_arr = true;
        } else if let Some(rest) = line.strip_prefix('[') {
            let name =
                rest.strip_suffix(']').ok_or_else(|| err(lineno, "unterminated [header]"))?.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty table name"));
            }
            current = name.split('.').map(|s| s.trim().to_string()).collect();
            if current.iter().any(String::is_empty) {
                return Err(err(lineno, "empty path segment in table name"));
            }
            current_is_arr = false;
            // Materialise the table path so empty sections still exist.
            let _ = navigate(&mut root, &current, false, lineno)?;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            if key.is_empty() {
                return Err(err(lineno, "missing key before `=`"));
            }
            let mut rhs = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until the bracket closes.
            if rhs.starts_with('[') && !balanced_array(&rhs) {
                for (_, cont) in lines.by_ref() {
                    rhs.push(' ');
                    rhs.push_str(strip_comment(cont).trim());
                    if balanced_array(&rhs) {
                        break;
                    }
                }
                if !balanced_array(&rhs) {
                    return Err(err(lineno, "unterminated array"));
                }
            }
            let value = parse_value(&rhs, lineno)?;
            let table = navigate(&mut root, &current, current_is_arr, lineno)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(lineno, format!("unsupported syntax: `{line}`")));
        }
    }
    Ok(root)
}

/// Walk (and create) the table at `path`; when `into_arr`, descend into the
/// last element of the array-of-tables named by the single path segment.
fn navigate<'a>(
    root: &'a mut Table,
    path: &[String],
    into_arr: bool,
    lineno: usize,
) -> Result<&'a mut Table, ConfigError> {
    if into_arr {
        let name = path.first().ok_or_else(|| err(lineno, "no open table"))?;
        return match root.get_mut(name) {
            Some(Value::TableArr(v)) => match v.last_mut() {
                Some(t) => Ok(t),
                None => Err(err(lineno, "empty array of tables")),
            },
            _ => Err(err(lineno, format!("`{name}` is not an array of tables"))),
        };
    }
    let mut cur = root;
    for seg in path {
        let entry = cur.entry(seg.clone()).or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            _ => return Err(err(lineno, format!("`{seg}` is not a table"))),
        };
    }
    Ok(cur)
}

/// Remove a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Whether an array RHS has balanced quotes and closes its `[`.
fn balanced_array(rhs: &str) -> bool {
    let b = rhs.as_bytes();
    let mut in_str = false;
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    !in_str && depth == 0
}

fn parse_value(rhs: &str, lineno: usize) -> Result<Value, ConfigError> {
    let rhs = rhs.trim();
    if let Some(inner) = rhs.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest == "," {
                break; // trailing comma
            }
            let (s, tail) = parse_string(rest, lineno)?;
            items.push(s);
            rest = tail.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after.trim_start();
            } else if !rest.is_empty() {
                return Err(err(lineno, "expected `,` between array items"));
            }
        }
        return Ok(Value::Arr(items));
    }
    if rhs.starts_with('"') {
        let (s, tail) = parse_string(rhs, lineno)?;
        if !tail.trim().is_empty() {
            return Err(err(lineno, "trailing characters after string"));
        }
        return Ok(Value::Str(s));
    }
    Err(err(lineno, format!("unsupported value `{rhs}` (only strings and string arrays)")))
}

/// Parse one leading quoted string, returning (string, remaining text).
fn parse_string(input: &str, lineno: usize) -> Result<(String, &str), ConfigError> {
    let rest = input
        .strip_prefix('"')
        .ok_or_else(|| err(lineno, format!("expected string, found `{input}`")))?;
    let b = rest.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                let esc = b.get(i + 1).ok_or_else(|| err(lineno, "dangling escape in string"))?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'n' => '\n',
                    b't' => '\t',
                    other => {
                        return Err(err(
                            lineno,
                            format!("unsupported escape `\\{}`", *other as char),
                        ))
                    }
                });
                i += 2;
            }
            b'"' => return Ok((out, &rest[i + 1..])),
            _ => {
                // Copy one full UTF-8 character.
                let ch_len = match b[i] {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                out.push_str(&rest[i..(i + ch_len).min(rest.len())]);
                i += ch_len;
            }
        }
    }
    Err(err(lineno, "unterminated string"))
}

/// Convenience accessors over a parsed [`Table`].
pub trait TableExt {
    /// Fetch a string-array value, or `None` if absent.
    fn arr(&self, key: &str) -> Option<&[String]>;
    /// Fetch a string value, or `None` if absent.
    fn str_val(&self, key: &str) -> Option<&str>;
    /// Fetch a nested table, or `None` if absent.
    fn table(&self, key: &str) -> Option<&Table>;
    /// Fetch an array of tables, or `None` if absent.
    fn table_arr(&self, key: &str) -> Option<&[Table]>;
}

impl TableExt for Table {
    fn arr(&self, key: &str) -> Option<&[String]> {
        match self.get(key) {
            Some(Value::Arr(v)) => Some(v),
            _ => None,
        }
    }
    fn str_val(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }
    fn table(&self, key: &str) -> Option<&Table> {
        match self.get(key) {
            Some(Value::Table(t)) => Some(t),
            _ => None,
        }
    }
    fn table_arr(&self, key: &str) -> Option<&[Table]> {
        match self.get(key) {
            Some(Value::TableArr(v)) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_arrays() {
        let t = parse(
            "# top comment\n[alpha]\nname = \"x\" # trailing\nfiles = [\"a.rs\", \"b.rs\"]\n\n[alpha.sub]\nk = \"v\"\n",
        )
        .unwrap();
        let alpha = t.table("alpha").unwrap();
        assert_eq!(alpha.str_val("name"), Some("x"));
        assert_eq!(alpha.arr("files"), Some(&["a.rs".to_string(), "b.rs".to_string()][..]));
        assert_eq!(alpha.table("sub").unwrap().str_val("k"), Some("v"));
    }

    #[test]
    fn parses_multiline_arrays() {
        let t = parse("[s]\nfiles = [\n  \"a.rs\",  # one\n  \"b.rs\",\n]\n").unwrap();
        assert_eq!(t.table("s").unwrap().arr("files").map(<[String]>::len), Some(2));
    }

    #[test]
    fn parses_array_of_tables() {
        let t = parse("[[allow]]\nrule = \"r1\"\n[[allow]]\nrule = \"r2\"\n").unwrap();
        let allow = t.table_arr("allow").unwrap();
        assert_eq!(allow.len(), 2);
        assert_eq!(allow[1].str_val("rule"), Some("r2"));
    }

    #[test]
    fn string_escapes() {
        let t = parse("[s]\nk = \"a\\\"b\\\\c\"\n").unwrap();
        assert_eq!(t.table("s").unwrap().str_val("k"), Some("a\"b\\c"));
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let t = parse("[s]\nk = \"a#b\"\n").unwrap();
        assert_eq!(t.table("s").unwrap().str_val("k"), Some("a#b"));
    }

    #[test]
    fn rejects_unknown_syntax() {
        assert!(parse("[s]\nk = 12\n").is_err());
        assert!(parse("just words\n").is_err());
        assert!(parse("[s]\nk = \"unterminated\n").is_err());
        assert!(parse("[s]\nk = \"a\"\nk = \"b\"\n").is_err());
    }
}
