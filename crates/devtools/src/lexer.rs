//! A small hand-rolled Rust lexer for lint scanning.
//!
//! The rules in [`crate::rules`] are substring-level checks, so the lexer's
//! job is to make substring matching *sound*: it produces a **masked** copy
//! of the source in which comments and string/char-literal contents are
//! replaced by spaces (newlines preserved, so byte offsets and line numbers
//! are unchanged), and it computes the byte spans of `#[cfg(test)]` /
//! `#[test]` items so rules can skip test-only code.
//!
//! The lexer understands: line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any `#` depth),
//! byte strings (`b"…"`, `br#"…"#`), char and byte-char literals, and the
//! char-literal vs. lifetime ambiguity (`'a'` vs. `&'a str`).

use std::ops::Range;

/// A scanned source file: original text, masked text, and test-item spans.
#[derive(Debug, Clone)]
pub struct FileScan {
    /// Source text with comments and literal contents blanked to spaces.
    /// Same length as the original; newlines are preserved.
    pub masked: String,
    /// Byte ranges (over `masked`) covered by `#[cfg(test)]` or `#[test]`
    /// items, including the attribute itself.
    pub test_spans: Vec<Range<usize>>,
}

impl FileScan {
    /// Lex `src` into a masked view plus test-item spans.
    #[must_use]
    pub fn new(src: &str) -> Self {
        let masked = mask_source(src);
        let test_spans = test_item_spans(&masked);
        FileScan { masked, test_spans }
    }

    /// Whether byte offset `pos` falls inside a test-only item.
    #[must_use]
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&pos))
    }
}

/// Blank out comments and string/char literal contents, preserving length
/// and newlines so offsets and line numbers survive.
#[must_use]
pub fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![0u8; b.len()];
    out.copy_from_slice(b);
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = line_end(b, i);
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let end = block_comment_end(b, i);
                blank(&mut out, i..end);
                i = end;
            }
            b'"' => {
                let end = string_end(b, i);
                blank(&mut out, i..end);
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string_start(b, i) => {
                let start = i;
                let end = raw_or_byte_string_end(b, i);
                blank(&mut out, start..end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(b, i) {
                    blank(&mut out, i..end);
                    i = end;
                } else {
                    // Lifetime (`'a`) or loop label: leave as-is.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // The masking only ever replaces bytes with ASCII spaces, and it always
    // replaces whole literals/comments, so UTF-8 boundaries are respected.
    String::from_utf8(out).unwrap_or_else(|_| mask_lossy(src))
}

/// Fallback used only if byte-level masking split a UTF-8 sequence (cannot
/// happen for well-formed Rust, but the lexer must never panic on odd input).
fn mask_lossy(src: &str) -> String {
    src.chars().map(|c| if c == '\n' { '\n' } else { ' ' }).collect()
}

fn blank(out: &mut [u8], range: Range<usize>) {
    for byte in &mut out[range] {
        if *byte != b'\n' {
            *byte = b' ';
        }
    }
}

fn line_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i] != b'\n' {
        i += 1;
    }
    i
}

fn block_comment_end(b: &[u8], mut i: usize) -> usize {
    // `i` points at `/*`. Rust block comments nest.
    let mut depth = 0usize;
    while i < b.len() {
        if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    b.len()
}

fn string_end(b: &[u8], mut i: usize) -> usize {
    // `i` points at the opening `"`.
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

fn is_raw_or_byte_string_start(b: &[u8], i: usize) -> bool {
    // Reject when `r`/`b` is part of a longer identifier (e.g. `for`, `sub"`).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let rest = &b[i..];
    match rest.first() {
        Some(b'r') => raw_quote_offset(&rest[1..]).is_some(),
        Some(b'b') => match rest.get(1) {
            Some(b'"') => true,
            Some(b'r') => raw_quote_offset(&rest[2..]).is_some(),
            _ => false,
        },
        _ => false,
    }
}

/// For text immediately after `r`: if it is `#*"` return the offset of the
/// quote, else `None`.
fn raw_quote_offset(rest: &[u8]) -> Option<usize> {
    let mut k = 0;
    while rest.get(k) == Some(&b'#') {
        k += 1;
    }
    (rest.get(k) == Some(&b'"')).then_some(k)
}

fn raw_or_byte_string_end(b: &[u8], i: usize) -> usize {
    let rest = &b[i..];
    // Skip the `r` / `b` / `br` prefix.
    let mut j = i + 1;
    if rest[0] == b'b' && rest.get(1) == Some(&b'r') {
        j += 1;
    }
    if b[j - 1] == b'b' || (j >= 1 && b[j] == b'"') {
        // `b"…"`: plain string with escapes.
        if b[j] == b'"' && b[j - 1] == b'b' {
            return string_end(b, j);
        }
    }
    // Raw string: count `#`s after the prefix.
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1; // past the opening quote
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = 0;
            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    b.len()
}

/// If `i` (pointing at `'`) starts a char literal, return its end offset;
/// return `None` for lifetimes and loop labels.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    // `b'x'` byte-char: the caller hands us the quote, the `b` prefix was
    // already left unmasked (it is a plain identifier byte — harmless).
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the closing quote (handles '\n', '\'', '\u{..}').
        let mut j = i + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(b.len());
    }
    // `'c'` only if the char after the (possibly multi-byte) char is `'`.
    let mut j = i + 1;
    // Advance one UTF-8 character.
    j += utf8_len(b[j]);
    if b.get(j) == Some(&b'\'') {
        return Some(j + 1);
    }
    None
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Find byte spans of items annotated `#[cfg(test)]` or `#[test]` in masked
/// source. A span runs from the attribute's `#` to the end of the annotated
/// item (its closing `}` or `;` at the item's own nesting depth).
fn test_item_spans(masked: &str) -> Vec<Range<usize>> {
    let b = masked.as_bytes();
    let mut spans: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'#' && b.get(i + 1) == Some(&b'[') {
            let attr_end = matching_bracket(b, i + 1).unwrap_or(b.len());
            let attr = &masked[i + 2..attr_end.saturating_sub(1).max(i + 2)];
            if is_test_attr(attr) {
                let item_end = item_end_after(b, attr_end);
                // Merge with a previous overlapping span (e.g. a test mod
                // containing #[test] fns).
                match spans.last_mut() {
                    Some(last) if last.end >= i => last.end = last.end.max(item_end),
                    _ => spans.push(i..item_end),
                }
                i = attr_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Whether the attribute text (between `#[` and `]`) marks test-only code.
fn is_test_attr(attr: &str) -> bool {
    let t: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    t == "test"
        || t.starts_with("cfg(test")
        || t.starts_with("cfg(all(test")
        || t.starts_with("cfg(any(test")
}

/// Given `open` pointing at `[`, return the offset just past the matching `]`.
fn matching_bracket(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Scan past any further attributes, then to the end of the next item:
/// either a `;` at depth 0 or the matching `}` of the first `{`.
fn item_end_after(b: &[u8], mut i: usize) -> usize {
    // Skip subsequent attributes (e.g. #[cfg(test)] #[allow(...)] mod t {…}).
    loop {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        if b.get(i) == Some(&b'#') && b.get(i + 1) == Some(&b'[') {
            i = matching_bracket(b, i + 1).unwrap_or(b.len());
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'{' | b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask_source("let x = 1; // unwrap()\n/* panic! */ let y = 2;");
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask_source("a /* outer /* inner */ still */ b");
        assert!(m.starts_with('a'));
        assert!(m.ends_with('b'));
        assert!(!m.contains("inner"));
        assert!(!m.contains("still"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let src = r####"let s = "has unwrap()"; let r = r#"panic!"#; let b = b"todo!";"####;
        let m = mask_source(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(!m.contains("todo"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let m = mask_source(r#"let s = "a\"unwrap()\""; x.unwrap();"#);
        assert_eq!(m.matches("unwrap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y'; x.unwrap()";
        let m = mask_source(src);
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'y'"));
        assert!(m.contains("unwrap"));
    }

    #[test]
    fn escaped_char_literals() {
        let m = mask_source(r"let a = '\''; let b = '\n'; x.expect(y)");
        assert!(m.contains("expect"));
        assert!(!m.contains(r"\n"));
    }

    #[test]
    fn newlines_survive_masking() {
        let src = "line1 // c\nline2 /* x\ny */ line3\n\"s\ntr\"\n";
        let m = mask_source(src);
        assert_eq!(src.matches('\n').count(), m.matches('\n').count());
        assert_eq!(src.len(), m.len());
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { y.unwrap(); }\n}\nfn b() {}\n";
        let scan = FileScan::new(src);
        let up = src.find("x.unwrap").unwrap_or(0);
        let tp = src.find("y.unwrap").unwrap_or(0);
        assert!(!scan.in_test(up));
        assert!(scan.in_test(tp));
        let bp = src.rfind("fn b").unwrap_or(0);
        assert!(!scan.in_test(bp));
    }

    #[test]
    fn test_spans_cover_test_fn_with_extra_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() { boom(); }\nfn ok() {}\n";
        let scan = FileScan::new(src);
        assert!(scan.in_test(src.find("boom").unwrap_or(0)));
        assert!(!scan.in_test(src.find("fn ok").unwrap_or(0)));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(feature = \"failpoints\")]\nfn f() { x.unwrap(); }\n";
        let scan = FileScan::new(src);
        assert!(!scan.in_test(src.find("x.unwrap").unwrap_or(0)));
    }
}
