//! `pis-devtools`: in-repo static analysis for the PIS workspace.
//!
//! The crate is deliberately std-only (the build has no registry access)
//! and ships one binary, `srclint`, run as:
//!
//! ```text
//! cargo run -p pis-devtools --bin srclint
//! ```
//!
//! `srclint` enforces the repo-specific safety rules described in
//! [`rules`] — panic-free hot paths, checked casts in the untrusted-byte
//! codecs, float equality only in bit-identity modules, budget-checkpoint
//! coverage, and `#![forbid(unsafe_code)]` on every crate root — driven by
//! the committed `srclint.toml`. Exemptions live in that file's `[[allow]]`
//! array and must each carry a justification; stale exemptions fail the run.
//!
//! See DESIGN.md §6.11 for the rule and invariant catalog.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both `Cargo.toml` and `srclint.toml`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("srclint.toml").is_file() && dir.join("Cargo.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
