//! The srclint rule set.
//!
//! Five repo-specific rules, each driven by the committed `srclint.toml`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic-in-hot-path`  | no `unwrap()` / `expect(` / `panic!` / `todo!` / `unimplemented!` outside `#[cfg(test)]` in the configured hot-path and codec modules |
//! | `lossy-cast-in-codec` | no bare `as` numeric casts in the configured codec modules (untrusted-byte decoding must use checked helpers) |
//! | `float-eq` | `==` / `!=` against float operands only in allowlisted bit-identity modules |
//! | `checkpoint-coverage` | every `CheckpointSite` variant has ≥1 `checkpoint(CheckpointSite::V` call in its configured phase module |
//! | `forbid-unsafe-audit` | every configured crate root carries `#![forbid(unsafe_code)]` |
//!
//! Findings are matched against `[[allow]]` entries; an entry must carry a
//! non-empty `justification` and must match at least one finding (stale
//! entries are themselves findings), so the allowlist cannot rot.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::config::{Table, TableExt};
use crate::lexer::FileScan;

/// One lint finding, attributed to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `panic-in-hot-path`).
    pub rule: String,
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// The offending source line, trimmed (from the *original* source, so
    /// allowlist `contains` patterns can match string contents).
    pub excerpt: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// A justified exemption from `srclint.toml`'s `[[allow]]` array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the exemption applies to.
    pub rule: String,
    /// Workspace-relative file the exemption applies to.
    pub file: String,
    /// Substring the finding's excerpt must contain (empty = whole file).
    pub contains: String,
    /// Required non-empty rationale.
    pub justification: String,
}

/// Parsed, validated srclint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Files covered by `panic-in-hot-path`.
    pub panic_files: Vec<String>,
    /// Files covered by `lossy-cast-in-codec`.
    pub cast_files: Vec<String>,
    /// Directories (workspace-relative) scanned by `float-eq`.
    pub float_scan_roots: Vec<String>,
    /// Whole files exempt from `float-eq` (bit-identity modules).
    pub float_allow_files: Vec<String>,
    /// File defining `enum CheckpointSite`.
    pub checkpoint_budget: String,
    /// Variant name → phase modules expected to call `checkpoint(…)`.
    pub checkpoint_sites: Vec<(String, Vec<String>)>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]`.
    pub unsafe_roots: Vec<String>,
    /// Justified exemptions.
    pub allow: Vec<AllowEntry>,
}

impl LintConfig {
    /// Build a validated config from a parsed `srclint.toml` table.
    pub fn from_table(t: &Table) -> Result<Self, String> {
        let section = |name: &str| -> Result<&Table, String> {
            t.table(name).ok_or_else(|| format!("missing [{name}] section"))
        };
        let files_of = |tab: &Table, key: &str, ctx: &str| -> Result<Vec<String>, String> {
            tab.arr(key)
                .map(<[String]>::to_vec)
                .ok_or_else(|| format!("missing `{key}` array in [{ctx}]"))
        };

        let panic_t = section("panic-in-hot-path")?;
        let cast_t = section("lossy-cast-in-codec")?;
        let float_t = section("float-eq")?;
        let ckpt_t = section("checkpoint-coverage")?;
        let unsafe_t = section("forbid-unsafe-audit")?;

        let mut checkpoint_sites = Vec::new();
        let sites = ckpt_t.table("sites").ok_or("missing [checkpoint-coverage.sites] table")?;
        for (variant, _) in sites.iter() {
            checkpoint_sites
                .push((variant.clone(), files_of(sites, variant, "checkpoint-coverage.sites")?));
        }

        let mut allow = Vec::new();
        for (i, e) in t.table_arr("allow").unwrap_or(&[]).iter().enumerate() {
            let get = |key: &str| -> Result<String, String> {
                e.str_val(key)
                    .map(str::to_string)
                    .ok_or_else(|| format!("[[allow]] entry {} is missing `{key}`", i + 1))
            };
            let entry = AllowEntry {
                rule: get("rule")?,
                file: get("file")?,
                contains: e.str_val("contains").unwrap_or("").to_string(),
                justification: get("justification")?,
            };
            if entry.justification.trim().is_empty() {
                return Err(format!(
                    "[[allow]] entry {} ({} in {}) has an empty justification — every exemption must say why",
                    i + 1,
                    entry.rule,
                    entry.file
                ));
            }
            allow.push(entry);
        }

        Ok(LintConfig {
            panic_files: files_of(panic_t, "files", "panic-in-hot-path")?,
            cast_files: files_of(cast_t, "files", "lossy-cast-in-codec")?,
            float_scan_roots: files_of(float_t, "scan-roots", "float-eq")?,
            float_allow_files: files_of(float_t, "allow-files", "float-eq")?,
            checkpoint_budget: ckpt_t
                .str_val("budget")
                .ok_or("missing `budget` in [checkpoint-coverage]")?
                .to_string(),
            checkpoint_sites,
            unsafe_roots: files_of(unsafe_t, "roots", "forbid-unsafe-audit")?,
            allow,
        })
    }
}

/// Result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived allowlisting (the failures).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by justified allow entries.
    pub allowlisted: usize,
}

/// Run every rule over the workspace rooted at `root`.
pub fn run(root: &Path, cfg: &LintConfig) -> io::Result<LintReport> {
    let mut findings = Vec::new();

    for rel in &cfg.panic_files {
        let (src, scan) = load(root, rel)?;
        findings.extend(panic_rule(&src, &scan, rel));
    }
    for rel in &cfg.cast_files {
        let (src, scan) = load(root, rel)?;
        findings.extend(cast_rule(&src, &scan, rel));
    }
    for rel in float_eq_targets(root, cfg)? {
        let (src, scan) = load(root, &rel)?;
        findings.extend(float_eq_rule(&src, &scan, &rel));
    }
    findings.extend(checkpoint_rule(root, cfg)?);
    findings.extend(forbid_unsafe_rule(root, cfg)?);

    Ok(apply_allowlist(findings, cfg))
}

/// Split raw findings into suppressed and surviving, and surface stale
/// allow entries as findings of their own.
pub fn apply_allowlist(raw: Vec<Finding>, cfg: &LintConfig) -> LintReport {
    let mut used = vec![false; cfg.allow.len()];
    let mut report = LintReport::default();
    for f in raw {
        let hit = cfg.allow.iter().enumerate().find(|(_, a)| {
            a.rule == f.rule
                && a.file == f.file
                && (a.contains.is_empty() || f.excerpt.contains(&a.contains))
        });
        if let Some((i, _)) = hit {
            used[i] = true;
            report.allowlisted += 1;
        } else {
            report.findings.push(f);
        }
    }
    for (i, a) in cfg.allow.iter().enumerate() {
        if !used[i] {
            report.findings.push(Finding {
                rule: "stale-allow".to_string(),
                file: a.file.clone(),
                line: 0,
                excerpt: a.contains.clone(),
                message: format!(
                    "allowlist entry for `{}` matched no finding — delete it or fix its pattern",
                    a.rule
                ),
            });
        }
    }
    report
}

fn load(root: &Path, rel: &str) -> io::Result<(String, FileScan)> {
    let path = root.join(rel);
    let src = fs::read_to_string(&path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    let scan = FileScan::new(&src);
    Ok((src, scan))
}

fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos.min(text.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

fn excerpt_at(src: &str, pos: usize) -> String {
    let start = src[..pos.min(src.len())].rfind('\n').map_or(0, |i| i + 1);
    let end = src[start..].find('\n').map_or(src.len(), |i| start + i);
    src[start..end].trim().to_string()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `panic-in-hot-path`: panicking constructs outside `#[cfg(test)]`.
pub fn panic_rule(src: &str, scan: &FileScan, rel: &str) -> Vec<Finding> {
    const PATTERNS: [(&str, &str); 5] = [
        (".unwrap()", "`unwrap()` in non-test code"),
        (".expect(", "`expect(` in non-test code"),
        ("panic!", "`panic!` in non-test code"),
        ("todo!", "`todo!` in non-test code"),
        ("unimplemented!", "`unimplemented!` in non-test code"),
    ];
    let masked = scan.masked.as_bytes();
    let mut out = Vec::new();
    for (pat, msg) in PATTERNS {
        for pos in occurrences(&scan.masked, pat) {
            // Word boundary on the left for the macro patterns, so e.g.
            // a hypothetical `no_panic!` does not match `panic!`.
            if !pat.starts_with('.') && pos > 0 && is_ident_byte(masked[pos - 1]) {
                continue;
            }
            if scan.in_test(pos) {
                continue;
            }
            out.push(Finding {
                rule: "panic-in-hot-path".to_string(),
                file: rel.to_string(),
                line: line_of(&scan.masked, pos),
                excerpt: excerpt_at(src, pos),
                message: msg.to_string(),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// `lossy-cast-in-codec`: bare `as <numeric>` casts outside tests.
pub fn cast_rule(src: &str, scan: &FileScan, rel: &str) -> Vec<Finding> {
    let b = scan.masked.as_bytes();
    let mut out = Vec::new();
    for pos in occurrences(&scan.masked, "as") {
        if pos > 0 && is_ident_byte(b[pos - 1]) {
            continue;
        }
        if b.get(pos + 2).copied().is_some_and(is_ident_byte) {
            continue;
        }
        if scan.in_test(pos) {
            continue;
        }
        // Next token after whitespace must be a numeric primitive.
        let mut j = pos + 2;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let start = j;
        while j < b.len() && is_ident_byte(b[j]) {
            j += 1;
        }
        let ty = &scan.masked[start..j];
        if NUMERIC_TYPES.contains(&ty) {
            out.push(Finding {
                rule: "lossy-cast-in-codec".to_string(),
                file: rel.to_string(),
                line: line_of(&scan.masked, pos),
                excerpt: excerpt_at(src, pos),
                message: format!("bare `as {ty}` cast in codec path — use a checked helper"),
            });
        }
    }
    out
}

/// `float-eq`: `==` / `!=` with a float-literal (or `f32::`/`f64::` const)
/// operand, outside tests. Literal-adjacent comparisons only — srclint has
/// no type information, so comparisons between two float *variables* are
/// the clippy `float_cmp` lint's territory.
pub fn float_eq_rule(src: &str, scan: &FileScan, rel: &str) -> Vec<Finding> {
    let b = scan.masked.as_bytes();
    let mut out = Vec::new();
    for op in ["==", "!="] {
        for pos in occurrences(&scan.masked, op) {
            // Reject `<=`, `>=`, `=>`, pattern `..=` and similar neighbours.
            if op == "==" {
                let before = pos.checked_sub(1).map(|i| b[i]);
                if matches!(before, Some(b'<' | b'>' | b'=' | b'!' | b'+' | b'-' | b'*' | b'/')) {
                    continue;
                }
                if b.get(pos + 2) == Some(&b'=') {
                    continue;
                }
            } else if b.get(pos + 2) == Some(&b'=') {
                continue;
            }
            if scan.in_test(pos) {
                continue;
            }
            let right = token_after(&scan.masked, pos + 2);
            let left = token_before(&scan.masked, pos);
            if is_floatish(&right) || is_floatish(&left) {
                out.push(Finding {
                    rule: "float-eq".to_string(),
                    file: rel.to_string(),
                    line: line_of(&scan.masked, pos),
                    excerpt: excerpt_at(src, pos),
                    message: format!("`{op}` against a float operand — intend bit-identity? allowlist the module"),
                });
            }
        }
    }
    out.sort_by_key(|f| f.line);
    out.dedup_by(|a, b| a.line == b.line && a.excerpt == b.excerpt);
    out
}

fn token_after(text: &str, mut i: usize) -> String {
    let b = text.as_bytes();
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let start = i;
    while i < b.len() && (is_ident_byte(b[i]) || b[i] == b'.' || b[i] == b':') {
        i += 1;
    }
    text[start..i].to_string()
}

fn token_before(text: &str, mut i: usize) -> String {
    let b = text.as_bytes();
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && (is_ident_byte(b[i - 1]) || b[i - 1] == b'.' || b[i - 1] == b':') {
        i -= 1;
    }
    text[i..end].to_string()
}

fn is_floatish(token: &str) -> bool {
    if token.starts_with("f32::") || token.starts_with("f64::") {
        return true;
    }
    let t = token.trim_end_matches("f32").trim_end_matches("f64");
    let Some(first) = t.chars().next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    // A digit-leading token is a float if it has a fractional part or, after
    // stripping an `f32`/`f64` suffix, was suffixed at all (e.g. `1f64`).
    t.contains('.') || t.contains('e') || t.contains('E') || t.len() < token.len()
}

/// `checkpoint-coverage`: every `CheckpointSite` variant is exercised by a
/// `checkpoint(CheckpointSite::V` call in its configured phase module(s).
pub fn checkpoint_rule(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    let (src, scan) = load(root, &cfg.checkpoint_budget)?;
    let mut out = Vec::new();
    let variants = enum_variants(&scan.masked, "CheckpointSite");
    if variants.is_empty() {
        out.push(Finding {
            rule: "checkpoint-coverage".to_string(),
            file: cfg.checkpoint_budget.clone(),
            line: 0,
            excerpt: String::new(),
            message: "could not find `enum CheckpointSite`".to_string(),
        });
        return Ok(out);
    }
    for (variant, pos) in &variants {
        let line = line_of(&scan.masked, *pos);
        let excerpt = excerpt_at(&src, *pos);
        let Some((_, files)) = cfg.checkpoint_sites.iter().find(|(v, _)| v == variant) else {
            out.push(Finding {
                rule: "checkpoint-coverage".to_string(),
                file: cfg.checkpoint_budget.clone(),
                line,
                excerpt,
                message: format!(
                    "variant `{variant}` has no [checkpoint-coverage.sites] entry — map it to its phase module"
                ),
            });
            continue;
        };
        let needle = format!("checkpoint(CheckpointSite::{variant}");
        let mut found = false;
        for rel in files {
            let (_, fscan) = load(root, rel)?;
            let compact: String =
                non_test_text(&fscan).chars().filter(|c| !c.is_whitespace()).collect();
            if compact.contains(&needle) {
                found = true;
                break;
            }
        }
        if !found {
            out.push(Finding {
                rule: "checkpoint-coverage".to_string(),
                file: cfg.checkpoint_budget.clone(),
                line,
                excerpt,
                message: format!(
                    "variant `{variant}` has no `checkpoint(CheckpointSite::{variant}` call in {}",
                    files.join(", ")
                ),
            });
        }
    }
    // Config entries naming variants that no longer exist are stale.
    for (variant, _) in &cfg.checkpoint_sites {
        if !variants.iter().any(|(v, _)| v == variant) {
            out.push(Finding {
                rule: "checkpoint-coverage".to_string(),
                file: cfg.checkpoint_budget.clone(),
                line: 0,
                excerpt: String::new(),
                message: format!("[checkpoint-coverage.sites] names unknown variant `{variant}`"),
            });
        }
    }
    Ok(out)
}

/// Masked text with test spans additionally blanked.
fn non_test_text(scan: &FileScan) -> String {
    let mut bytes = scan.masked.clone().into_bytes();
    for span in &scan.test_spans {
        for b in &mut bytes[span.clone()] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    String::from_utf8(bytes).unwrap_or_else(|_| scan.masked.clone())
}

/// Extract `(variant, byte_pos)` pairs from `enum <name> { … }` in masked text.
fn enum_variants(masked: &str, name: &str) -> Vec<(String, usize)> {
    let Some(decl) = masked.find(&format!("enum {name}")) else {
        return Vec::new();
    };
    let Some(open_rel) = masked[decl..].find('{') else {
        return Vec::new();
    };
    let open = decl + open_rel;
    let b = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    let mut close = masked.len();
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let body = &masked[open + 1..close];
    let mut out = Vec::new();
    let mut j = 0;
    let bb = body.as_bytes();
    while j < bb.len() {
        if bb[j].is_ascii_uppercase() && (j == 0 || !is_ident_byte(bb[j - 1])) {
            let start = j;
            while j < bb.len() && is_ident_byte(bb[j]) {
                j += 1;
            }
            out.push((body[start..j].to_string(), open + 1 + start));
        } else {
            j += 1;
        }
    }
    out
}

/// `forbid-unsafe-audit`: each configured crate root carries the attribute.
pub fn forbid_unsafe_rule(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for rel in &cfg.unsafe_roots {
        let (_, scan) = load(root, rel)?;
        let compact: String = scan.masked.chars().filter(|c| !c.is_whitespace()).collect();
        if !compact.contains("#![forbid(unsafe_code)]") {
            out.push(Finding {
                rule: "forbid-unsafe-audit".to_string(),
                file: rel.clone(),
                line: 1,
                excerpt: String::new(),
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
    Ok(out)
}

/// Workspace-relative `.rs` files under the configured float-eq scan roots,
/// minus the whole-module allowlist.
fn float_eq_targets(root: &Path, cfg: &LintConfig) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan_root in &cfg.float_scan_roots {
        walk_rs(&root.join(scan_root), &mut |p| {
            if let Ok(rel) = p.strip_prefix(root) {
                files.push(rel.to_string_lossy().replace('\\', "/"));
            }
        })?;
    }
    files.sort();
    files.retain(|f| !cfg.float_allow_files.contains(f));
    Ok(files)
}

/// Recursively visit `.rs` files under `dir` (skipping `target/`).
fn walk_rs(dir: &Path, visit: &mut dyn FnMut(&Path)) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                walk_rs(&path, visit)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            visit(&path);
        }
    }
    Ok(())
}

/// All byte offsets of `pat` in `text`.
fn occurrences(text: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find(pat) {
        out.push(from + rel);
        from += rel + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        FileScan::new(src)
    }

    #[test]
    fn panic_rule_fires_and_respects_tests_and_strings() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\nfn g() { let _ = \"don't panic!\"; }\n#[cfg(test)]\nmod t { fn h(y: Option<u8>) { y.unwrap(); } }\n";
        let f = panic_rule(src, &scan(src), "x.rs");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert!(f[0].excerpt.contains("x.unwrap()"));
    }

    #[test]
    fn cast_rule_fires_on_numeric_casts_only() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\nfn g(p: &u8) { let _ = p as *const u8; }\nfn h(x: U) -> V { x as V }\n";
        let f = cast_rule(src, &scan(src), "x.rs");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("as u32"));
    }

    #[test]
    fn cast_rule_skips_tests_and_comments() {
        let src = "// n as u32\n#[cfg(test)]\nmod t { fn f(n: usize) -> u64 { n as u64 } }\n";
        assert!(cast_rule(src, &scan(src), "x.rs").is_empty());
    }

    #[test]
    fn float_eq_fires_on_literals_and_consts() {
        let src = "fn f(w: f64) -> bool { w == 0.0 }\nfn g(w: f64) -> bool { w != f64::INFINITY }\nfn h(n: u32) -> bool { n == 0 }\nfn i(a: u32, b: u32) -> bool { a != b }\n";
        let f = float_eq_rule(src, &scan(src), "x.rs");
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn float_eq_ignores_comparison_neighbours() {
        let src = "fn f(w: f64) -> bool { w <= 1.0 }\nfn g(w: f64) -> bool { w >= 2.5 }\nfn h(r: std::ops::RangeInclusive<u8>) -> bool { matches!(1, 0..=3) }\n";
        assert!(float_eq_rule(src, &scan(src), "x.rs").is_empty());
    }

    #[test]
    fn allowlist_suppresses_and_flags_stale() {
        let cfg = LintConfig {
            allow: vec![
                AllowEntry {
                    rule: "panic-in-hot-path".into(),
                    file: "x.rs".into(),
                    contains: "x.unwrap()".into(),
                    justification: "provably infallible".into(),
                },
                AllowEntry {
                    rule: "panic-in-hot-path".into(),
                    file: "y.rs".into(),
                    contains: "never matches".into(),
                    justification: "stale".into(),
                },
            ],
            ..LintConfig::default()
        };
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let raw = panic_rule(src, &scan(src), "x.rs");
        let report = apply_allowlist(raw, &cfg);
        assert_eq!(report.allowlisted, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "stale-allow");
    }

    #[test]
    fn enum_variants_are_extracted() {
        let masked = "pub enum CheckpointSite {\n    RangeDescent,\n    Partition,\n}\n";
        let v = enum_variants(masked, "CheckpointSite");
        let names: Vec<_> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["RangeDescent", "Partition"]);
    }
}
