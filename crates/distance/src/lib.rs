//! Superimposed distance measures (Section 2 of the PIS paper).
//!
//! A *superimposed distance* compares two structurally isomorphic labeled
//! graphs through a superposition (a vertex bijection that preserves
//! edges): it sums a per-vertex and a per-edge cost over the mapping.
//! The paper introduces two instances, both implemented here:
//!
//! * [`MutationDistance`] — categorical labels scored through a
//!   [`ScoreMatrix`] (the evaluation uses its edge-Hamming special case:
//!   the number of mismatched edge labels);
//! * [`LinearDistance`] — numeric weights scored as `|w − w'|`.
//!
//! Both satisfy the *partition lower bound* of Eq. (2): for any
//! vertex-disjoint partition `{g_i}` of `Q`,
//! `Σ_i d(g_i, G) ≤ d(Q, G)` — verified by property tests in this crate
//! and relied on by the PIS pruning pipeline.
//!
//! [`oracle::min_superimposed_distance_brute`] computes the exact
//! minimum superimposed distance by full superposition enumeration; it
//! is the correctness oracle for the index and the optimized verifier.

#![forbid(unsafe_code)]

pub mod linear;
pub mod matrix;
pub mod mutation;
pub mod oracle;
pub mod traits;

pub use linear::{l1_costs_into, mbr_l1_costs_into, LinearDistance};
pub use matrix::ScoreMatrix;
pub use mutation::MutationDistance;
pub use traits::SuperimposedDistance;
