//! The linear mutation distance (LD) of Section 2.
//!
//! `LD = Σ_v |w(v) − w'(f(v))| + Σ_e |w(e) − w'(f(e))|` over a
//! superposition `f` — an L1 distance over superimposed numeric weights,
//! appropriate when labels are geometric quantities (bond lengths,
//! charges, coordinates projected to scalars). The R-tree backend of the
//! fragment index answers LD range queries as L1 ball queries over
//! weight vectors (the paper's Example 3).

use pis_graph::{EdgeAttr, VertexAttr};

use crate::traits::SuperimposedDistance;

/// L1 distance over vertex and edge weights, with optional per-side
/// scaling (set a scale to 0 to ignore that side, mirroring the paper's
/// edge-only experiments).
#[derive(Clone, Copy, Debug)]
pub struct LinearDistance {
    vertex_scale: f64,
    edge_scale: f64,
}

impl Default for LinearDistance {
    fn default() -> Self {
        LinearDistance { vertex_scale: 1.0, edge_scale: 1.0 }
    }
}

impl LinearDistance {
    /// The standard LD: unscaled vertex and edge terms.
    pub fn new() -> Self {
        LinearDistance::default()
    }

    /// LD over edge weights only (`Σ |w(e) − w'(e')|`, Example 3).
    pub fn edges_only() -> Self {
        LinearDistance { vertex_scale: 0.0, edge_scale: 1.0 }
    }

    /// LD with explicit non-negative scales.
    pub fn scaled(vertex_scale: f64, edge_scale: f64) -> Self {
        assert!(
            vertex_scale >= 0.0 && edge_scale >= 0.0,
            "scales must be non-negative for the lower bound to hold"
        );
        LinearDistance { vertex_scale, edge_scale }
    }

    /// Scale applied to vertex-weight differences.
    pub fn vertex_scale(&self) -> f64 {
        self.vertex_scale
    }

    /// Scale applied to edge-weight differences.
    pub fn edge_scale(&self) -> f64 {
        self.edge_scale
    }

    /// L1 distance between two weight vectors in the fragment index's
    /// class-canonical layout (edge weights then vertex weights; edges
    /// lead so the cost-bearing slots of edge-only distances come first
    /// for the index backends).
    pub fn weight_vector_cost(&self, edge_count: usize, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // Segment-split: each loop is a plain sum of |a-b| the compiler
        // can vectorize, with the scale factored out of the loop.
        let cut = edge_count.min(a.len());
        let mut edge_sum = 0.0;
        for (&wa, &wb) in a[..cut].iter().zip(&b[..cut]) {
            edge_sum += (wa - wb).abs();
        }
        let mut vertex_sum = 0.0;
        for (&wa, &wb) in a[cut..].iter().zip(&b[cut..]) {
            vertex_sum += (wa - wb).abs();
        }
        self.edge_scale * edge_sum + self.vertex_scale * vertex_sum
    }
}

impl SuperimposedDistance for LinearDistance {
    #[inline]
    fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64 {
        self.vertex_scale * (a.weight - b.weight).abs()
    }

    #[inline]
    fn edge_cost(&self, a: EdgeAttr, b: EdgeAttr) -> f64 {
        self.edge_scale * (a.weight - b.weight).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    fn weighted_path(weights: &[f64], edge_weights: &[f64]) -> pis_graph::LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = weights
            .iter()
            .map(|&w| b.add_vertex(VertexAttr { label: Label(0), weight: w }))
            .collect();
        for (i, &w) in edge_weights.iter().enumerate() {
            b.add_edge(vs[i], vs[i + 1], EdgeAttr { label: Label(0), weight: w }).unwrap();
        }
        b.build()
    }

    #[test]
    fn ld_is_l1_over_superposition() {
        let q = weighted_path(&[0.0, 0.0], &[1.0]);
        let g = weighted_path(&[0.5, 1.5], &[3.0]);
        let d = LinearDistance::new();
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        let mut costs: Vec<f64> = embs.iter().map(|e| d.superposition_cost(&q, &g, e)).collect();
        costs.sort_by(f64::total_cmp);
        // Both orientations: |0-0.5|+|0-1.5|+|1-3| = 4.
        assert_eq!(costs, vec![4.0, 4.0]);
    }

    #[test]
    fn edges_only_ignores_vertices() {
        let q = weighted_path(&[9.0, 9.0], &[1.0]);
        let g = weighted_path(&[0.0, 0.0], &[1.25]);
        let d = LinearDistance::edges_only();
        let e = &embeddings(&q, &g, IsoConfig::STRUCTURE)[0];
        assert!((d.superposition_cost(&q, &g, e) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weight_vector_cost_scales_segments() {
        let d = LinearDistance::scaled(2.0, 1.0);
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        // 2 edges scaled by 1, 1 vertex scaled by 2.
        assert_eq!(d.weight_vector_cost(2, &a, &b), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scales_rejected() {
        let _ = LinearDistance::scaled(-1.0, 0.0);
    }
}
