//! The linear mutation distance (LD) of Section 2.
//!
//! `LD = Σ_v |w(v) − w'(f(v))| + Σ_e |w(e) − w'(f(e))|` over a
//! superposition `f` — an L1 distance over superimposed numeric weights,
//! appropriate when labels are geometric quantities (bond lengths,
//! charges, coordinates projected to scalars). The R-tree backend of the
//! fragment index answers LD range queries as L1 ball queries over
//! weight vectors (the paper's Example 3).

use pis_graph::{EdgeAttr, LabeledGraph, VertexAttr};

use crate::traits::{min_edge_costs_generic, min_vertex_costs_generic, SuperimposedDistance};

/// L1 distance over vertex and edge weights, with optional per-side
/// scaling (set a scale to 0 to ignore that side, mirroring the paper's
/// edge-only experiments).
#[derive(Clone, Copy, Debug)]
pub struct LinearDistance {
    vertex_scale: f64,
    edge_scale: f64,
}

impl Default for LinearDistance {
    fn default() -> Self {
        LinearDistance { vertex_scale: 1.0, edge_scale: 1.0 }
    }
}

impl LinearDistance {
    /// The standard LD: unscaled vertex and edge terms.
    pub fn new() -> Self {
        LinearDistance::default()
    }

    /// LD over edge weights only (`Σ |w(e) − w'(e')|`, Example 3).
    pub fn edges_only() -> Self {
        LinearDistance { vertex_scale: 0.0, edge_scale: 1.0 }
    }

    /// LD with explicit non-negative scales.
    pub fn scaled(vertex_scale: f64, edge_scale: f64) -> Self {
        assert!(
            vertex_scale >= 0.0 && edge_scale >= 0.0,
            "scales must be non-negative for the lower bound to hold"
        );
        LinearDistance { vertex_scale, edge_scale }
    }

    /// Scale applied to vertex-weight differences.
    pub fn vertex_scale(&self) -> f64 {
        self.vertex_scale
    }

    /// Scale applied to edge-weight differences.
    pub fn edge_scale(&self) -> f64 {
        self.edge_scale
    }

    /// L1 distance between two weight vectors in the fragment index's
    /// class-canonical layout (edge weights then vertex weights; edges
    /// lead so the cost-bearing slots of edge-only distances come first
    /// for the index backends).
    pub fn weight_vector_cost(&self, edge_count: usize, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // Segment-split: each loop is a plain sum of |a-b| the compiler
        // can vectorize, with the scale factored out of the loop.
        let cut = edge_count.min(a.len());
        let mut edge_sum = 0.0;
        for (&wa, &wb) in a[..cut].iter().zip(&b[..cut]) {
            edge_sum += (wa - wb).abs();
        }
        let mut vertex_sum = 0.0;
        for (&wa, &wb) in a[cut..].iter().zip(&b[cut..]) {
            vertex_sum += (wa - wb).abs();
        }
        self.edge_scale * edge_sum + self.vertex_scale * vertex_sum
    }
}

/// Plain L1 distances from `query` to a contiguous row-major block of
/// `out.len()` points (`points.len() == out.len() * query.len()`), each
/// point summed in slot order — byte-identical to a per-point
/// `Σ |a − b|` loop.
///
/// This is the leaf kernel of the flattened R-tree: its stored
/// coordinates are scale-transformed so the linear distance *is* a
/// plain L1, and a frozen leaf's points sit in one dense block the
/// compiler can stream instead of chasing per-point `Vec`s.
///
/// # Panics
/// Panics if `points.len() != out.len() * query.len()`.
pub fn l1_costs_into(query: &[f64], points: &[f64], out: &mut [f64]) {
    assert_eq!(
        points.len(),
        out.len() * query.len(),
        "point block must hold out.len() points of query dimensionality"
    );
    if query.is_empty() {
        out.fill(0.0);
        return;
    }
    for (o, p) in out.iter_mut().zip(points.chunks_exact(query.len())) {
        let mut d = 0.0;
        for (&x, &y) in p.iter().zip(query) {
            d += (x - y).abs();
        }
        *o = d;
    }
}

/// L1 distances from `query` to a block of `out.len()` axis-aligned
/// boxes stored SoA row-major (`mins`/`maxs` each hold
/// `out.len() * query.len()` coordinates). Each output is the exact
/// lower bound on the L1 distance to any point inside its box (0 when
/// `query` is inside) — the inner-node pruning kernel of the flattened
/// R-tree, scanning bounding data contiguously.
///
/// # Panics
/// Panics if `mins.len()` or `maxs.len()` differ from
/// `out.len() * query.len()`.
pub fn mbr_l1_costs_into(query: &[f64], mins: &[f64], maxs: &[f64], out: &mut [f64]) {
    let dim = query.len();
    assert_eq!(mins.len(), out.len() * dim, "min block must hold out.len() boxes");
    assert_eq!(maxs.len(), out.len() * dim, "max block must hold out.len() boxes");
    for (i, o) in out.iter_mut().enumerate() {
        let (lo, hi) = (&mins[i * dim..(i + 1) * dim], &maxs[i * dim..(i + 1) * dim]);
        let mut d = 0.0;
        for ((&x, &lo), &hi) in query.iter().zip(lo).zip(hi) {
            if x < lo {
                d += lo - x;
            } else if x > hi {
                d += x - hi;
            }
        }
        *o = d;
    }
}

impl SuperimposedDistance for LinearDistance {
    #[inline]
    fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64 {
        self.vertex_scale * (a.weight - b.weight).abs()
    }

    #[inline]
    fn edge_cost(&self, a: EdgeAttr, b: EdgeAttr) -> f64 {
        self.edge_scale * (a.weight - b.weight).abs()
    }

    fn min_vertex_costs_into(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        out: &mut Vec<f64>,
    ) {
        // A zero scale (the paper's edge-only experiments) makes every
        // vertex cost 0; skip the quadratic scan.
        if self.vertex_scale == 0.0 {
            out.clear();
            out.resize(pattern.vertex_count(), 0.0);
        } else {
            min_vertex_costs_generic(self, pattern, target, out);
        }
    }

    fn min_edge_costs_into(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        out: &mut Vec<f64>,
    ) {
        if self.edge_scale == 0.0 {
            out.clear();
            out.resize(pattern.edge_count(), 0.0);
        } else {
            min_edge_costs_generic(self, pattern, target, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    fn weighted_path(weights: &[f64], edge_weights: &[f64]) -> pis_graph::LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = weights
            .iter()
            .map(|&w| b.add_vertex(VertexAttr { label: Label(0), weight: w }))
            .collect();
        for (i, &w) in edge_weights.iter().enumerate() {
            b.add_edge(vs[i], vs[i + 1], EdgeAttr { label: Label(0), weight: w }).unwrap();
        }
        b.build()
    }

    #[test]
    fn ld_is_l1_over_superposition() {
        let q = weighted_path(&[0.0, 0.0], &[1.0]);
        let g = weighted_path(&[0.5, 1.5], &[3.0]);
        let d = LinearDistance::new();
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        let mut costs: Vec<f64> = embs.iter().map(|e| d.superposition_cost(&q, &g, e)).collect();
        costs.sort_by(f64::total_cmp);
        // Both orientations: |0-0.5|+|0-1.5|+|1-3| = 4.
        assert_eq!(costs, vec![4.0, 4.0]);
    }

    #[test]
    fn edges_only_ignores_vertices() {
        let q = weighted_path(&[9.0, 9.0], &[1.0]);
        let g = weighted_path(&[0.0, 0.0], &[1.25]);
        let d = LinearDistance::edges_only();
        let e = &embeddings(&q, &g, IsoConfig::STRUCTURE)[0];
        assert!((d.superposition_cost(&q, &g, e) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weight_vector_cost_scales_segments() {
        let d = LinearDistance::scaled(2.0, 1.0);
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        // 2 edges scaled by 1, 1 vertex scaled by 2.
        assert_eq!(d.weight_vector_cost(2, &a, &b), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scales_rejected() {
        let _ = LinearDistance::scaled(-1.0, 0.0);
    }

    #[test]
    fn l1_block_matches_per_point_scan() {
        let query = [1.0, 2.0, 3.0];
        let points = [1.0, 2.0, 3.0, 0.0, 0.0, 0.0, -1.0, 4.0, 3.5];
        let mut out = [f64::NAN; 3];
        l1_costs_into(&query, &points, &mut out);
        assert_eq!(out, [0.0, 6.0, 4.5]);
        // Zero-dimensional points are all at distance 0.
        let mut empty_dim = [f64::NAN; 2];
        l1_costs_into(&[], &[], &mut empty_dim);
        assert_eq!(empty_dim, [0.0, 0.0]);
        l1_costs_into(&query, &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "point block")]
    fn l1_block_rejects_length_mismatch() {
        let mut out = [0.0; 2];
        l1_costs_into(&[1.0, 2.0], &[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    fn mbr_block_lower_bounds() {
        // Two boxes in 2-D: [1,2]x[1,3] and [5,6]x[5,6].
        let mins = [1.0, 1.0, 5.0, 5.0];
        let maxs = [2.0, 3.0, 6.0, 6.0];
        let mut out = [f64::NAN; 2];
        mbr_l1_costs_into(&[1.5, 2.0], &mins, &maxs, &mut out);
        assert_eq!(out, [0.0, 6.5]); // inside first; (5-1.5)+(5-2) to second
        mbr_l1_costs_into(&[0.0, 4.0], &mins, &maxs, &mut out);
        assert_eq!(out, [2.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "min block")]
    fn mbr_block_rejects_length_mismatch() {
        let mut out = [0.0; 1];
        mbr_l1_costs_into(&[1.0], &[1.0, 2.0], &[1.0], &mut out);
    }

    #[test]
    fn zero_scale_min_tables_short_circuit() {
        let d = LinearDistance::edges_only();
        let q = weighted_path(&[5.0, 5.0, 5.0], &[1.0, 2.0]);
        let g = weighted_path(&[0.0, 0.0], &[9.0]);
        let mut out = Vec::new();
        // Vertex scale 0: all-zero floors even though the middle vertex
        // has no degree-compatible image.
        d.min_vertex_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![0.0; 3]);
        // Edge scale 1: the generic scan runs and reports infeasibility.
        d.min_edge_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![f64::INFINITY; 2]);
        // Against a large-enough target the floors are |w − w'| minima.
        let g = weighted_path(&[0.0, 0.0, 0.0], &[1.5, 4.0]);
        d.min_edge_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![0.5, 0.5]);
    }
}
