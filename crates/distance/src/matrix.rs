//! Mutation score matrices.
//!
//! The mutation distance scores each label pair through a matrix `D`
//! (Section 2): `MD = Σ D(l(v), l'(v')) + Σ D(l(e), l'(e'))`. A valid
//! score matrix is symmetric with a zero diagonal and non-negative
//! entries; it need not satisfy the triangle inequality, but metric
//! matrices additionally enable the VP-tree index backend
//! ([`ScoreMatrix::is_metric`]).

use std::fmt;

use pis_graph::Label;

/// A symmetric, zero-diagonal, non-negative label-pair cost matrix.
///
/// Labels outside the matrix range fall back to
/// [`default_mismatch`](ScoreMatrix::default_mismatch) when distinct and
/// cost 0 when equal, so a small matrix safely covers an open label
/// vocabulary.
#[derive(Clone, PartialEq, Debug)]
pub struct ScoreMatrix {
    size: usize,
    /// Row-major `size × size` costs.
    costs: Vec<f64>,
    default_mismatch: f64,
    /// Cached "every cost is zero" flag — lets the vector kernels skip
    /// whole segments of the paper's ignored-label settings in O(1).
    zero: bool,
}

/// Errors raised by [`ScoreMatrix`] constructors.
#[derive(Clone, PartialEq, Debug)]
pub enum ScoreMatrixError {
    /// A diagonal entry was non-zero.
    NonZeroDiagonal(usize),
    /// `m[i][j] != m[j][i]`.
    Asymmetric(usize, usize),
    /// A cost was negative or NaN.
    InvalidCost(usize, usize),
}

impl fmt::Display for ScoreMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreMatrixError::NonZeroDiagonal(i) => {
                write!(f, "score matrix diagonal entry ({i},{i}) must be zero")
            }
            ScoreMatrixError::Asymmetric(i, j) => {
                write!(f, "score matrix must be symmetric; ({i},{j}) != ({j},{i})")
            }
            ScoreMatrixError::InvalidCost(i, j) => {
                write!(f, "score matrix entry ({i},{j}) must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for ScoreMatrixError {}

impl ScoreMatrix {
    /// The unit (Hamming) matrix: cost 1 for any mismatch. `size` only
    /// bounds the explicit storage; out-of-range labels behave the same.
    pub fn unit(size: usize) -> Self {
        ScoreMatrix::uniform(size, 1.0)
    }

    /// Uniform mismatch cost for every distinct pair.
    pub fn uniform(size: usize, mismatch: f64) -> Self {
        assert!(mismatch >= 0.0 && mismatch.is_finite(), "mismatch cost must be non-negative");
        let mut costs = vec![mismatch; size * size];
        for i in 0..size {
            costs[i * size + i] = 0.0;
        }
        ScoreMatrix { size, costs, default_mismatch: mismatch, zero: mismatch == 0.0 }
    }

    /// The all-zero matrix: label differences cost nothing (used to
    /// ignore vertex labels, as the paper's evaluation does).
    pub fn zero(size: usize) -> Self {
        ScoreMatrix { size, costs: vec![0.0; size * size], default_mismatch: 0.0, zero: true }
    }

    /// Builds a matrix from a generator; validates symmetry, zero
    /// diagonal and non-negativity. `default_mismatch` applies to labels
    /// outside `0..size`.
    pub fn from_fn(
        size: usize,
        default_mismatch: f64,
        f: impl Fn(Label, Label) -> f64,
    ) -> Result<Self, ScoreMatrixError> {
        let mut costs = vec![0.0; size * size];
        for i in 0..size {
            for j in 0..size {
                let c = f(Label(i as u32), Label(j as u32));
                if !(c.is_finite() && c >= 0.0) {
                    return Err(ScoreMatrixError::InvalidCost(i, j));
                }
                costs[i * size + j] = c;
            }
        }
        for i in 0..size {
            if costs[i * size + i] != 0.0 {
                return Err(ScoreMatrixError::NonZeroDiagonal(i));
            }
            for j in (i + 1)..size {
                if costs[i * size + j] != costs[j * size + i] {
                    return Err(ScoreMatrixError::Asymmetric(i, j));
                }
            }
        }
        if !(default_mismatch.is_finite() && default_mismatch >= 0.0) {
            return Err(ScoreMatrixError::InvalidCost(size, size));
        }
        let zero = default_mismatch == 0.0 && costs.iter().all(|&c| c == 0.0);
        Ok(ScoreMatrix { size, costs, default_mismatch, zero })
    }

    /// Number of labels with explicit entries.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Fallback cost for distinct labels outside the explicit range.
    pub fn default_mismatch(&self) -> f64 {
        self.default_mismatch
    }

    /// The mutation cost of relabeling `a` as `b`.
    #[inline]
    pub fn cost(&self, a: Label, b: Label) -> f64 {
        if a == b {
            return 0.0;
        }
        let (i, j) = (a.index(), b.index());
        if i < self.size && j < self.size {
            self.costs[i * self.size + j]
        } else {
            self.default_mismatch
        }
    }

    /// Batched form of [`ScoreMatrix::cost`]: writes `cost(a, bs[k])`
    /// into `out[k]` for every `k`. The hot inner loop of the flat
    /// trie's frontier descent — one call per trie level costs a whole
    /// alphabet of stored labels against the query label, scanning the
    /// matrix row contiguously so the loop autovectorizes instead of
    /// re-resolving the row per child node.
    ///
    /// # Panics
    /// Panics if `bs.len() != out.len()`.
    pub fn costs_into(&self, a: Label, bs: &[Label], out: &mut [f64]) {
        assert_eq!(bs.len(), out.len(), "cost output must match the label batch");
        let i = a.index();
        if i < self.size {
            let row = &self.costs[i * self.size..(i + 1) * self.size];
            for (o, &b) in out.iter_mut().zip(bs) {
                let j = b.index();
                *o = if b == a {
                    0.0
                } else if j < self.size {
                    row[j]
                } else {
                    self.default_mismatch
                };
            }
        } else {
            for (o, &b) in out.iter_mut().zip(bs) {
                *o = if b == a { 0.0 } else { self.default_mismatch };
            }
        }
    }

    /// Multi-query form of [`ScoreMatrix::costs_into`]: prices every
    /// query label of `queries` against the same stored-label batch in
    /// one call, writing row `qi` (the costs of `queries[qi]` against
    /// all of `bs`) into `out[qi * bs.len()..(qi + 1) * bs.len()]`.
    ///
    /// This is the pricing kernel of the flat trie's *batched* descent:
    /// a probe batch prices each level's alphabet once per **distinct**
    /// query label (the caller dedups), and every sibling probe then
    /// indexes the shared row instead of re-running the scan. Row `qi`
    /// is byte-identical to a direct `costs_into(queries[qi], bs, ..)`
    /// call.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * bs.len()`.
    pub fn costs_into_multi(&self, queries: &[Label], bs: &[Label], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            queries.len() * bs.len(),
            "cost output must cover every (query, stored) pair"
        );
        for (q, row) in queries.iter().zip(out.chunks_exact_mut(bs.len().max(1))) {
            self.costs_into(*q, bs, row);
        }
    }

    /// Whether every entry (and the out-of-range fallback) is zero, so
    /// the matrix can never contribute cost. O(1) — the flag is cached
    /// at construction. Lets callers skip whole pricing passes for the
    /// paper's ignored-label segments.
    pub fn is_zero(&self) -> bool {
        self.zero
    }

    /// Sum of `cost(a[k], b[k])` over a pair of equal-length label
    /// slices — one segment of a class-canonical vector scored in a
    /// single pass (no per-position segment branch, so the loop is a
    /// straight row-gather the compiler can unroll).
    pub fn segment_cost(&self, a: &[Label], b: &[Label]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // An all-zero matrix (the paper's ignored-vertex-labels setting)
        // contributes nothing; skip the scan entirely.
        if self.zero {
            return 0.0;
        }
        let mut total = 0.0;
        for (&la, &lb) in a.iter().zip(b) {
            total += self.cost(la, lb);
        }
        total
    }

    /// The largest explicit entry (used for pruning bounds).
    pub fn max_cost(&self) -> f64 {
        self.costs.iter().copied().fold(self.default_mismatch, f64::max)
    }

    /// Whether the matrix induces a metric on the label space (required
    /// by the VP-tree backend): distinct labels are separated, the
    /// triangle inequality holds over the explicit range, and the
    /// out-of-range fallback cannot break it (`max ≤ 2 × default`).
    /// `O(size³)`.
    pub fn is_metric(&self) -> bool {
        // Out-of-range labels are pairwise `default_mismatch` apart and
        // `default_mismatch` from every in-range label; a zero default
        // would merge them, and an explicit cost above twice the default
        // would violate the triangle through an out-of-range label.
        if self.default_mismatch <= 0.0 || self.max_cost() > 2.0 * self.default_mismatch {
            return false;
        }
        for i in 0..self.size {
            for j in 0..self.size {
                for k in 0..self.size {
                    let (ij, ik, kj) = (
                        self.costs[i * self.size + j],
                        self.costs[i * self.size + k],
                        self.costs[k * self.size + j],
                    );
                    if ij > ik + kj + 1e-12 {
                        return false;
                    }
                }
            }
        }
        // Distinct labels must also be separated, else "distance zero"
        // merges labels and the index would over-prune.
        for i in 0..self.size {
            for j in (i + 1)..self.size {
                if self.costs[i * self.size + j] == 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_matrix_is_hamming() {
        let m = ScoreMatrix::unit(4);
        assert_eq!(m.cost(Label(1), Label(1)), 0.0);
        assert_eq!(m.cost(Label(1), Label(2)), 1.0);
        // Out-of-range labels fall back to the default.
        assert_eq!(m.cost(Label(9), Label(10)), 1.0);
        assert_eq!(m.cost(Label(9), Label(9)), 0.0);
    }

    #[test]
    fn zero_matrix_ignores_labels() {
        let m = ScoreMatrix::zero(3);
        assert_eq!(m.cost(Label(0), Label(2)), 0.0);
        assert_eq!(m.cost(Label(7), Label(8)), 0.0);
    }

    #[test]
    fn from_fn_validates_diagonal() {
        let err = ScoreMatrix::from_fn(2, 1.0, |_, _| 1.0).unwrap_err();
        assert!(matches!(err, ScoreMatrixError::NonZeroDiagonal(0)));
    }

    #[test]
    fn from_fn_validates_symmetry() {
        let err = ScoreMatrix::from_fn(2, 1.0, |a, b| {
            if a == b {
                0.0
            } else if a.0 < b.0 {
                1.0
            } else {
                2.0
            }
        })
        .unwrap_err();
        assert!(matches!(err, ScoreMatrixError::Asymmetric(0, 1)));
    }

    #[test]
    fn from_fn_validates_costs() {
        let err = ScoreMatrix::from_fn(2, 1.0, |a, b| if a == b { 0.0 } else { -1.0 }).unwrap_err();
        assert!(matches!(err, ScoreMatrixError::InvalidCost(..)));
        assert!(ScoreMatrix::from_fn(2, f64::NAN, |_, _| 0.0).is_err());
    }

    #[test]
    fn from_fn_accepts_weighted_mismatches() {
        let m = ScoreMatrix::from_fn(3, 2.0, |a, b| {
            if a == b {
                0.0
            } else {
                (a.0 as f64 - b.0 as f64).abs()
            }
        })
        .unwrap();
        assert_eq!(m.cost(Label(0), Label(2)), 2.0);
        assert_eq!(m.cost(Label(5), Label(6)), 2.0); // default
        assert_eq!(m.max_cost(), 2.0);
    }

    #[test]
    fn metric_check() {
        assert!(ScoreMatrix::unit(4).is_metric());
        assert!(!ScoreMatrix::zero(3).is_metric()); // merges labels

        // A matrix violating the triangle inequality.
        let bad = ScoreMatrix::from_fn(3, 10.0, |a, b| {
            if a == b {
                0.0
            } else if (a.0, b.0) == (0, 2) || (a.0, b.0) == (2, 0) {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(!bad.is_metric());
    }

    #[test]
    fn costs_into_matches_scalar_cost() {
        let m = ScoreMatrix::from_fn(3, 2.0, |a, b| {
            if a == b {
                0.0
            } else {
                (a.0 as f64 - b.0 as f64).abs()
            }
        })
        .unwrap();
        // In-range and out-of-range query labels, mixed stored labels.
        for q in [Label(0), Label(1), Label(7)] {
            let stored = [Label(0), Label(1), Label(2), Label(7), Label(9)];
            let mut out = vec![f64::NAN; stored.len()];
            m.costs_into(q, &stored, &mut out);
            for (&s, &c) in stored.iter().zip(&out) {
                assert_eq!(c, m.cost(q, s), "q={q:?} s={s:?}");
            }
        }
    }

    #[test]
    fn costs_into_multi_matches_per_query_rows() {
        let m = ScoreMatrix::from_fn(3, 2.0, |a, b| {
            if a == b {
                0.0
            } else {
                (a.0 as f64 - b.0 as f64).abs()
            }
        })
        .unwrap();
        let queries = [Label(0), Label(2), Label(7), Label(0)]; // incl. duplicate + out-of-range
        let stored = [Label(0), Label(1), Label(2), Label(9)];
        let mut multi = vec![f64::NAN; queries.len() * stored.len()];
        m.costs_into_multi(&queries, &stored, &mut multi);
        let mut row = vec![f64::NAN; stored.len()];
        for (qi, &q) in queries.iter().enumerate() {
            m.costs_into(q, &stored, &mut row);
            assert_eq!(&multi[qi * stored.len()..(qi + 1) * stored.len()], &row[..], "q={q:?}");
        }
        // Empty batches are fine.
        m.costs_into_multi(&[], &stored, &mut []);
        m.costs_into_multi(&queries, &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "every (query, stored) pair")]
    fn costs_into_multi_rejects_length_mismatch() {
        let m = ScoreMatrix::unit(2);
        let mut out = vec![0.0; 3];
        m.costs_into_multi(&[Label(0), Label(1)], &[Label(0), Label(1)], &mut out);
    }

    #[test]
    fn zero_flag_is_cached() {
        assert!(ScoreMatrix::zero(3).is_zero());
        assert!(ScoreMatrix::uniform(3, 0.0).is_zero());
        assert!(!ScoreMatrix::unit(3).is_zero());
        assert!(!ScoreMatrix::from_fn(0, 1.0, |_, _| 0.0).unwrap().is_zero());
        assert!(ScoreMatrix::from_fn(2, 0.0, |_, _| 0.0).unwrap().is_zero());
    }

    #[test]
    #[should_panic(expected = "cost output")]
    fn costs_into_rejects_length_mismatch() {
        let m = ScoreMatrix::unit(2);
        let mut out = vec![0.0; 1];
        m.costs_into(Label(0), &[Label(1), Label(2)], &mut out);
    }

    #[test]
    fn segment_cost_sums_pairs() {
        let m = ScoreMatrix::unit(0);
        let a = [Label(1), Label(2), Label(3)];
        let b = [Label(1), Label(9), Label(3)];
        assert_eq!(m.segment_cost(&a, &b), 1.0);
        // The all-zero matrix short-circuits.
        assert_eq!(ScoreMatrix::zero(4).segment_cost(&a, &b), 0.0);
        assert_eq!(m.segment_cost(&[], &[]), 0.0);
    }

    #[test]
    fn errors_display() {
        assert!(ScoreMatrixError::NonZeroDiagonal(1).to_string().contains("diagonal"));
        assert!(ScoreMatrixError::Asymmetric(0, 1).to_string().contains("symmetric"));
        assert!(ScoreMatrixError::InvalidCost(0, 1).to_string().contains("non-negative"));
    }
}
