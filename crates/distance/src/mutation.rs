//! The mutation distance (MD) of Section 2.
//!
//! `MD = Σ_v D_V(l(v), l'(f(v))) + Σ_e D_E(l(e), l'(f(e)))` for a
//! superposition `f`, where `D_V`/`D_E` are [`ScoreMatrix`]es. The
//! paper's evaluation uses [`MutationDistance::edge_hamming`]: vertex
//! labels are ignored and each mismatched edge label costs 1 ("the
//! number of edges whose labels are mismatched").

use pis_graph::{EdgeAttr, Label, VertexAttr};

use crate::matrix::ScoreMatrix;
use crate::traits::SuperimposedDistance;

/// Score-matrix-based mutation distance over categorical labels.
#[derive(Clone, Debug)]
pub struct MutationDistance {
    vertex_scores: ScoreMatrix,
    edge_scores: ScoreMatrix,
}

impl MutationDistance {
    /// A mutation distance from explicit vertex and edge score matrices.
    pub fn new(vertex_scores: ScoreMatrix, edge_scores: ScoreMatrix) -> Self {
        MutationDistance { vertex_scores, edge_scores }
    }

    /// Unit mismatch costs on both vertices and edges.
    pub fn unit() -> Self {
        MutationDistance::new(ScoreMatrix::unit(0), ScoreMatrix::unit(0))
    }

    /// The paper's evaluation setting: vertex labels ignored, each edge
    /// label mismatch costs 1.
    pub fn edge_hamming() -> Self {
        MutationDistance::new(ScoreMatrix::zero(0), ScoreMatrix::unit(0))
    }

    /// The vertex score matrix.
    pub fn vertex_scores(&self) -> &ScoreMatrix {
        &self.vertex_scores
    }

    /// The edge score matrix.
    pub fn edge_scores(&self) -> &ScoreMatrix {
        &self.edge_scores
    }

    /// Cost of a vertex-label mutation.
    #[inline]
    pub fn vertex_label_cost(&self, a: Label, b: Label) -> f64 {
        self.vertex_scores.cost(a, b)
    }

    /// Cost of an edge-label mutation.
    #[inline]
    pub fn edge_label_cost(&self, a: Label, b: Label) -> f64 {
        self.edge_scores.cost(a, b)
    }

    /// Distance between two label vectors in the fragment index's
    /// class-canonical layout: the first `edge_count` positions hold
    /// edge labels, the rest vertex labels. (Edges lead so that
    /// cost-bearing trie levels come first — under the paper's
    /// edge-Hamming setting a vertex-first layout would fan out through
    /// zero-cost levels before any pruning could happen.)
    pub fn label_vector_cost(&self, edge_count: usize, a: &[Label], b: &[Label]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // Segment-split so each loop scans one score matrix without a
        // per-position branch (and all-zero segments cost nothing,
        // including the scan).
        let cut = edge_count.min(a.len());
        self.edge_scores.segment_cost(&a[..cut], &b[..cut])
            + self.vertex_scores.segment_cost(&a[cut..], &b[cut..])
    }

    /// Cost contributed by position `pos` of a class-canonical label
    /// vector (edge segment then vertex segment). The trie backend calls
    /// this per level while descending.
    #[inline]
    pub fn position_cost(&self, pos: usize, edge_count: usize, a: Label, b: Label) -> f64 {
        if pos < edge_count {
            self.edge_scores.cost(a, b)
        } else {
            self.vertex_scores.cost(a, b)
        }
    }

    /// Batched form of [`MutationDistance::position_cost`]: fills
    /// `out[k]` with the cost of mutating `query` into `stored[k]` at
    /// vector position `pos`. One call costs a whole trie level's
    /// distinct-label alphabet, which is what lets the flat trie's
    /// frontier descent price each label once instead of once per child
    /// node.
    ///
    /// # Panics
    /// Panics if `stored.len() != out.len()`.
    pub fn position_costs_into(
        &self,
        pos: usize,
        edge_count: usize,
        query: Label,
        stored: &[Label],
        out: &mut [f64],
    ) {
        if pos < edge_count {
            self.edge_scores.costs_into(query, stored, out);
        } else {
            self.vertex_scores.costs_into(query, stored, out);
        }
    }

    /// Multi-query form of [`MutationDistance::position_costs_into`]:
    /// prices every distinct query label of a probe batch against one
    /// trie level's alphabet in a single call (row `qi` covers
    /// `queries[qi]`; see [`ScoreMatrix::costs_into_multi`]).
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * stored.len()`.
    pub fn position_costs_into_multi(
        &self,
        pos: usize,
        edge_count: usize,
        queries: &[Label],
        stored: &[Label],
        out: &mut [f64],
    ) {
        if pos < edge_count {
            self.edge_scores.costs_into_multi(queries, stored, out);
        } else {
            self.vertex_scores.costs_into_multi(queries, stored, out);
        }
    }

    /// Whether vector position `pos` can never contribute cost (its
    /// score matrix is all-zero), for **any** query label. O(1) — this
    /// is the shared zero-prefix detection of the batched descent: one
    /// flag check replaces a per-probe scan of the priced level.
    #[inline]
    pub fn position_is_zero(&self, pos: usize, edge_count: usize) -> bool {
        if pos < edge_count {
            self.edge_scores.is_zero()
        } else {
            self.vertex_scores.is_zero()
        }
    }

    /// Whether both matrices are metrics (VP-tree backend precondition).
    pub fn is_metric(&self) -> bool {
        self.vertex_scores.is_metric() && self.edge_scores.is_metric()
    }
}

impl SuperimposedDistance for MutationDistance {
    #[inline]
    fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64 {
        self.vertex_scores.cost(a.label, b.label)
    }

    #[inline]
    fn edge_cost(&self, a: EdgeAttr, b: EdgeAttr) -> f64 {
        self.edge_scores.cost(a.label, b.label)
    }

    fn max_vertex_cost(&self) -> Option<f64> {
        Some(self.vertex_scores.max_cost())
    }

    fn max_edge_cost(&self) -> Option<f64> {
        Some(self.edge_scores.max_cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{graph::cycle_graph, graph::path_graph};

    #[test]
    fn edge_hamming_counts_mismatched_edges() {
        let d = MutationDistance::edge_hamming();
        let q = path_graph(3, Label(1), Label(0));
        let mut g = path_graph(3, Label(2), Label(0));
        // Relabel one edge of g.
        let e = {
            let mut b = pis_graph::GraphBuilder::new();
            let vs: Vec<_> = g.vertex_ids().map(|v| b.add_vertex(g.vertex(v))).collect();
            b.add_edge(vs[0], vs[1], EdgeAttr::labeled(Label(5))).unwrap();
            b.add_edge(vs[1], vs[2], g.edges()[1].attr).unwrap();
            b.build()
        };
        g = e;
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        let costs: Vec<f64> = embs.iter().map(|e| d.superposition_cost(&q, &g, e)).collect();
        // Vertex labels differ everywhere but cost nothing; exactly one
        // edge label mismatches under both orientations.
        assert_eq!(costs, vec![1.0, 1.0]);
    }

    #[test]
    fn unit_distance_counts_vertices_too() {
        let d = MutationDistance::unit();
        let q = cycle_graph(3, Label(1), Label(0));
        let g = cycle_graph(3, Label(2), Label(0));
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        for e in &embs {
            assert_eq!(d.superposition_cost(&q, &g, e), 3.0);
        }
    }

    #[test]
    fn label_vector_cost_splits_segments() {
        let d = MutationDistance::new(ScoreMatrix::zero(0), ScoreMatrix::unit(0));
        // 2 edges then 2 vertices.
        let a = [Label(3), Label(4), Label(1), Label(2)];
        let b = [Label(3), Label(9), Label(9), Label(9)];
        // One edge mismatch counts; vertex mismatches are free.
        assert_eq!(d.label_vector_cost(2, &a, &b), 1.0);
        // With unit vertex scores both vertex mismatches count too.
        let d2 = MutationDistance::unit();
        assert_eq!(d2.label_vector_cost(2, &a, &b), 3.0);
    }

    #[test]
    fn position_cost_respects_segment_boundary() {
        let d = MutationDistance::new(ScoreMatrix::uniform(0, 2.0), ScoreMatrix::unit(0));
        assert_eq!(d.position_cost(0, 1, Label(0), Label(1)), 1.0); // edge slot
        assert_eq!(d.position_cost(1, 1, Label(0), Label(1)), 2.0); // vertex slot
    }

    #[test]
    fn batched_position_costs_match_scalar() {
        let d = MutationDistance::new(ScoreMatrix::uniform(0, 2.0), ScoreMatrix::unit(0));
        let stored = [Label(0), Label(1), Label(5), Label(1)];
        let mut out = vec![0.0; stored.len()];
        for (pos, edge_count) in [(0usize, 1usize), (1, 1), (2, 4)] {
            for q in [Label(0), Label(1), Label(9)] {
                d.position_costs_into(pos, edge_count, q, &stored, &mut out);
                for (&s, &c) in stored.iter().zip(&out) {
                    assert_eq!(c, d.position_cost(pos, edge_count, q, s));
                }
            }
        }
    }

    #[test]
    fn multi_query_position_costs_match_scalar_rows() {
        let d = MutationDistance::new(ScoreMatrix::uniform(0, 2.0), ScoreMatrix::unit(0));
        let stored = [Label(0), Label(1), Label(5)];
        let queries = [Label(0), Label(5), Label(0)];
        let mut multi = vec![f64::NAN; queries.len() * stored.len()];
        let mut row = vec![f64::NAN; stored.len()];
        for (pos, edge_count) in [(0usize, 2usize), (2, 2), (1, 0)] {
            d.position_costs_into_multi(pos, edge_count, &queries, &stored, &mut multi);
            for (qi, &q) in queries.iter().enumerate() {
                d.position_costs_into(pos, edge_count, q, &stored, &mut row);
                assert_eq!(&multi[qi * stored.len()..(qi + 1) * stored.len()], &row[..]);
            }
        }
    }

    #[test]
    fn position_zero_tracks_segment_matrices() {
        let d = MutationDistance::edge_hamming(); // zero vertex matrix
        assert!(!d.position_is_zero(0, 2));
        assert!(!d.position_is_zero(1, 2));
        assert!(d.position_is_zero(2, 2));
        let unit = MutationDistance::unit();
        assert!(!unit.position_is_zero(0, 1));
        assert!(!unit.position_is_zero(1, 1));
    }

    #[test]
    fn metric_flags() {
        assert!(MutationDistance::unit().is_metric());
        assert!(!MutationDistance::edge_hamming().is_metric()); // zero vertex matrix
    }

    #[test]
    fn max_costs_reported() {
        let d = MutationDistance::unit();
        assert_eq!(d.max_vertex_cost(), Some(1.0));
        assert_eq!(d.max_edge_cost(), Some(1.0));
    }
}
