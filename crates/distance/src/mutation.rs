//! The mutation distance (MD) of Section 2.
//!
//! `MD = Σ_v D_V(l(v), l'(f(v))) + Σ_e D_E(l(e), l'(f(e)))` for a
//! superposition `f`, where `D_V`/`D_E` are [`ScoreMatrix`]es. The
//! paper's evaluation uses [`MutationDistance::edge_hamming`]: vertex
//! labels are ignored and each mismatched edge label costs 1 ("the
//! number of edges whose labels are mismatched").

use pis_graph::{EdgeAttr, Label, LabeledGraph, VertexAttr};

use crate::matrix::ScoreMatrix;
use crate::traits::{min_edge_costs_generic, min_vertex_costs_generic, SuperimposedDistance};

/// Score-matrix-based mutation distance over categorical labels.
#[derive(Clone, Debug)]
pub struct MutationDistance {
    vertex_scores: ScoreMatrix,
    edge_scores: ScoreMatrix,
}

impl MutationDistance {
    /// A mutation distance from explicit vertex and edge score matrices.
    pub fn new(vertex_scores: ScoreMatrix, edge_scores: ScoreMatrix) -> Self {
        MutationDistance { vertex_scores, edge_scores }
    }

    /// Unit mismatch costs on both vertices and edges.
    pub fn unit() -> Self {
        MutationDistance::new(ScoreMatrix::unit(0), ScoreMatrix::unit(0))
    }

    /// The paper's evaluation setting: vertex labels ignored, each edge
    /// label mismatch costs 1.
    pub fn edge_hamming() -> Self {
        MutationDistance::new(ScoreMatrix::zero(0), ScoreMatrix::unit(0))
    }

    /// The vertex score matrix.
    pub fn vertex_scores(&self) -> &ScoreMatrix {
        &self.vertex_scores
    }

    /// The edge score matrix.
    pub fn edge_scores(&self) -> &ScoreMatrix {
        &self.edge_scores
    }

    /// Cost of a vertex-label mutation.
    #[inline]
    pub fn vertex_label_cost(&self, a: Label, b: Label) -> f64 {
        self.vertex_scores.cost(a, b)
    }

    /// Cost of an edge-label mutation.
    #[inline]
    pub fn edge_label_cost(&self, a: Label, b: Label) -> f64 {
        self.edge_scores.cost(a, b)
    }

    /// Distance between two label vectors in the fragment index's
    /// class-canonical layout: the first `edge_count` positions hold
    /// edge labels, the rest vertex labels. (Edges lead so that
    /// cost-bearing trie levels come first — under the paper's
    /// edge-Hamming setting a vertex-first layout would fan out through
    /// zero-cost levels before any pruning could happen.)
    pub fn label_vector_cost(&self, edge_count: usize, a: &[Label], b: &[Label]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // Segment-split so each loop scans one score matrix without a
        // per-position branch (and all-zero segments cost nothing,
        // including the scan).
        let cut = edge_count.min(a.len());
        self.edge_scores.segment_cost(&a[..cut], &b[..cut])
            + self.vertex_scores.segment_cost(&a[cut..], &b[cut..])
    }

    /// Cost contributed by position `pos` of a class-canonical label
    /// vector (edge segment then vertex segment). The trie backend calls
    /// this per level while descending.
    #[inline]
    pub fn position_cost(&self, pos: usize, edge_count: usize, a: Label, b: Label) -> f64 {
        if pos < edge_count {
            self.edge_scores.cost(a, b)
        } else {
            self.vertex_scores.cost(a, b)
        }
    }

    /// Batched form of [`MutationDistance::position_cost`]: fills
    /// `out[k]` with the cost of mutating `query` into `stored[k]` at
    /// vector position `pos`. One call costs a whole trie level's
    /// distinct-label alphabet, which is what lets the flat trie's
    /// frontier descent price each label once instead of once per child
    /// node.
    ///
    /// # Panics
    /// Panics if `stored.len() != out.len()`.
    pub fn position_costs_into(
        &self,
        pos: usize,
        edge_count: usize,
        query: Label,
        stored: &[Label],
        out: &mut [f64],
    ) {
        if pos < edge_count {
            self.edge_scores.costs_into(query, stored, out);
        } else {
            self.vertex_scores.costs_into(query, stored, out);
        }
    }

    /// Multi-query form of [`MutationDistance::position_costs_into`]:
    /// prices every distinct query label of a probe batch against one
    /// trie level's alphabet in a single call (row `qi` covers
    /// `queries[qi]`; see [`ScoreMatrix::costs_into_multi`]).
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * stored.len()`.
    pub fn position_costs_into_multi(
        &self,
        pos: usize,
        edge_count: usize,
        queries: &[Label],
        stored: &[Label],
        out: &mut [f64],
    ) {
        if pos < edge_count {
            self.edge_scores.costs_into_multi(queries, stored, out);
        } else {
            self.vertex_scores.costs_into_multi(queries, stored, out);
        }
    }

    /// Whether vector position `pos` can never contribute cost (its
    /// score matrix is all-zero), for **any** query label. O(1) — this
    /// is the shared zero-prefix detection of the batched descent: one
    /// flag check replaces a per-probe scan of the priced level.
    #[inline]
    pub fn position_is_zero(&self, pos: usize, edge_count: usize) -> bool {
        if pos < edge_count {
            self.edge_scores.is_zero()
        } else {
            self.vertex_scores.is_zero()
        }
    }

    /// Whether both matrices are metrics (VP-tree backend precondition).
    pub fn is_metric(&self) -> bool {
        self.vertex_scores.is_metric() && self.edge_scores.is_metric()
    }
}

impl SuperimposedDistance for MutationDistance {
    #[inline]
    fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64 {
        self.vertex_scores.cost(a.label, b.label)
    }

    #[inline]
    fn edge_cost(&self, a: EdgeAttr, b: EdgeAttr) -> f64 {
        self.edge_scores.cost(a.label, b.label)
    }

    fn max_vertex_cost(&self) -> Option<f64> {
        Some(self.vertex_scores.max_cost())
    }

    fn max_edge_cost(&self) -> Option<f64> {
        Some(self.edge_scores.max_cost())
    }

    fn min_vertex_costs_into(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        out: &mut Vec<f64>,
    ) {
        // All-zero matrix (the paper's edge-Hamming setting): every
        // floor is 0 without scanning — weaker than the degree-filtered
        // scan's ∞ on infeasible vertices, but still admissible.
        if self.vertex_scores.is_zero() {
            out.clear();
            out.resize(pattern.vertex_count(), 0.0);
        } else {
            min_vertex_costs_generic(self, pattern, target, out);
        }
    }

    fn min_edge_costs_into(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        out: &mut Vec<f64>,
    ) {
        if self.edge_scores.is_zero() {
            out.clear();
            out.resize(pattern.edge_count(), 0.0);
        } else {
            min_edge_costs_generic(self, pattern, target, out);
        }
    }

    /// Label-histogram deficit bound, per segment: at most `count_t(l)`
    /// query elements of label `l` can land on a same-label target
    /// element, so the remaining `count_q(l) − count_t(l)` each pay at
    /// least the cheapest relabeling `min_{l'≠l present in target}
    /// cost(l, l')`. Per-element floors sum independently of where the
    /// elements actually land, so the bound is admissible for every
    /// monomorphism; under edge-Hamming it equals the structure-free
    /// minimum number of mismatched edges.
    fn pair_lower_bound(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> f64 {
        let edges = label_deficit_bound(
            &self.edge_scores,
            pattern.edges().iter().map(|e| e.attr.label),
            target.edges().iter().map(|e| e.attr.label),
        );
        if edges.is_infinite() {
            return edges;
        }
        edges
            + label_deficit_bound(
                &self.vertex_scores,
                pattern.vertex_ids().map(|v| pattern.vertex(v).label),
                target.vertex_ids().map(|v| target.vertex(v).label),
            )
    }

    /// Mutation costs depend only on labels, so the score matrix answers
    /// this exactly: the cheapest relabeling of `from` into any other
    /// label the target actually has (`∞` when the target offers no
    /// alternative, i.e. every image would have to keep the label).
    fn edge_label_substitution_floor(&self, from: Label, target_labels: &[Label]) -> Option<f64> {
        let mut cheapest = f64::INFINITY;
        for &lt in target_labels {
            if lt != from {
                cheapest = cheapest.min(self.edge_scores.cost(from, lt));
            }
        }
        Some(cheapest)
    }

    /// Mutation edge costs *are* label-pair costs, so the floor is the
    /// score matrix entry itself.
    fn edge_label_cost_floor(&self, from: Label, to: Label) -> Option<f64> {
        Some(self.edge_scores.cost(from, to))
    }
}

/// `Σ_l max(0, count_q(l) − count_t(l)) · min_{l'≠l ∈ target} cost(l, l')`
/// over one label segment, or `∞` when the query has more elements than
/// the target can injectively host at all.
fn label_deficit_bound(
    scores: &ScoreMatrix,
    q_labels: impl Iterator<Item = Label>,
    t_labels: impl Iterator<Item = Label>,
) -> f64 {
    let mut q: Vec<u32> = q_labels.map(|l| l.0).collect();
    let mut t: Vec<u32> = t_labels.map(|l| l.0).collect();
    if q.len() > t.len() {
        return f64::INFINITY;
    }
    if scores.is_zero() || q.is_empty() {
        return 0.0;
    }
    q.sort_unstable();
    t.sort_unstable();
    let mut t_distinct = t.clone();
    t_distinct.dedup();
    let mut bound = 0.0;
    let mut i = 0;
    while i < q.len() {
        let l = q[i];
        let mut run = 1;
        while i + run < q.len() && q[i + run] == l {
            run += 1;
        }
        let same = t.partition_point(|&x| x <= l) - t.partition_point(|&x| x < l);
        if run > same {
            let mut cheapest = f64::INFINITY;
            for &lt in &t_distinct {
                if lt != l {
                    cheapest = cheapest.min(scores.cost(Label(l), Label(lt)));
                }
            }
            bound += (run - same) as f64 * cheapest;
            if bound.is_infinite() {
                return f64::INFINITY;
            }
        }
        i += run;
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{graph::cycle_graph, graph::path_graph};

    #[test]
    fn edge_hamming_counts_mismatched_edges() {
        let d = MutationDistance::edge_hamming();
        let q = path_graph(3, Label(1), Label(0));
        let mut g = path_graph(3, Label(2), Label(0));
        // Relabel one edge of g.
        let e = {
            let mut b = pis_graph::GraphBuilder::new();
            let vs: Vec<_> = g.vertex_ids().map(|v| b.add_vertex(g.vertex(v))).collect();
            b.add_edge(vs[0], vs[1], EdgeAttr::labeled(Label(5))).unwrap();
            b.add_edge(vs[1], vs[2], g.edges()[1].attr).unwrap();
            b.build()
        };
        g = e;
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        let costs: Vec<f64> = embs.iter().map(|e| d.superposition_cost(&q, &g, e)).collect();
        // Vertex labels differ everywhere but cost nothing; exactly one
        // edge label mismatches under both orientations.
        assert_eq!(costs, vec![1.0, 1.0]);
    }

    #[test]
    fn unit_distance_counts_vertices_too() {
        let d = MutationDistance::unit();
        let q = cycle_graph(3, Label(1), Label(0));
        let g = cycle_graph(3, Label(2), Label(0));
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        for e in &embs {
            assert_eq!(d.superposition_cost(&q, &g, e), 3.0);
        }
    }

    #[test]
    fn label_vector_cost_splits_segments() {
        let d = MutationDistance::new(ScoreMatrix::zero(0), ScoreMatrix::unit(0));
        // 2 edges then 2 vertices.
        let a = [Label(3), Label(4), Label(1), Label(2)];
        let b = [Label(3), Label(9), Label(9), Label(9)];
        // One edge mismatch counts; vertex mismatches are free.
        assert_eq!(d.label_vector_cost(2, &a, &b), 1.0);
        // With unit vertex scores both vertex mismatches count too.
        let d2 = MutationDistance::unit();
        assert_eq!(d2.label_vector_cost(2, &a, &b), 3.0);
    }

    #[test]
    fn position_cost_respects_segment_boundary() {
        let d = MutationDistance::new(ScoreMatrix::uniform(0, 2.0), ScoreMatrix::unit(0));
        assert_eq!(d.position_cost(0, 1, Label(0), Label(1)), 1.0); // edge slot
        assert_eq!(d.position_cost(1, 1, Label(0), Label(1)), 2.0); // vertex slot
    }

    #[test]
    fn batched_position_costs_match_scalar() {
        let d = MutationDistance::new(ScoreMatrix::uniform(0, 2.0), ScoreMatrix::unit(0));
        let stored = [Label(0), Label(1), Label(5), Label(1)];
        let mut out = vec![0.0; stored.len()];
        for (pos, edge_count) in [(0usize, 1usize), (1, 1), (2, 4)] {
            for q in [Label(0), Label(1), Label(9)] {
                d.position_costs_into(pos, edge_count, q, &stored, &mut out);
                for (&s, &c) in stored.iter().zip(&out) {
                    assert_eq!(c, d.position_cost(pos, edge_count, q, s));
                }
            }
        }
    }

    #[test]
    fn multi_query_position_costs_match_scalar_rows() {
        let d = MutationDistance::new(ScoreMatrix::uniform(0, 2.0), ScoreMatrix::unit(0));
        let stored = [Label(0), Label(1), Label(5)];
        let queries = [Label(0), Label(5), Label(0)];
        let mut multi = vec![f64::NAN; queries.len() * stored.len()];
        let mut row = vec![f64::NAN; stored.len()];
        for (pos, edge_count) in [(0usize, 2usize), (2, 2), (1, 0)] {
            d.position_costs_into_multi(pos, edge_count, &queries, &stored, &mut multi);
            for (qi, &q) in queries.iter().enumerate() {
                d.position_costs_into(pos, edge_count, q, &stored, &mut row);
                assert_eq!(&multi[qi * stored.len()..(qi + 1) * stored.len()], &row[..]);
            }
        }
    }

    #[test]
    fn position_zero_tracks_segment_matrices() {
        let d = MutationDistance::edge_hamming(); // zero vertex matrix
        assert!(!d.position_is_zero(0, 2));
        assert!(!d.position_is_zero(1, 2));
        assert!(d.position_is_zero(2, 2));
        let unit = MutationDistance::unit();
        assert!(!unit.position_is_zero(0, 1));
        assert!(!unit.position_is_zero(1, 1));
    }

    #[test]
    fn metric_flags() {
        assert!(MutationDistance::unit().is_metric());
        assert!(!MutationDistance::edge_hamming().is_metric()); // zero vertex matrix
    }

    #[test]
    fn max_costs_reported() {
        let d = MutationDistance::unit();
        assert_eq!(d.max_vertex_cost(), Some(1.0));
        assert_eq!(d.max_edge_cost(), Some(1.0));
    }

    #[test]
    fn zero_matrix_min_tables_are_all_zero() {
        let d = MutationDistance::edge_hamming();
        // 3-path into 2-path: the generic vertex scan would report ∞
        // for the degree-2 middle vertex, but the zero-matrix fast path
        // claims only 0 — weaker yet admissible.
        let q = path_graph(3, Label(1), Label(0));
        let g = path_graph(2, Label(2), Label(0));
        let mut out = Vec::new();
        d.min_vertex_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![0.0; 3]);
        // Edge matrix is unit, so edges go through the generic scan.
        d.min_edge_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![f64::INFINITY; 2]);
    }

    #[test]
    fn pair_lower_bound_counts_label_deficits() {
        let d = MutationDistance::edge_hamming();
        // Query ring 1,2,1,2,1,2 vs target ring 2,2,2,2,2,2: three
        // label-1 edges have no same-label image, each paying ≥ 1.
        let ring = |labels: &[u32]| {
            let mut b = pis_graph::GraphBuilder::new();
            let vs = b.add_vertices(labels.len(), VertexAttr::labeled(Label(0)));
            for (i, &l) in labels.iter().enumerate() {
                b.add_edge(vs[i], vs[(i + 1) % labels.len()], EdgeAttr::labeled(Label(l))).unwrap();
            }
            b.build()
        };
        let q = ring(&[1, 2, 1, 2, 1, 2]);
        let g = ring(&[2, 2, 2, 2, 2, 2]);
        assert_eq!(d.pair_lower_bound(&q, &g), 3.0);
        // And the bound is tight from below: the true distance is 3.
        // A matching multiset gives bound 0 even when structure differs.
        assert_eq!(d.pair_lower_bound(&q, &ring(&[1, 1, 1, 2, 2, 2])), 0.0);
    }

    #[test]
    fn pair_lower_bound_refutes_oversized_queries() {
        let d = MutationDistance::edge_hamming();
        let q = path_graph(4, Label(0), Label(0));
        let g = path_graph(3, Label(0), Label(0));
        assert!(d.pair_lower_bound(&q, &g).is_infinite());
    }

    #[test]
    fn pair_lower_bound_never_exceeds_true_distance() {
        // Exhaustive check on small rings: bound ≤ brute-force minimum
        // superposition cost whenever a monomorphism exists.
        let d = MutationDistance::unit();
        let ring = |vl: [u32; 4], el: [u32; 4]| {
            let mut b = pis_graph::GraphBuilder::new();
            let vs: Vec<_> =
                vl.iter().map(|&l| b.add_vertex(VertexAttr::labeled(Label(l)))).collect();
            for (i, &l) in el.iter().enumerate() {
                b.add_edge(vs[i], vs[(i + 1) % 4], EdgeAttr::labeled(Label(l))).unwrap();
            }
            b.build()
        };
        let q = ring([0, 1, 0, 1], [2, 3, 2, 3]);
        for g in [
            ring([0, 0, 0, 0], [2, 2, 2, 2]),
            ring([1, 1, 0, 0], [3, 3, 3, 2]),
            ring([0, 1, 0, 1], [2, 3, 2, 3]),
        ] {
            let best = embeddings(&q, &g, IsoConfig::STRUCTURE)
                .iter()
                .map(|e| d.superposition_cost(&q, &g, e))
                .fold(f64::INFINITY, f64::min);
            assert!(best.is_finite());
            let lb = d.pair_lower_bound(&q, &g);
            assert!(lb <= best + 1e-12, "precheck {lb} exceeds true distance {best}");
        }
    }
}
