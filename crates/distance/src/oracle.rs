//! Brute-force minimum superimposed distance (Definition 1).
//!
//! `d(Q, G) = min_{Q' ⊑ G, Q' ≅ Q} d(Q, Q')` — computed by enumerating
//! *every* structure-preserving embedding of `Q` into `G` and taking the
//! cheapest superposition. `None` encodes the paper's `d(Q, G) = ∞`
//! case (`Q ⊄ G`).
//!
//! This is the reference implementation ("the naive solution" of
//! Section 2): exact but exponential. `pis-core::verify` implements the
//! branch-and-bound equivalent used in production; its tests compare
//! against this oracle.

use std::ops::ControlFlow;

use pis_graph::iso::{IsoConfig, SubgraphMatcher};
use pis_graph::LabeledGraph;

use crate::traits::SuperimposedDistance;

/// Exact minimum superimposed distance by full enumeration.
///
/// Returns `None` when `pattern` is not structure-isomorphic to any
/// subgraph of `target` (infinite distance).
pub fn min_superimposed_distance_brute(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
) -> Option<f64> {
    let matcher = SubgraphMatcher::new(pattern, target, IsoConfig::STRUCTURE);
    let mut best: Option<f64> = None;
    matcher.for_each(|embedding| {
        let cost = distance.superposition_cost(pattern, target, embedding);
        if best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
        if best == Some(0.0) {
            // A zero-cost superposition can never be beaten.
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    best
}

/// Exact SSSD answer set by brute force: all database indices whose
/// minimum superimposed distance from `query` is at most `sigma`
/// (Definition 2). The test-suite oracle for every search strategy.
pub fn sssd_brute(
    database: &[LabeledGraph],
    query: &LabeledGraph,
    distance: &dyn SuperimposedDistance,
    sigma: f64,
) -> Vec<usize> {
    database
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            min_superimposed_distance_brute(query, g, distance).is_some_and(|d| d <= sigma)
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    /// Builds a labeled cycle with per-edge labels.
    fn cycle_with_edge_labels(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    #[test]
    fn distance_zero_for_exact_containment() {
        let d = MutationDistance::edge_hamming();
        let q = pis_graph::graph::path_graph(3, Label(0), Label(1));
        let g = pis_graph::graph::cycle_graph(6, Label(0), Label(1));
        assert_eq!(min_superimposed_distance_brute(&q, &g, &d), Some(0.0));
    }

    #[test]
    fn distance_infinite_without_structural_match() {
        let d = MutationDistance::edge_hamming();
        let q = pis_graph::graph::cycle_graph(4, Label(0), Label(0));
        let g = pis_graph::graph::path_graph(6, Label(0), Label(0));
        assert_eq!(min_superimposed_distance_brute(&q, &g, &d), None);
    }

    #[test]
    fn minimum_over_superpositions_is_taken() {
        // Query: 6-cycle with edge labels all 1.
        // Target: 6-cycle with labels [1,1,1,1,1,2]; rotating the query
        // cannot avoid one mismatch, so MD = 1.
        let d = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]);
        let g = cycle_with_edge_labels(&[1, 1, 1, 1, 1, 2]);
        assert_eq!(min_superimposed_distance_brute(&q, &g, &d), Some(1.0));
        // Two separated mismatches cost 2.
        let g2 = cycle_with_edge_labels(&[2, 1, 1, 2, 1, 1]);
        assert_eq!(min_superimposed_distance_brute(&q, &g2, &d), Some(2.0));
    }

    #[test]
    fn sssd_brute_filters_by_threshold() {
        let d = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 1, 1]);
        let db = vec![
            cycle_with_edge_labels(&[1, 1, 1]),                  // d = 0
            cycle_with_edge_labels(&[1, 1, 2]),                  // d = 1
            cycle_with_edge_labels(&[2, 2, 2]),                  // d = 3
            pis_graph::graph::path_graph(4, Label(0), Label(1)), // no match
        ];
        assert_eq!(sssd_brute(&db, &q, &d, 0.0), vec![0]);
        assert_eq!(sssd_brute(&db, &q, &d, 1.0), vec![0, 1]);
        assert_eq!(sssd_brute(&db, &q, &d, 3.0), vec![0, 1, 2]);
    }

    #[test]
    fn paper_example_1_mutation_distances() {
        // A compact analogue of the paper's Example 1: the query ring
        // appears in three molecules; one matches with distance 1, one
        // with 3, one with 1. Threshold 2 returns the first and third.
        let d = MutationDistance::edge_hamming();
        let q = cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]);
        let db = vec![
            cycle_with_edge_labels(&[1, 2, 1, 2, 1, 1]), // 1 mutation
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]), // 3 mutations
            cycle_with_edge_labels(&[1, 2, 1, 2, 2, 2]), // 1 mutation
        ];
        assert_eq!(sssd_brute(&db, &q, &d, 2.0 - f64::EPSILON), vec![0, 2]);
    }
}
