//! The superimposed-distance abstraction.

use pis_graph::{EdgeAttr, Embedding, Label, LabeledGraph, VertexAttr};

/// A distance measure applied to two superimposed graphs (Section 2).
///
/// Implementations supply per-vertex and per-edge costs; the distance of
/// a whole superposition is their sum ([`superposition_cost`]). Every
/// implementation must be *decomposable*: the cost of a superposition is
/// exactly the sum of independent per-element costs, which is what makes
/// the partition lower bound of Eq. (2) hold.
///
/// Distances must be [`Sync`]: index construction and candidate
/// verification fan work out across threads and share the distance
/// immutably.
///
/// [`superposition_cost`]: SuperimposedDistance::superposition_cost
pub trait SuperimposedDistance: Sync {
    /// Cost of superimposing vertex attributes `a` (query side) onto `b`
    /// (database side). Must be symmetric and zero for `a == b`.
    fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64;

    /// Cost of superimposing edge attributes; same contract as
    /// [`vertex_cost`](SuperimposedDistance::vertex_cost).
    fn edge_cost(&self, a: EdgeAttr, b: EdgeAttr) -> f64;

    /// Total cost of superimposing `pattern` onto its image in `target`
    /// under `embedding` (a structure-preserving mapping produced by
    /// `pis-graph`'s matcher).
    fn superposition_cost(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        embedding: &Embedding,
    ) -> f64 {
        let mut total = 0.0;
        for v in pattern.vertex_ids() {
            total += self.vertex_cost(pattern.vertex(v), target.vertex(embedding.vertex_image(v)));
        }
        for e in pattern.edge_ids() {
            let te = embedding.edge_image(pattern, target, e);
            total += self.edge_cost(pattern.edge(e).attr, target.edge(te).attr);
        }
        total
    }

    /// An upper bound on any single vertex cost, if one exists; lets
    /// backends size pruning bounds. `None` means unbounded.
    fn max_vertex_cost(&self) -> Option<f64> {
        None
    }

    /// An upper bound on any single edge cost, if one exists.
    fn max_edge_cost(&self) -> Option<f64> {
        None
    }

    /// Fills `out` (indexed by pattern vertex) with an admissible floor
    /// on the vertex cost each pattern vertex pays under **any**
    /// monomorphism of `pattern` into `target`: the minimum
    /// [`vertex_cost`](SuperimposedDistance::vertex_cost) over target
    /// vertices of degree ≥ the pattern vertex's degree (neighbors map
    /// injectively, so every image has at least the pattern degree).
    /// When no target vertex is degree-compatible the floor is
    /// `f64::INFINITY` — no monomorphism can map that vertex at all.
    ///
    /// Implementations may override with a faster but still admissible
    /// table (e.g. all-zero when vertex costs are identically zero).
    fn min_vertex_costs_into(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        out: &mut Vec<f64>,
    ) {
        min_vertex_costs_generic(self, pattern, target, out);
    }

    /// Fills `out` (indexed by pattern edge) with an admissible floor on
    /// the edge cost each pattern edge pays under any monomorphism: the
    /// minimum [`edge_cost`](SuperimposedDistance::edge_cost) over
    /// target edges whose sorted endpoint degrees dominate the pattern
    /// edge's (`lo_t ≥ lo_q` and `hi_t ≥ hi_q` — a necessary condition
    /// for hosting the edge in either orientation). `f64::INFINITY` when
    /// no target edge qualifies.
    fn min_edge_costs_into(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        out: &mut Vec<f64>,
    ) {
        min_edge_costs_generic(self, pattern, target, out);
    }

    /// An admissible lower bound on the superposition cost of **any**
    /// monomorphism of `pattern` into `target`, cheap enough to run
    /// before the subgraph search. `f64::INFINITY` asserts that no
    /// monomorphism exists. The default claims nothing.
    fn pair_lower_bound(&self, _pattern: &LabeledGraph, _target: &LabeledGraph) -> f64 {
        0.0
    }

    /// The cheapest cost this distance can charge an edge labeled `from`
    /// that is forced onto a *differently labeled* target edge, where
    /// `target_labels` lists the distinct edge labels the target offers.
    /// Powers capacity-deficit suffix bounds: once more `from`-labeled
    /// query edges remain than the target supplies, each extra one pays
    /// at least this floor. `None` means the distance cannot bound
    /// relabeling by label alone (e.g. weight-based costs), disabling
    /// the deficit refinement; the default claims nothing.
    fn edge_label_substitution_floor(&self, _from: Label, _target_labels: &[Label]) -> Option<f64> {
        None
    }

    /// An admissible floor on [`edge_cost`] between *any* edge labeled
    /// `from` and *any* edge labeled `to`. Powers label-driven forward
    /// checking: once a query vertex is placed, each of its unpaid edges
    /// is confined to the image's incident edges, so it pays at least
    /// the cheapest such floor. `None` means the distance cannot bound
    /// edge costs by labels alone (e.g. weight-based costs), disabling
    /// forward checking; the default claims nothing.
    ///
    /// [`edge_cost`]: SuperimposedDistance::edge_cost
    fn edge_label_cost_floor(&self, _from: Label, _to: Label) -> Option<f64> {
        None
    }
}

/// The generic degree-filtered scan behind
/// [`SuperimposedDistance::min_vertex_costs_into`], callable from
/// overrides that only fast-path special cases.
pub fn min_vertex_costs_generic<D: SuperimposedDistance + ?Sized>(
    distance: &D,
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(pattern.vertex_count());
    for p in pattern.vertex_ids() {
        let pa = pattern.vertex(p);
        let pd = pattern.degree(p);
        let mut floor = f64::INFINITY;
        for t in target.vertex_ids() {
            if target.degree(t) < pd {
                continue;
            }
            let c = distance.vertex_cost(pa, target.vertex(t));
            if c < floor {
                floor = c;
                if floor == 0.0 {
                    break;
                }
            }
        }
        out.push(floor);
    }
}

/// The generic degree-filtered scan behind
/// [`SuperimposedDistance::min_edge_costs_into`].
pub fn min_edge_costs_generic<D: SuperimposedDistance + ?Sized>(
    distance: &D,
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(pattern.edge_count());
    for e in pattern.edges() {
        let (da, db) = (pattern.degree(e.source), pattern.degree(e.target));
        let (lo_q, hi_q) = if da <= db { (da, db) } else { (db, da) };
        let mut floor = f64::INFINITY;
        for te in target.edges() {
            let (ta, tb) = (target.degree(te.source), target.degree(te.target));
            let (lo_t, hi_t) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            if lo_t < lo_q || hi_t < hi_q {
                continue;
            }
            let c = distance.edge_cost(e.attr, te.attr);
            if c < floor {
                floor = c;
                if floor == 0.0 {
                    break;
                }
            }
        }
        out.push(floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{graph::path_graph, Label};

    /// A toy distance: vertex cost = label difference, edge cost = 0.
    struct VertexDiff;

    impl SuperimposedDistance for VertexDiff {
        fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64 {
            (a.label.0 as f64 - b.label.0 as f64).abs()
        }
        fn edge_cost(&self, _a: EdgeAttr, _b: EdgeAttr) -> f64 {
            0.0
        }
    }

    #[test]
    fn default_superposition_cost_sums_elements() {
        let q = path_graph(3, Label(0), Label(0));
        let g = path_graph(3, Label(2), Label(0));
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        // Identity and reversal; both superimpose three label-0 vertices
        // onto three label-2 vertices.
        assert_eq!(embs.len(), 2);
        for e in &embs {
            assert_eq!(VertexDiff.superposition_cost(&q, &g, e), 6.0);
        }
    }

    #[test]
    fn min_vertex_costs_respect_degree_feasibility() {
        // Pattern 3-path (degrees 1,2,1) into a 2-path (degrees 1,1):
        // the middle pattern vertex has no degree-compatible image.
        let q = path_graph(3, Label(3), Label(0));
        let g = path_graph(2, Label(0), Label(0));
        let mut out = Vec::new();
        VertexDiff.min_vertex_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![3.0, f64::INFINITY, 3.0]);
        // Against a 3-path every vertex has a compatible image.
        let g = path_graph(3, Label(1), Label(0));
        VertexDiff.min_vertex_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn min_edge_costs_respect_sorted_degree_domination() {
        // Each 3-path edge has sorted endpoint degrees (1,2); a 2-path
        // edge only offers (1,1), so no edge can host it.
        let q = path_graph(3, Label(0), Label(0));
        let g = path_graph(2, Label(0), Label(0));
        let mut out = Vec::new();
        VertexDiff.min_edge_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![f64::INFINITY, f64::INFINITY]);
        let g = path_graph(4, Label(0), Label(0));
        VertexDiff.min_edge_costs_into(&q, &g, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn default_pair_lower_bound_claims_nothing() {
        let q = path_graph(2, Label(0), Label(0));
        let g = path_graph(2, Label(9), Label(0));
        assert_eq!(VertexDiff.pair_lower_bound(&q, &g), 0.0);
    }
}
