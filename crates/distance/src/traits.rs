//! The superimposed-distance abstraction.

use pis_graph::{EdgeAttr, Embedding, LabeledGraph, VertexAttr};

/// A distance measure applied to two superimposed graphs (Section 2).
///
/// Implementations supply per-vertex and per-edge costs; the distance of
/// a whole superposition is their sum ([`superposition_cost`]). Every
/// implementation must be *decomposable*: the cost of a superposition is
/// exactly the sum of independent per-element costs, which is what makes
/// the partition lower bound of Eq. (2) hold.
///
/// Distances must be [`Sync`]: index construction and candidate
/// verification fan work out across threads and share the distance
/// immutably.
///
/// [`superposition_cost`]: SuperimposedDistance::superposition_cost
pub trait SuperimposedDistance: Sync {
    /// Cost of superimposing vertex attributes `a` (query side) onto `b`
    /// (database side). Must be symmetric and zero for `a == b`.
    fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64;

    /// Cost of superimposing edge attributes; same contract as
    /// [`vertex_cost`](SuperimposedDistance::vertex_cost).
    fn edge_cost(&self, a: EdgeAttr, b: EdgeAttr) -> f64;

    /// Total cost of superimposing `pattern` onto its image in `target`
    /// under `embedding` (a structure-preserving mapping produced by
    /// `pis-graph`'s matcher).
    fn superposition_cost(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        embedding: &Embedding,
    ) -> f64 {
        let mut total = 0.0;
        for v in pattern.vertex_ids() {
            total += self.vertex_cost(pattern.vertex(v), target.vertex(embedding.vertex_image(v)));
        }
        for e in pattern.edge_ids() {
            let te = embedding.edge_image(pattern, target, e);
            total += self.edge_cost(pattern.edge(e).attr, target.edge(te).attr);
        }
        total
    }

    /// An upper bound on any single vertex cost, if one exists; lets
    /// backends size pruning bounds. `None` means unbounded.
    fn max_vertex_cost(&self) -> Option<f64> {
        None
    }

    /// An upper bound on any single edge cost, if one exists.
    fn max_edge_cost(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{graph::path_graph, Label};

    /// A toy distance: vertex cost = label difference, edge cost = 0.
    struct VertexDiff;

    impl SuperimposedDistance for VertexDiff {
        fn vertex_cost(&self, a: VertexAttr, b: VertexAttr) -> f64 {
            (a.label.0 as f64 - b.label.0 as f64).abs()
        }
        fn edge_cost(&self, _a: EdgeAttr, _b: EdgeAttr) -> f64 {
            0.0
        }
    }

    #[test]
    fn default_superposition_cost_sums_elements() {
        let q = path_graph(3, Label(0), Label(0));
        let g = path_graph(3, Label(2), Label(0));
        let embs = embeddings(&q, &g, IsoConfig::STRUCTURE);
        // Identity and reversal; both superimpose three label-0 vertices
        // onto three label-2 vertices.
        assert_eq!(embs.len(), 2);
        for e in &embs {
            assert_eq!(VertexDiff.superposition_cost(&q, &g, e), 6.0);
        }
    }
}
