//! Classic graph algorithms used by the dataset generator and stats.

use crate::graph::LabeledGraph;
use crate::ids::VertexId;

/// Marks bridge edges (edges whose removal disconnects their component).
///
/// Returns one flag per edge; `true` means bridge. Non-bridge edges lie
/// on a cycle — the dataset generator uses this to tell ring bonds from
/// chain bonds. Iterative Tarjan low-link, `O(V + E)`.
pub fn bridges(g: &LabeledGraph) -> Vec<bool> {
    let n = g.vertex_count();
    let mut is_bridge = vec![false; g.edge_count()];
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut timer: u32 = 0;

    // Iterative DFS; each frame tracks the edge used to enter the vertex
    // so it is not treated as a back edge.
    enum Frame {
        Enter { v: VertexId, via_edge: Option<u32> },
        Exit { v: VertexId, parent: Option<VertexId>, via_edge: Option<u32> },
    }
    for root in g.vertex_ids() {
        if disc[root.index()] != u32::MAX {
            continue;
        }
        let mut stack = vec![Frame::Enter { v: root, via_edge: None }];
        let mut parents: Vec<Option<VertexId>> = vec![None; n];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter { v, via_edge } => {
                    if disc[v.index()] != u32::MAX {
                        continue;
                    }
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push(Frame::Exit { v, parent: parents[v.index()], via_edge });
                    for &(w, e) in g.neighbors(v) {
                        if Some(e.0) == via_edge {
                            continue;
                        }
                        if disc[w.index()] == u32::MAX {
                            parents[w.index()] = Some(v);
                            stack.push(Frame::Enter { v: w, via_edge: Some(e.0) });
                        } else {
                            // Back edge.
                            low[v.index()] = low[v.index()].min(disc[w.index()]);
                        }
                    }
                }
                Frame::Exit { v, parent, via_edge } => {
                    if let (Some(p), Some(e)) = (parent, via_edge) {
                        low[p.index()] = low[p.index()].min(low[v.index()]);
                        if low[v.index()] > disc[p.index()] {
                            is_bridge[e as usize] = true;
                        }
                    }
                }
            }
        }
    }
    is_bridge
}

/// The cyclomatic number `E − V + C` (number of independent cycles);
/// equals the ring count of a molecule skeleton.
pub fn cyclomatic_number(g: &LabeledGraph) -> usize {
    let components = g.connected_components().len();
    g.edge_count() + components - g.vertex_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{cycle_graph, path_graph, EdgeAttr, GraphBuilder, VertexAttr};
    use crate::ids::Label;

    #[test]
    fn all_path_edges_are_bridges() {
        let g = path_graph(5, Label(0), Label(0));
        assert!(bridges(&g).iter().all(|&b| b));
        assert_eq!(cyclomatic_number(&g), 0);
    }

    #[test]
    fn no_cycle_edge_is_a_bridge() {
        let g = cycle_graph(6, Label(0), Label(0));
        assert!(bridges(&g).iter().all(|&b| !b));
        assert_eq!(cyclomatic_number(&g), 1);
    }

    #[test]
    fn ring_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: only the tail is a bridge.
        let mut b = GraphBuilder::new();
        let vs = b.add_vertices(4, VertexAttr::labeled(Label(0)));
        b.add_edge(vs[0], vs[1], EdgeAttr::labeled(Label(0))).unwrap();
        b.add_edge(vs[1], vs[2], EdgeAttr::labeled(Label(0))).unwrap();
        b.add_edge(vs[2], vs[0], EdgeAttr::labeled(Label(0))).unwrap();
        let tail = b.add_edge(vs[2], vs[3], EdgeAttr::labeled(Label(0))).unwrap();
        let g = b.build();
        let flags = bridges(&g);
        for e in g.edge_ids() {
            assert_eq!(flags[e.index()], e == tail, "edge {e}");
        }
        assert_eq!(cyclomatic_number(&g), 1);
    }

    #[test]
    fn fused_rings_have_no_bridges() {
        // Two triangles sharing edge 0-1.
        let mut b = GraphBuilder::new();
        let vs = b.add_vertices(4, VertexAttr::labeled(Label(0)));
        for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 3), (3, 0)] {
            b.add_edge(vs[u], vs[v], EdgeAttr::labeled(Label(0))).unwrap();
        }
        let g = b.build();
        assert!(bridges(&g).iter().all(|&x| !x));
        assert_eq!(cyclomatic_number(&g), 2);
    }

    #[test]
    fn disconnected_components_handled() {
        let mut b = GraphBuilder::new();
        let vs = b.add_vertices(5, VertexAttr::labeled(Label(0)));
        // Component 1: triangle; component 2: single edge.
        b.add_edge(vs[0], vs[1], EdgeAttr::labeled(Label(0))).unwrap();
        b.add_edge(vs[1], vs[2], EdgeAttr::labeled(Label(0))).unwrap();
        b.add_edge(vs[2], vs[0], EdgeAttr::labeled(Label(0))).unwrap();
        let e = b.add_edge(vs[3], vs[4], EdgeAttr::labeled(Label(0))).unwrap();
        let g = b.build();
        let flags = bridges(&g);
        assert_eq!(flags.iter().filter(|&&x| x).count(), 1);
        assert!(flags[e.index()]);
        assert_eq!(cyclomatic_number(&g), 1);
    }
}
