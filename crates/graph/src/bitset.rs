//! A dense bitset over database graph ids.
//!
//! The PIS candidate funnel repeatedly intersects "which graphs are
//! still alive" sets whose universe is the whole database. A dense
//! one-bit-per-graph representation makes every intersection a
//! word-parallel `AND` over `n/64` words and makes membership tests a
//! single shift — the constant factors the funnel lives on (`DESIGN.md`
//! §6). The set is reusable: [`GraphBitSet::reset`] re-sizes and clears
//! without giving back its allocation.

use crate::ids::GraphId;

/// Word width of the backing storage.
const BITS: usize = u64::BITS as usize;

/// A fixed-universe set of [`GraphId`]s backed by `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphBitSet {
    words: Vec<u64>,
    /// Universe size in bits; the last word may be partial.
    len: usize,
}

impl GraphBitSet {
    /// An empty set over a universe of `len` graphs.
    pub fn new(len: usize) -> Self {
        GraphBitSet { words: vec![0; len.div_ceil(BITS)], len }
    }

    /// The universe size (number of addressable graphs, not the number
    /// of members).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Clears the set and re-sizes its universe, keeping the allocation.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(BITS), 0);
    }

    /// Removes every member (universe unchanged).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every graph of the universe.
    pub fn fill(&mut self) {
        self.words.fill(u64::MAX);
        // Mask the tail so `count`/iteration never see phantom members.
        let tail = self.len % BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Adds `g` to the set. `g` must lie inside the universe: debug
    /// builds panic on violation; release builds (this is the funnel's
    /// innermost loop) skip the check, and an out-of-universe id either
    /// panics on the word index or sets a phantom tail bit that later
    /// iteration would surface.
    #[inline]
    pub fn insert(&mut self, g: GraphId) {
        debug_assert!(g.index() < self.len, "graph id outside the bitset universe");
        self.words[g.index() / BITS] |= 1u64 << (g.index() % BITS);
    }

    /// Whether `g` is a member.
    #[inline]
    pub fn contains(&self, g: GraphId) -> bool {
        let w = g.index() / BITS;
        w < self.words.len() && (self.words[w] >> (g.index() % BITS)) & 1 == 1
    }

    /// Word-parallel intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &GraphBitSet) {
        assert_eq!(self.len, other.len, "bitset universes differ");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Number of members (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = GraphId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(GraphId((wi * BITS + b) as u32))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(set: &GraphBitSet) -> Vec<u32> {
        set.iter().map(|g| g.0).collect()
    }

    #[test]
    fn insert_and_contains_across_word_boundaries() {
        let mut s = GraphBitSet::new(130);
        assert!(s.is_empty());
        for i in [0u32, 63, 64, 127, 129] {
            s.insert(GraphId(i));
        }
        assert_eq!(s.count(), 5);
        assert!(s.contains(GraphId(64)));
        assert!(!s.contains(GraphId(65)));
        assert_eq!(ids(&s), vec![0, 63, 64, 127, 129]);
    }

    #[test]
    fn fill_masks_the_tail() {
        let mut s = GraphBitSet::new(70);
        s.fill();
        assert_eq!(s.count(), 70);
        assert_eq!(s.iter().last(), Some(GraphId(69)));
        // A multiple-of-64 universe has no tail to mask.
        let mut t = GraphBitSet::new(128);
        t.fill();
        assert_eq!(t.count(), 128);
    }

    #[test]
    fn intersection_is_word_parallel_and() {
        let mut a = GraphBitSet::new(200);
        let mut b = GraphBitSet::new(200);
        for i in (0..200).step_by(2) {
            a.insert(GraphId(i));
        }
        for i in (0..200).step_by(3) {
            b.insert(GraphId(i));
        }
        a.intersect_with(&b);
        assert_eq!(ids(&a), (0..200).step_by(6).collect::<Vec<_>>());
    }

    #[test]
    fn reset_keeps_nothing() {
        let mut s = GraphBitSet::new(10);
        s.fill();
        s.reset(65);
        assert_eq!(s.universe(), 65);
        assert!(s.is_empty());
        s.insert(GraphId(64));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_yields_ascending_ids() {
        let mut s = GraphBitSet::new(100);
        for i in [90u32, 5, 40] {
            s.insert(GraphId(i));
        }
        assert_eq!(ids(&s), vec![5, 40, 90]);
    }

    #[test]
    fn empty_universe() {
        let mut s = GraphBitSet::new(0);
        s.fill();
        assert_eq!(s.count(), 0);
        assert!(s.iter().next().is_none());
    }
}
