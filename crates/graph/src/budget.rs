//! Query budgets and cooperative cancellation.
//!
//! A [`QueryBudget`] bounds one search by wall-clock deadline, by a
//! cooperative work-unit budget, and/or by an external cancellation
//! token. Long-running loops across the PIS crates call
//! [`BudgetState::checkpoint`] at natural units of work (a trie level,
//! a branch-and-bound node, a DFS expansion batch); when the budget is
//! exhausted the loop unwinds cooperatively and the caller degrades its
//! result instead of erroring.
//!
//! The default budget is unlimited, and the unlimited fast path is one
//! relaxed boolean load — searches without a budget pay nothing
//! measurable (the bench harness' `budget` line measures this rather
//! than asserting it).
//!
//! Trip state is *sticky*: once any checkpoint reports exhaustion,
//! every later checkpoint of the same query reports it too, so a trip
//! observed deep in one phase unwinds every enclosing loop without
//! re-deriving the decision. The first tripping site is recorded for
//! diagnostics.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a budget checkpoint lives (and where a trip was first seen).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointSite {
    /// The flat-trie range-query descent (per frontier level).
    RangeDescent,
    /// The exact-MWIS branch-and-bound (per branch node).
    Partition,
    /// The structure-check matcher (per candidate batch).
    StructureCheck,
    /// The verification DFS (per expansion batch).
    Verify,
    /// The kNN doubling-round driver (per round).
    Knn,
}

impl CheckpointSite {
    const ALL: [CheckpointSite; 5] = [
        CheckpointSite::RangeDescent,
        CheckpointSite::Partition,
        CheckpointSite::StructureCheck,
        CheckpointSite::Verify,
        CheckpointSite::Knn,
    ];

    /// Stable name, shared with the failpoint registry.
    pub fn name(self) -> &'static str {
        match self {
            CheckpointSite::RangeDescent => "range-descent",
            CheckpointSite::Partition => "partition",
            CheckpointSite::StructureCheck => "structure-check",
            CheckpointSite::Verify => "verify",
            CheckpointSite::Knn => "knn",
        }
    }
}

/// Per-query resource limits. The default is unlimited.
#[derive(Clone, Debug, Default)]
pub struct QueryBudget {
    /// Wall-clock limit, measured from the start of the query.
    pub time_limit: Option<Duration>,
    /// Cooperative work-unit limit (trie levels + B&B nodes + DFS
    /// expansion batches — the units [`BudgetState::checkpoint`] is
    /// fed). Deterministic, unlike the wall clock.
    pub node_limit: Option<u64>,
    /// External cancellation token: set it to `true` from any thread to
    /// stop the query at its next checkpoint.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Whether any limit or token is set.
    pub fn is_limited(&self) -> bool {
        self.time_limit.is_some() || self.node_limit.is_some() || self.cancel.is_some()
    }
}

/// Counters a truncated search reports back (see `Completeness` in
/// pis-core).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BudgetStats {
    /// Checkpoints consulted.
    pub checkpoints: u64,
    /// Work units charged.
    pub work_units: u64,
}

/// What an armed failpoint asks the consulting site to do. A re-export
/// of the vendored registry's action so crates that only *consult*
/// failpoints (via [`failpoint`]) need no direct `failpoints`
/// dependency or feature plumbing of their own.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailAction {
    /// Behave as if the budget tripped at this site.
    Trip,
    /// Panic, modeling a crashed worker.
    Panic,
}

/// Consults the fault-injection registry for a *dynamic* site name
/// (shard scatter sites are minted per shard/replica, so they cannot be
/// [`CheckpointSite`] variants). Always `None` unless the test-only
/// `failpoints` feature is enabled.
pub fn failpoint(name: &str) -> Option<FailAction> {
    #[cfg(feature = "failpoints")]
    {
        failpoints::consult(name).map(|action| match action {
            failpoints::Action::Trip => FailAction::Trip,
            failpoints::Action::Panic => FailAction::Panic,
        })
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        None
    }
}

/// Marker error for a budget-interrupted computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interrupted;

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query budget exhausted")
    }
}

impl std::error::Error for Interrupted {}

/// Resolved, shareable run-state of one query's budget: the deadline is
/// fixed at construction, and counters are atomics so parallel workers
/// checkpoint against the same state without locks.
#[derive(Debug)]
pub struct BudgetState {
    /// `false` for the unlimited budget: checkpoints return after one
    /// branch, and none of the fields below are ever written.
    enabled: bool,
    deadline: Option<Instant>,
    node_limit: u64,
    cancel: Option<Arc<AtomicBool>>,
    nodes: AtomicU64,
    checkpoints: AtomicU64,
    tripped: AtomicBool,
    /// `0` = not tripped; otherwise 1 + index into
    /// [`CheckpointSite::ALL`] of the first tripping site.
    trip_site: AtomicU32,
}

static UNLIMITED: BudgetState = BudgetState {
    enabled: false,
    deadline: None,
    node_limit: u64::MAX,
    cancel: None,
    nodes: AtomicU64::new(0),
    checkpoints: AtomicU64::new(0),
    tripped: AtomicBool::new(false),
    trip_site: AtomicU32::new(0),
};

impl BudgetState {
    /// Starts a query under `budget`: the wall-clock deadline (if any)
    /// begins now.
    pub fn new(budget: &QueryBudget) -> BudgetState {
        BudgetState {
            enabled: budget.is_limited() || cfg!(feature = "failpoints"),
            deadline: budget.time_limit.map(|t| Instant::now() + t),
            node_limit: budget.node_limit.unwrap_or(u64::MAX),
            cancel: budget.cancel.clone(),
            nodes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trip_site: AtomicU32::new(0),
        }
    }

    /// The shared unlimited state — the no-budget fast path. Its
    /// counters are never written (checkpoints return on the `enabled`
    /// branch), so sharing one static across queries is sound.
    pub fn unlimited() -> &'static BudgetState {
        &UNLIMITED
    }

    /// Carves a per-shard sub-budget out of this query's budget for one
    /// scatter-gather fan-out: the shard's deadline is the query
    /// deadline minus a coordinator `reserve` fraction of the time
    /// *remaining now*, leaving the coordinator room to merge, retry
    /// against a replica, and degrade soundly after a slow shard.
    ///
    /// Returns `None` when the parent has no wall-clock deadline —
    /// node limits and cancellation tokens are process-wide and shared
    /// through the parent state directly, so there is nothing to split
    /// and shard workers should checkpoint against `self` (keeping
    /// unlimited and node-limited runs byte-identical to the unsharded
    /// path). The slice shares the parent's cancellation token but owns
    /// its counters: a shard that blows only its *slice* deadline does
    /// not trip the parent.
    pub fn shard_slice(&self, reserve: f64) -> Option<BudgetState> {
        let deadline = self.deadline?;
        let remaining = deadline.saturating_duration_since(Instant::now());
        let reserve_d = remaining.mul_f64(reserve.clamp(0.0, 1.0));
        let shard_deadline = deadline.checked_sub(reserve_d).unwrap_or(deadline);
        Some(BudgetState {
            enabled: true,
            deadline: Some(shard_deadline),
            node_limit: u64::MAX,
            cancel: self.cancel.clone(),
            nodes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trip_site: AtomicU32::new(0),
        })
    }

    /// Charges `units` of work at `site` and reports whether the query
    /// may continue (`false` = budget exhausted, unwind cooperatively).
    /// Sticky: once exhausted, stays exhausted.
    #[inline]
    pub fn checkpoint(&self, site: CheckpointSite, units: u64) -> bool {
        if !self.enabled {
            return true;
        }
        self.slow_checkpoint(site, units)
    }

    #[cold]
    fn slow_checkpoint(&self, site: CheckpointSite, units: u64) -> bool {
        #[cfg(feature = "failpoints")]
        if let Some(action) = failpoints::consult(site.name()) {
            match action {
                failpoints::Action::Trip => {
                    self.trip(site);
                    return false;
                }
                failpoints::Action::Panic => {
                    panic!("failpoint panic at {}", site.name());
                }
            }
        }
        if self.tripped.load(Ordering::Relaxed) {
            return false;
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        let nodes = self.nodes.fetch_add(units, Ordering::Relaxed) + units;
        if nodes > self.node_limit {
            self.trip(site);
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(site);
                return false;
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.trip(site);
                return false;
            }
        }
        true
    }

    fn trip(&self, site: CheckpointSite) {
        self.tripped.store(true, Ordering::Relaxed);
        let token = CheckpointSite::ALL.iter().position(|&s| s == site).unwrap_or(0) as u32 + 1;
        // Keep the *first* tripping site under concurrent trips.
        let _ = self.trip_site.compare_exchange(0, token, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Whether any checkpoint has reported exhaustion.
    pub fn is_tripped(&self) -> bool {
        self.enabled && self.tripped.load(Ordering::Relaxed)
    }

    /// The first site that observed exhaustion, if any.
    pub fn trip_site(&self) -> Option<CheckpointSite> {
        match self.trip_site.load(Ordering::Relaxed) {
            0 => None,
            t => Some(CheckpointSite::ALL[(t - 1) as usize]),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BudgetStats {
        BudgetStats {
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            work_units: self.nodes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let state = BudgetState::unlimited();
        for _ in 0..10_000 {
            assert!(state.checkpoint(CheckpointSite::Verify, 1_000));
        }
        assert!(!state.is_tripped());
        assert_eq!(state.trip_site(), None);
    }

    #[test]
    fn default_budget_is_unlimited() {
        let budget = QueryBudget::default();
        assert!(!budget.is_limited());
        #[cfg(not(feature = "failpoints"))]
        {
            let state = BudgetState::new(&budget);
            assert!(state.checkpoint(CheckpointSite::Partition, u64::MAX));
            assert_eq!(state.stats(), BudgetStats::default());
        }
    }

    #[test]
    fn node_limit_trips_sticky_and_records_first_site() {
        let budget = QueryBudget { node_limit: Some(5), ..QueryBudget::default() };
        let state = BudgetState::new(&budget);
        assert!(state.checkpoint(CheckpointSite::RangeDescent, 3));
        assert!(!state.checkpoint(CheckpointSite::Partition, 3), "6 > 5 trips");
        assert!(state.is_tripped());
        assert_eq!(state.trip_site(), Some(CheckpointSite::Partition));
        assert!(
            !state.checkpoint(CheckpointSite::Verify, 0),
            "sticky: later checkpoints keep failing"
        );
        assert_eq!(state.trip_site(), Some(CheckpointSite::Partition), "first site wins");
        let stats = state.stats();
        assert_eq!(stats.checkpoints, 2, "post-trip checkpoints are not counted");
        assert_eq!(stats.work_units, 6);
    }

    #[test]
    fn cancellation_token_trips() {
        let cancel = Arc::new(AtomicBool::new(false));
        let budget = QueryBudget { cancel: Some(cancel.clone()), ..QueryBudget::default() };
        let state = BudgetState::new(&budget);
        assert!(state.checkpoint(CheckpointSite::Knn, 1));
        cancel.store(true, Ordering::Relaxed);
        assert!(!state.checkpoint(CheckpointSite::Knn, 1));
        assert_eq!(state.trip_site(), Some(CheckpointSite::Knn));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let budget =
            QueryBudget { time_limit: Some(Duration::from_nanos(1)), ..QueryBudget::default() };
        let state = BudgetState::new(&budget);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!state.checkpoint(CheckpointSite::Verify, 1));
        assert!(state.is_tripped());
    }

    #[test]
    fn shard_slice_requires_a_deadline() {
        assert!(BudgetState::unlimited().shard_slice(0.1).is_none());
        let node_only = QueryBudget { node_limit: Some(10), ..QueryBudget::default() };
        assert!(BudgetState::new(&node_only).shard_slice(0.1).is_none());
    }

    #[test]
    fn shard_slice_deadline_is_earlier_and_independent() {
        let budget =
            QueryBudget { time_limit: Some(Duration::from_secs(60)), ..QueryBudget::default() };
        let parent = BudgetState::new(&budget);
        let slice = parent.shard_slice(0.5).expect("deadline budgets split");
        let (pd, sd) = (parent.deadline.expect("parent"), slice.deadline.expect("slice"));
        assert!(sd < pd, "the coordinator reserve must come off the shard deadline");
        assert!(pd - sd >= Duration::from_secs(20), "~50% of ~60s remaining");
        // Tripping the slice leaves the parent untouched.
        slice.trip(CheckpointSite::RangeDescent);
        assert!(slice.is_tripped());
        assert!(!parent.is_tripped());
    }

    #[test]
    fn shard_slice_shares_the_cancellation_token() {
        let cancel = Arc::new(AtomicBool::new(false));
        let budget = QueryBudget {
            time_limit: Some(Duration::from_secs(60)),
            cancel: Some(cancel.clone()),
            ..QueryBudget::default()
        };
        let slice = BudgetState::new(&budget).shard_slice(0.1).expect("split");
        assert!(slice.checkpoint(CheckpointSite::RangeDescent, 1));
        cancel.store(true, Ordering::Relaxed);
        assert!(!slice.checkpoint(CheckpointSite::RangeDescent, 1));
    }

    #[test]
    fn failpoint_helper_is_silent_when_disarmed() {
        assert_eq!(failpoint("shard-0-primary"), None);
    }

    #[test]
    fn site_names_are_stable() {
        for site in CheckpointSite::ALL {
            assert!(!site.name().is_empty());
        }
        assert_eq!(CheckpointSite::Verify.name(), "verify");
    }
}
