//! Canonical forms for labeled graphs.
//!
//! PIS hashes every fragment by the canonical representation of its
//! *structure* (Section 4, Figure 4): if `G ≅ G'` then `s(G) = s(G')`
//! and otherwise `s(G) ≠ s(G')`. Two representations are provided:
//!
//! * [`min_dfs_code`] — the gSpan minimum DFS code (Yan & Han, ICDM'02,
//!   reference \[15\] of the paper); works for any connected labeled graph
//!   and also powers the pattern-growth miner in `pis-mining`.
//! * [`naive_canonical`] — the paper's "naive" alternative: the minimum
//!   row-major adjacency-matrix sequence over all vertex permutations;
//!   exponential, used as a cross-check oracle in tests and ablations.
//!
//! Besides the code itself, [`CanonicalForm`] records the DFS discovery
//! order of vertices and the code order of edges. The fragment index uses
//! these to read label vectors off embeddings in a class-consistent
//! order.

use std::cmp::Ordering;

use crate::graph::{EdgeAttr, GraphBuilder, LabeledGraph, VertexAttr};
use crate::ids::{EdgeId, Label, VertexId};

/// One edge of a DFS code: `(from, to, from_label, edge_label, to_label)`.
///
/// `from`/`to` are DFS discovery indices. `from < to` marks a forward
/// edge (discovery), `from > to` a backward edge (cycle closure).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct DfsEdge {
    /// DFS index of the source vertex.
    pub from: u32,
    /// DFS index of the destination vertex.
    pub to: u32,
    /// Label of the source vertex.
    pub from_label: Label,
    /// Label of the edge.
    pub edge_label: Label,
    /// Label of the destination vertex.
    pub to_label: Label,
}

impl DfsEdge {
    /// Whether this is a forward (tree) edge.
    #[inline]
    pub fn is_forward(&self) -> bool {
        self.from < self.to
    }

    #[inline]
    fn label_key(&self) -> (Label, Label, Label) {
        (self.from_label, self.edge_label, self.to_label)
    }
}

impl PartialOrd for DfsEdge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DfsEdge {
    /// The gSpan DFS-lexicographic order on code edges:
    ///
    /// * forward vs forward: smaller `to` first; ties broken by *larger*
    ///   `from` (extensions closer to the rightmost vertex first), then
    ///   by labels;
    /// * backward vs backward: smaller `from`, then smaller `to`, then
    ///   labels;
    /// * backward `(i, j)` vs forward `(i', j')`: backward first iff
    ///   `i < j'`; at `i = j'` the forward edge precedes.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_forward(), other.is_forward()) {
            (true, true) => self
                .to
                .cmp(&other.to)
                .then(other.from.cmp(&self.from))
                .then(self.label_key().cmp(&other.label_key())),
            (false, false) => self
                .from
                .cmp(&other.from)
                .then(self.to.cmp(&other.to))
                .then(self.label_key().cmp(&other.label_key())),
            (false, true) => {
                if self.from < other.to {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (true, false) => {
                if self.to <= other.from {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
        }
    }
}

/// A DFS code: an edge sequence plus the root vertex label (which is the
/// entire code for single-vertex graphs).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash, Default)]
pub struct DfsCode {
    /// Code edges in DFS-lexicographic order.
    pub edges: Vec<DfsEdge>,
    /// Label of the vertex with DFS index 0.
    pub root_label: Label,
}

impl DfsCode {
    /// Number of edges in the coded graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices in the coded graph.
    pub fn vertex_count(&self) -> usize {
        if self.edges.is_empty() {
            1
        } else {
            self.edges.iter().map(|e| e.from.max(e.to)).max().unwrap() as usize + 1
        }
    }

    /// Flat `u32` serialization used as a hash key: `[V, E, root, (from,
    /// to, l_from, l_e, l_to)*]`. Equal codes have equal sequences and
    /// vice versa.
    pub fn to_sequence(&self) -> Vec<u32> {
        let mut seq = Vec::with_capacity(3 + 5 * self.edges.len());
        seq.push(self.vertex_count() as u32);
        seq.push(self.edges.len() as u32);
        seq.push(self.root_label.0);
        for e in &self.edges {
            seq.extend_from_slice(&[e.from, e.to, e.from_label.0, e.edge_label.0, e.to_label.0]);
        }
        seq
    }

    /// Reconstructs the coded graph; vertices are created in DFS-index
    /// order, edges in code order, so the rebuilt graph *is* its own
    /// canonical representative (its identity vertex order equals the
    /// canonical order).
    pub fn to_graph(&self) -> LabeledGraph {
        let mut b = GraphBuilder::with_capacity(self.vertex_count(), self.edges.len());
        let mut labels: Vec<Option<Label>> = vec![None; self.vertex_count()];
        labels[0] = Some(self.root_label);
        for e in &self.edges {
            labels[e.from as usize].get_or_insert(e.from_label);
            labels[e.to as usize].get_or_insert(e.to_label);
        }
        for l in &labels {
            b.add_vertex(VertexAttr::labeled(l.expect("every DFS index appears in the code")));
        }
        for e in &self.edges {
            b.add_edge(VertexId(e.from), VertexId(e.to), EdgeAttr::labeled(e.edge_label))
                .expect("DFS codes never repeat edges");
        }
        b.build()
    }

    /// Whether this code is the minimum DFS code of the graph it encodes
    /// (gSpan's canonicality test, used by the miner to prune duplicate
    /// pattern growth).
    pub fn is_min(&self) -> bool {
        if self.edges.is_empty() {
            return true;
        }
        let g = self.to_graph();
        let canon = min_dfs_code(&g).expect("DFS codes encode connected graphs");
        canon.code.edges == self.edges && canon.code.root_label == self.root_label
    }
}

/// The canonical form of a connected graph: the minimum DFS code plus the
/// realizing traversal.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// The minimum DFS code.
    pub code: DfsCode,
    /// `vertex_order[dfs_index]` = original vertex (the class-consistent
    /// readout order for label vectors).
    pub vertex_order: Vec<VertexId>,
    /// `edge_order[code_position]` = original edge.
    pub edge_order: Vec<EdgeId>,
}

/// A partial DFS traversal during minimum-code search.
#[derive(Clone)]
struct SearchState {
    /// graph vertex index -> DFS index (u32::MAX = undiscovered).
    dfs_of: Vec<u32>,
    /// DFS index -> graph vertex.
    vertex_of: Vec<VertexId>,
    /// code position -> graph edge.
    edge_of: Vec<EdgeId>,
    edge_used: Vec<bool>,
    /// DFS indices from the root to the rightmost vertex.
    rightmost_path: Vec<u32>,
}

const UNSET: u32 = u32::MAX;

/// A candidate one-edge extension of a search state.
#[derive(Clone, Copy)]
struct Extension {
    code_edge: DfsEdge,
    graph_edge: EdgeId,
    /// For forward edges: the newly discovered graph vertex.
    new_vertex: Option<VertexId>,
}

impl SearchState {
    fn start(g: &LabeledGraph, root: VertexId, first: EdgeId, other: VertexId) -> Self {
        let mut dfs_of = vec![UNSET; g.vertex_count()];
        dfs_of[root.index()] = 0;
        dfs_of[other.index()] = 1;
        let mut edge_used = vec![false; g.edge_count()];
        edge_used[first.index()] = true;
        SearchState {
            dfs_of,
            vertex_of: vec![root, other],
            edge_of: vec![first],
            edge_used,
            rightmost_path: vec![0, 1],
        }
    }

    /// All gSpan-valid next edges: backward edges from the rightmost
    /// vertex to rightmost-path vertices, and forward edges from any
    /// rightmost-path vertex to an undiscovered vertex.
    fn extensions(&self, g: &LabeledGraph, out: &mut Vec<Extension>) {
        out.clear();
        let rm_idx = *self.rightmost_path.last().expect("path never empty");
        let rm = self.vertex_of[rm_idx as usize];
        // Backward: rightmost vertex -> path vertices (unused edges only).
        for &(n, e) in g.neighbors(rm) {
            if self.edge_used[e.index()] {
                continue;
            }
            let n_idx = self.dfs_of[n.index()];
            if n_idx != UNSET && self.rightmost_path.contains(&n_idx) {
                out.push(Extension {
                    code_edge: DfsEdge {
                        from: rm_idx,
                        to: n_idx,
                        from_label: g.vertex(rm).label,
                        edge_label: g.edge(e).attr.label,
                        to_label: g.vertex(n).label,
                    },
                    graph_edge: e,
                    new_vertex: None,
                });
            }
        }
        // Forward: path vertex -> undiscovered vertex.
        let next_idx = self.vertex_of.len() as u32;
        for &p_idx in &self.rightmost_path {
            let p = self.vertex_of[p_idx as usize];
            for &(n, e) in g.neighbors(p) {
                if self.edge_used[e.index()] || self.dfs_of[n.index()] != UNSET {
                    continue;
                }
                out.push(Extension {
                    code_edge: DfsEdge {
                        from: p_idx,
                        to: next_idx,
                        from_label: g.vertex(p).label,
                        edge_label: g.edge(e).attr.label,
                        to_label: g.vertex(n).label,
                    },
                    graph_edge: e,
                    new_vertex: Some(n),
                });
            }
        }
    }

    fn apply(&self, ext: &Extension) -> SearchState {
        let mut next = self.clone();
        next.edge_used[ext.graph_edge.index()] = true;
        next.edge_of.push(ext.graph_edge);
        if let Some(v) = ext.new_vertex {
            let idx = next.vertex_of.len() as u32;
            next.dfs_of[v.index()] = idx;
            next.vertex_of.push(v);
            // The rightmost path becomes root..=ext.from, then the new
            // vertex.
            let pos = next
                .rightmost_path
                .iter()
                .position(|&i| i == ext.code_edge.from)
                .expect("forward extensions start on the rightmost path");
            next.rightmost_path.truncate(pos + 1);
            next.rightmost_path.push(idx);
        }
        next
    }
}

/// Computes the minimum DFS code of a connected graph, together with the
/// realizing vertex/edge orders. Returns `None` for disconnected or
/// empty graphs (fragments are always connected and non-empty).
pub fn min_dfs_code(g: &LabeledGraph) -> Option<CanonicalForm> {
    if g.is_empty() || !g.is_connected() {
        return None;
    }
    if g.edge_count() == 0 {
        // Single vertex.
        return Some(CanonicalForm {
            code: DfsCode { edges: Vec::new(), root_label: g.vertex(VertexId(0)).label },
            vertex_order: vec![VertexId(0)],
            edge_order: Vec::new(),
        });
    }

    // Seed: all oriented edges realizing the minimal first quintuple.
    let mut best_first: Option<DfsEdge> = None;
    let mut states: Vec<SearchState> = Vec::new();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        for (u, v) in [(edge.source, edge.target), (edge.target, edge.source)] {
            let cand = DfsEdge {
                from: 0,
                to: 1,
                from_label: g.vertex(u).label,
                edge_label: edge.attr.label,
                to_label: g.vertex(v).label,
            };
            match best_first {
                Some(b) if cand > b => {}
                Some(b) if cand == b => states.push(SearchState::start(g, u, e, v)),
                _ => {
                    best_first = Some(cand);
                    states.clear();
                    states.push(SearchState::start(g, u, e, v));
                }
            }
        }
    }
    let mut code = vec![best_first.expect("graph has at least one edge")];

    let mut scratch = Vec::new();
    while code.len() < g.edge_count() {
        let mut best: Option<DfsEdge> = None;
        let mut survivors: Vec<SearchState> = Vec::new();
        for state in &states {
            state.extensions(g, &mut scratch);
            for ext in &scratch {
                match best {
                    Some(b) if ext.code_edge > b => {}
                    Some(b) if ext.code_edge == b => survivors.push(state.apply(ext)),
                    _ => {
                        best = Some(ext.code_edge);
                        survivors.clear();
                        survivors.push(state.apply(ext));
                    }
                }
            }
        }
        let best = best.expect("connected graphs always extend until all edges are coded");
        code.push(best);
        states = survivors;
    }

    let witness = states.into_iter().next().expect("at least one traversal realizes the code");
    Some(CanonicalForm {
        code: DfsCode { edges: code, root_label: g.vertex(witness.vertex_of[0]).label },
        vertex_order: witness.vertex_of,
        edge_order: witness.edge_of,
    })
}

/// The paper's naive canonical form: the minimum row-major sequence of
/// the labeled adjacency matrix over all vertex permutations, prefixed
/// with the permuted vertex labels.
///
/// Exponential in the vertex count — use only for small graphs (the
/// implementation refuses more than [`NAIVE_CANONICAL_MAX_VERTICES`]).
pub fn naive_canonical(g: &LabeledGraph) -> Vec<u32> {
    assert!(
        g.vertex_count() <= NAIVE_CANONICAL_MAX_VERTICES,
        "naive_canonical is factorial; {} vertices exceeds the cap of {}",
        g.vertex_count(),
        NAIVE_CANONICAL_MAX_VERTICES
    );
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<Vec<u32>> = None;
    permute(&mut perm, 0, &mut |p| {
        let mut seq = Vec::with_capacity(n + n * (n - 1) / 2);
        for &i in p {
            seq.push(g.vertex(VertexId(i as u32)).label.0);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                let cell = g
                    .edge_between(VertexId(p[a] as u32), VertexId(p[b] as u32))
                    .map_or(0, |e| g.edge(e).attr.label.0 + 1);
                seq.push(cell);
            }
        }
        if best.as_ref().is_none_or(|b| seq < *b) {
            best = Some(seq);
        }
    });
    best.expect("n >= 1 yields at least one permutation")
}

/// Cap on [`naive_canonical`] input size (8! = 40 320 permutations).
pub const NAIVE_CANONICAL_MAX_VERTICES: usize = 8;

fn permute(perm: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, f);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{cycle_graph, path_graph, star_graph};

    fn l(x: u32) -> Label {
        Label(x)
    }

    /// Relabel a graph's vertices by a permutation; canonical forms must
    /// be invariant under this.
    fn shuffle(g: &LabeledGraph, perm: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let mut order: Vec<usize> = (0..g.vertex_count()).collect();
        order.sort_by_key(|&i| perm[i]);
        let mut new_id = vec![VertexId(0); g.vertex_count()];
        for &old in &order {
            new_id[old] = b.add_vertex(g.vertex(VertexId(old as u32)));
        }
        for e in g.edges() {
            b.add_edge(new_id[e.source.index()], new_id[e.target.index()], e.attr).unwrap();
        }
        b.build()
    }

    #[test]
    fn single_vertex_code() {
        let mut b = GraphBuilder::new();
        b.add_vertex(VertexAttr::labeled(l(7)));
        let g = b.build();
        let c = min_dfs_code(&g).unwrap();
        assert!(c.code.edges.is_empty());
        assert_eq!(c.code.root_label, l(7));
        assert_eq!(c.code.vertex_count(), 1);
        assert!(c.code.is_min());
    }

    #[test]
    fn empty_and_disconnected_have_no_code() {
        assert!(min_dfs_code(&LabeledGraph::default()).is_none());
        let mut b = GraphBuilder::new();
        b.add_vertex(VertexAttr::labeled(l(0)));
        b.add_vertex(VertexAttr::labeled(l(0)));
        assert!(min_dfs_code(&b.build()).is_none());
    }

    #[test]
    fn code_reconstructs_graph() {
        let g = cycle_graph(5, l(2), l(3));
        let c = min_dfs_code(&g).unwrap();
        let rebuilt = c.code.to_graph();
        assert_eq!(rebuilt.vertex_count(), 5);
        assert_eq!(rebuilt.edge_count(), 5);
        // The rebuilt graph is isomorphic: recanonicalizing is a fixpoint.
        let c2 = min_dfs_code(&rebuilt).unwrap();
        assert_eq!(c.code, c2.code);
    }

    #[test]
    fn canonical_invariant_under_relabeling() {
        let g = cycle_graph(6, l(0), l(1));
        let c1 = min_dfs_code(&g).unwrap().code;
        let g2 = shuffle(&g, &[3, 5, 0, 1, 4, 2]);
        let c2 = min_dfs_code(&g2).unwrap().code;
        assert_eq!(c1, c2);
        assert_eq!(c1.to_sequence(), c2.to_sequence());
    }

    #[test]
    fn different_structures_get_different_codes() {
        let path = path_graph(4, l(0), l(0));
        let star = star_graph(3, l(0), l(0));
        // Same vertex and edge counts, different topology.
        assert_eq!(path.vertex_count(), star.vertex_count());
        assert_eq!(path.edge_count(), star.edge_count());
        let cp = min_dfs_code(&path).unwrap().code;
        let cs = min_dfs_code(&star).unwrap().code;
        assert_ne!(cp, cs);
        assert_ne!(cp.to_sequence(), cs.to_sequence());
    }

    #[test]
    fn labels_distinguish_codes() {
        let a = cycle_graph(3, l(0), l(0));
        let b = cycle_graph(3, l(0), l(1));
        assert_ne!(min_dfs_code(&a).unwrap().code, min_dfs_code(&b).unwrap().code);
    }

    #[test]
    fn vertex_order_is_a_valid_traversal() {
        let g = cycle_graph(6, l(0), l(0));
        let c = min_dfs_code(&g).unwrap();
        assert_eq!(c.vertex_order.len(), 6);
        assert_eq!(c.edge_order.len(), 6);
        // vertex_order is a permutation.
        let mut sorted = c.vertex_order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        // Each code edge maps to the matching graph edge.
        for (pos, ce) in c.code.edges.iter().enumerate() {
            let ge = g.edge(c.edge_order[pos]);
            let (u, v) = (c.vertex_order[ce.from as usize], c.vertex_order[ce.to as usize]);
            assert!(
                (ge.source, ge.target) == (u, v) || (ge.source, ge.target) == (v, u),
                "code edge {pos} does not match its graph edge"
            );
        }
    }

    #[test]
    fn is_min_accepts_canonical_and_rejects_non_canonical() {
        let g = cycle_graph(4, l(0), l(0));
        let c = min_dfs_code(&g).unwrap().code;
        assert!(c.is_min());
        // A hand-built non-minimal code for the 4-cycle: start the
        // traversal so the backward edge closes late with a larger
        // quintuple order. Swapping two middle forward edges breaks
        // minimality while still encoding a connected graph.
        let non_min = DfsCode {
            edges: vec![
                DfsEdge { from: 0, to: 1, from_label: l(0), edge_label: l(0), to_label: l(0) },
                DfsEdge { from: 1, to: 2, from_label: l(0), edge_label: l(0), to_label: l(0) },
                DfsEdge { from: 1, to: 3, from_label: l(0), edge_label: l(0), to_label: l(0) },
                DfsEdge { from: 3, to: 2, from_label: l(0), edge_label: l(0), to_label: l(0) },
            ],
            root_label: l(0),
        };
        assert!(!non_min.is_min());
    }

    #[test]
    fn naive_agrees_with_dfs_code_on_small_graphs() {
        // naive_canonical(a) == naive_canonical(b)  <=>  min codes equal.
        let cases = [
            (cycle_graph(5, l(0), l(1)), cycle_graph(5, l(0), l(1)), true),
            (cycle_graph(5, l(0), l(1)), cycle_graph(5, l(0), l(2)), false),
            (path_graph(4, l(0), l(0)), star_graph(3, l(0), l(0)), false),
            (
                path_graph(5, l(1), l(2)),
                shuffle(&path_graph(5, l(1), l(2)), &[4, 2, 0, 1, 3]),
                true,
            ),
        ];
        for (a, b, equal) in cases {
            let naive_eq = naive_canonical(&a) == naive_canonical(&b);
            let code_eq = min_dfs_code(&a).unwrap().code == min_dfs_code(&b).unwrap().code;
            assert_eq!(naive_eq, equal);
            assert_eq!(code_eq, equal);
        }
    }

    #[test]
    fn dfs_edge_order_rules() {
        let fwd =
            |from, to| DfsEdge { from, to, from_label: l(0), edge_label: l(0), to_label: l(0) };
        // forward/forward: smaller destination first.
        assert!(fwd(1, 2) < fwd(0, 3));
        // same destination: deeper source first.
        assert!(fwd(2, 3) < fwd(0, 3));
        // backward/backward: smaller source first.
        assert!(fwd(2, 0) < fwd(3, 0));
        assert!(fwd(2, 0) < fwd(2, 1));
        // backward (i, _) before forward (_, j) iff i < j.
        assert!(fwd(2, 1) < fwd(1, 3)); // i=2 < j=3
        assert!(fwd(2, 1) > fwd(0, 2)); // i=2, j=2 -> forward first

        // label tiebreak on otherwise equal structure.
        let labeled =
            DfsEdge { from: 0, to: 1, from_label: l(0), edge_label: l(1), to_label: l(0) };
        assert!(fwd(0, 1) < labeled);
    }

    #[test]
    fn sequence_embeds_counts() {
        let g = path_graph(3, l(4), l(5));
        let seq = min_dfs_code(&g).unwrap().code.to_sequence();
        assert_eq!(seq[0], 3); // vertices
        assert_eq!(seq[1], 2); // edges
        assert_eq!(seq.len(), 3 + 2 * 5);
    }

    #[test]
    fn naive_canonical_rejects_large_graphs() {
        let g = path_graph(9, l(0), l(0));
        let res = std::panic::catch_unwind(|| naive_canonical(&g));
        assert!(res.is_err());
    }
}
