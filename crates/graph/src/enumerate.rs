//! Connected-subgraph enumeration.
//!
//! Enumerates every connected edge-subgraph of a graph with at most
//! `max_edges` edges, each exactly once. This powers the exhaustive
//! feature source (index "all fragments up to size L", as in the paper's
//! Example 4 where all edges are indexed) and serves as a test oracle for
//! the pattern-growth miner.
//!
//! The algorithm is the classic fix-the-minimum-edge scheme: a subgraph
//! is generated from its minimum-id edge only, and candidates are
//! processed with include/exclude branching so each edge set appears
//! exactly once. The enumeration is exponential in `max_edges` — callers
//! keep the cap small (the paper indexes fragments of 4–6 edges).

use crate::graph::LabeledGraph;
use crate::ids::EdgeId;

/// Calls `f` on every connected edge-subgraph of `g` with between 1 and
/// `max_edges` edges. The slice passed to `f` holds distinct edge ids;
/// the first element is the subgraph's minimum edge id.
pub fn connected_edge_subgraphs(g: &LabeledGraph, max_edges: usize, mut f: impl FnMut(&[EdgeId])) {
    if max_edges == 0 || g.edge_count() == 0 {
        return;
    }
    let m = g.edge_count();
    // Adjacency between edges: two edges are adjacent iff they share an
    // endpoint. Molecule degrees are tiny, so build it directly.
    let mut edge_adj: Vec<Vec<EdgeId>> = vec![Vec::new(); m];
    for v in g.vertex_ids() {
        let inc = g.neighbors(v);
        for i in 0..inc.len() {
            for j in (i + 1)..inc.len() {
                let (a, b) = (inc[i].1, inc[j].1);
                edge_adj[a.index()].push(b);
                edge_adj[b.index()].push(a);
            }
        }
    }
    for adj in &mut edge_adj {
        adj.sort_unstable();
        adj.dedup();
    }

    let mut sub: Vec<EdgeId> = Vec::with_capacity(max_edges);
    let mut in_sub = vec![false; m];
    let mut banned = vec![false; m];
    for start in 0..m as u32 {
        let start = EdgeId(start);
        sub.push(start);
        in_sub[start.index()] = true;
        f(&sub);
        // Candidates: edges adjacent to the current subgraph with id
        // greater than the start edge.
        let mut ext: Vec<EdgeId> =
            edge_adj[start.index()].iter().copied().filter(|e| *e > start).collect();
        grow(&edge_adj, max_edges, &mut sub, &mut in_sub, &mut banned, &mut ext, start, &mut f);
        in_sub[start.index()] = false;
        sub.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn grow(
    edge_adj: &[Vec<EdgeId>],
    max_edges: usize,
    sub: &mut Vec<EdgeId>,
    in_sub: &mut [bool],
    banned: &mut [bool],
    ext: &mut Vec<EdgeId>,
    start: EdgeId,
    f: &mut impl FnMut(&[EdgeId]),
) {
    if sub.len() == max_edges {
        return;
    }
    // Include/exclude over the candidate list: pop one candidate; the
    // "include" branch extends the subgraph with it, the "exclude" branch
    // bans it so no later subtree regenerates the same edge set.
    let Some(c) = ext.iter().position(|e| !banned[e.index()] && !in_sub[e.index()]) else {
        return;
    };
    let c = ext.swap_remove(c);

    // Include branch.
    sub.push(c);
    in_sub[c.index()] = true;
    f(sub);
    let mut added: Vec<EdgeId> = Vec::new();
    for &n in &edge_adj[c.index()] {
        if n > start && !in_sub[n.index()] && !banned[n.index()] && !ext.contains(&n) {
            ext.push(n);
            added.push(n);
        }
    }
    grow(edge_adj, max_edges, sub, in_sub, banned, ext, start, f);
    for n in added {
        let pos = ext.iter().position(|e| *e == n).expect("added candidates remain");
        ext.swap_remove(pos);
    }
    in_sub[c.index()] = false;
    sub.pop();

    // Exclude branch.
    banned[c.index()] = true;
    grow(edge_adj, max_edges, sub, in_sub, banned, ext, start, f);
    banned[c.index()] = false;
    ext.push(c);
}

/// Counts connected edge-subgraphs with at most `max_edges` edges.
pub fn count_connected_edge_subgraphs(g: &LabeledGraph, max_edges: usize) -> usize {
    let mut n = 0;
    connected_edge_subgraphs(g, max_edges, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{complete_graph, cycle_graph, path_graph, star_graph};
    use crate::ids::Label;
    use std::collections::BTreeSet;

    fn l0() -> Label {
        Label(0)
    }

    fn collect(g: &LabeledGraph, max: usize) -> Vec<BTreeSet<EdgeId>> {
        let mut out = Vec::new();
        connected_edge_subgraphs(g, max, |edges| {
            out.push(edges.iter().copied().collect::<BTreeSet<_>>());
        });
        out
    }

    #[test]
    fn no_duplicates() {
        for g in [
            path_graph(6, l0(), l0()),
            cycle_graph(6, l0(), l0()),
            complete_graph(4, l0(), l0()),
            star_graph(5, l0(), l0()),
        ] {
            let all = collect(&g, 4);
            let dedup: BTreeSet<_> = all.iter().cloned().collect();
            assert_eq!(all.len(), dedup.len(), "duplicate subgraph emitted");
        }
    }

    #[test]
    fn subgraphs_are_connected() {
        let g = cycle_graph(6, l0(), l0());
        connected_edge_subgraphs(&g, 4, |edges| {
            let (sub, _) = g.edge_subgraph(edges);
            assert!(sub.is_connected());
        });
    }

    #[test]
    fn path_counts() {
        // A path with m edges has m - k + 1 connected subgraphs of k
        // edges (contiguous windows).
        let g = path_graph(6, l0(), l0()); // 5 edges
        let mut by_size = [0usize; 6];
        connected_edge_subgraphs(&g, 5, |edges| by_size[edges.len()] += 1);
        assert_eq!(&by_size[1..=5], &[5, 4, 3, 2, 1]);
    }

    #[test]
    fn cycle_counts() {
        // An n-cycle has n contiguous k-edge arcs for k < n and one full
        // cycle.
        let g = cycle_graph(5, l0(), l0());
        let mut by_size = [0usize; 6];
        connected_edge_subgraphs(&g, 5, |edges| by_size[edges.len()] += 1);
        assert_eq!(&by_size[1..=5], &[5, 5, 5, 5, 1]);
    }

    #[test]
    fn triangle_full_enumeration() {
        // K3: 3 single edges, 3 two-edge paths, 1 triangle.
        let g = complete_graph(3, l0(), l0());
        assert_eq!(count_connected_edge_subgraphs(&g, 3), 7);
    }

    #[test]
    fn max_edges_caps_size() {
        let g = complete_graph(4, l0(), l0());
        connected_edge_subgraphs(&g, 2, |edges| assert!(edges.len() <= 2));
    }

    #[test]
    fn zero_cap_or_empty_graph_yields_nothing() {
        let g = path_graph(3, l0(), l0());
        assert_eq!(count_connected_edge_subgraphs(&g, 0), 0);
        assert_eq!(count_connected_edge_subgraphs(&LabeledGraph::default(), 4), 0);
    }

    #[test]
    fn first_element_is_minimum_edge() {
        let g = complete_graph(4, l0(), l0());
        connected_edge_subgraphs(&g, 3, |edges| {
            let min = edges.iter().min().unwrap();
            assert_eq!(edges[0], *min);
        });
    }
}
