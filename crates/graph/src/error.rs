//! Error types for graph construction and parsing.

use std::fmt;

use crate::ids::VertexId;

/// Errors produced while building or parsing graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex that does not exist.
    InvalidVertex {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph under construction.
        vertex_count: usize,
    },
    /// A self-loop was added; PIS graphs are simple.
    SelfLoop(VertexId),
    /// A duplicate (parallel) edge was added; PIS graphs are simple.
    DuplicateEdge(VertexId, VertexId),
    /// A textual database could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidVertex { vertex, vertex_count } => {
                write!(f, "edge endpoint {vertex} out of range (graph has {vertex_count} vertices)")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on {v}; PIS graphs are simple"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge {u}-{v}; PIS graphs are simple")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::InvalidVertex { vertex: VertexId(9), vertex_count: 3 };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains("3 vertices"));
        let e = GraphError::SelfLoop(VertexId(1));
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::DuplicateEdge(VertexId(0), VertexId(1));
        assert!(e.to_string().contains("duplicate"));
        let e = GraphError::Parse { line: 12, message: "bad token".into() };
        assert!(e.to_string().contains("line 12"));
    }
}
