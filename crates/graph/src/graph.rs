//! The labeled graph type stored in PIS graph databases.
//!
//! Graphs are undirected, simple (no self-loops, no parallel edges),
//! with a categorical [`Label`] and a numeric weight on every vertex and
//! edge. Categorical labels drive the mutation distance; weights drive
//! the linear mutation distance (Section 2 of the paper). A graph whose
//! labels are all [`Label::ERASED`] and whose weights are all zero is a
//! *bare structure* (the paper's "skeleton" / "topology").

use crate::error::GraphError;
use crate::ids::{EdgeId, Label, VertexId};

/// Attributes carried by a vertex.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct VertexAttr {
    /// Categorical label (atom type in the chemical datasets).
    pub label: Label,
    /// Numeric weight used by the linear mutation distance.
    pub weight: f64,
}

impl VertexAttr {
    /// A vertex attribute with the given label and zero weight.
    pub fn labeled(label: Label) -> Self {
        VertexAttr { label, weight: 0.0 }
    }
}

/// Attributes carried by an edge.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EdgeAttr {
    /// Categorical label (bond type in the chemical datasets).
    pub label: Label,
    /// Numeric weight used by the linear mutation distance.
    pub weight: f64,
}

impl EdgeAttr {
    /// An edge attribute with the given label and zero weight.
    pub fn labeled(label: Label) -> Self {
        EdgeAttr { label, weight: 0.0 }
    }
}

/// An undirected edge together with its attributes.
///
/// `source < target` is not guaranteed; use [`Edge::endpoints`] and
/// [`Edge::other`] to stay direction-agnostic.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Edge {
    /// First endpoint.
    pub source: VertexId,
    /// Second endpoint.
    pub target: VertexId,
    /// Edge attributes.
    pub attr: EdgeAttr,
}

impl Edge {
    /// Both endpoints as a pair.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.source, self.target)
    }

    /// The endpoint opposite to `v`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, v: VertexId) -> VertexId {
        if v == self.source {
            self.target
        } else {
            debug_assert_eq!(v, self.target, "vertex not incident to edge");
            self.source
        }
    }

    /// Whether `v` is an endpoint of this edge.
    #[inline]
    pub fn is_incident(&self, v: VertexId) -> bool {
        v == self.source || v == self.target
    }
}

/// An undirected, simple, labeled, weighted graph.
///
/// Construct with [`GraphBuilder`]; the built graph is immutable, which
/// lets the index and matcher borrow it freely.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LabeledGraph {
    vertices: Vec<VertexAttr>,
    edges: Vec<Edge>,
    /// `adj[v]` lists `(neighbor, edge)` pairs, in insertion order.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

impl LabeledGraph {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges. The paper writes `|Q|` for the edge count of a
    /// query graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterator over all vertex ids.
    pub fn vertex_ids(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Attributes of vertex `v`.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> VertexAttr {
        self.vertices[v.index()]
    }

    /// The edge with id `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `(neighbor, edge)` pairs incident to `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The edge connecting `u` and `v`, if any.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        // Scan the smaller adjacency list; molecular degrees are tiny so
        // a linear scan beats any auxiliary map.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a.index()].iter().find(|(n, _)| *n == b).map(|(_, e)| *e)
    }

    /// Whether `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Whether the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(n, _) in self.neighbors(v) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.vertices.len()
    }

    /// Connected components as lists of vertex ids.
    pub fn connected_components(&self) -> Vec<Vec<VertexId>> {
        let mut seen = vec![false; self.vertices.len()];
        let mut components = Vec::new();
        for start in self.vertex_ids() {
            if seen[start.index()] {
                continue;
            }
            let mut comp = vec![start];
            seen[start.index()] = true;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &(n, _) in self.neighbors(v) {
                    if !seen[n.index()] {
                        seen[n.index()] = true;
                        comp.push(n);
                        stack.push(n);
                    }
                }
            }
            components.push(comp);
        }
        components
    }

    /// A copy with every label replaced by [`Label::ERASED`] and every
    /// weight zeroed: the bare structure (skeleton) used for
    /// structural-equivalence-class hashing (Section 4).
    pub fn erase_labels(&self) -> LabeledGraph {
        let mut g = self.clone();
        for v in &mut g.vertices {
            *v = VertexAttr::default();
        }
        for e in &mut g.edges {
            e.attr = EdgeAttr::default();
        }
        g
    }

    /// The subgraph spanned by `edge_ids`: vertices are the endpoints of
    /// the chosen edges, re-numbered densely. Returns the subgraph and
    /// the mapping `subgraph vertex -> original vertex`.
    ///
    /// Attributes are copied. Duplicate ids are ignored.
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> (LabeledGraph, Vec<VertexId>) {
        let mut old_to_new: Vec<Option<VertexId>> = vec![None; self.vertices.len()];
        let mut new_to_old: Vec<VertexId> = Vec::new();
        let mut builder = GraphBuilder::new();
        let mut used = vec![false; self.edges.len()];
        let map_vertex = |v: VertexId,
                          builder: &mut GraphBuilder,
                          old_to_new: &mut Vec<Option<VertexId>>,
                          new_to_old: &mut Vec<VertexId>|
         -> VertexId {
            if let Some(nv) = old_to_new[v.index()] {
                nv
            } else {
                let nv = builder.add_vertex(self.vertex(v));
                old_to_new[v.index()] = Some(nv);
                new_to_old.push(v);
                nv
            }
        };
        for &e in edge_ids {
            if used[e.index()] {
                continue;
            }
            used[e.index()] = true;
            let edge = self.edge(e);
            let u = map_vertex(edge.source, &mut builder, &mut old_to_new, &mut new_to_old);
            let v = map_vertex(edge.target, &mut builder, &mut old_to_new, &mut new_to_old);
            builder.add_edge(u, v, edge.attr).expect("subgraph of a simple graph is simple");
        }
        (builder.build(), new_to_old)
    }

    /// The induced subgraph on `vertex_ids` (all original edges between
    /// chosen vertices are kept). Returns the subgraph and the mapping
    /// `subgraph vertex -> original vertex`.
    pub fn induced_subgraph(&self, vertex_ids: &[VertexId]) -> (LabeledGraph, Vec<VertexId>) {
        let mut old_to_new: Vec<Option<VertexId>> = vec![None; self.vertices.len()];
        let mut builder = GraphBuilder::new();
        let mut new_to_old = Vec::with_capacity(vertex_ids.len());
        for &v in vertex_ids {
            if old_to_new[v.index()].is_none() {
                let nv = builder.add_vertex(self.vertex(v));
                old_to_new[v.index()] = Some(nv);
                new_to_old.push(v);
            }
        }
        for edge in &self.edges {
            if let (Some(u), Some(v)) =
                (old_to_new[edge.source.index()], old_to_new[edge.target.index()])
            {
                builder.add_edge(u, v, edge.attr).expect("subgraph of a simple graph is simple");
            }
        }
        (builder.build(), new_to_old)
    }

    /// Sum of all vertex and edge weights; handy for quick sanity checks
    /// of weighted datasets.
    pub fn total_weight(&self) -> f64 {
        self.vertices.iter().map(|v| v.weight).sum::<f64>()
            + self.edges.iter().map(|e| e.attr.weight).sum::<f64>()
    }
}

/// Incremental builder for [`LabeledGraph`].
///
/// ```
/// use pis_graph::{GraphBuilder, Label, VertexAttr, EdgeAttr};
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_vertex(VertexAttr::labeled(Label(1)));
/// let v = b.add_vertex(VertexAttr::labeled(Label(1)));
/// b.add_edge(u, v, EdgeAttr::labeled(Label(2))).unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    graph: LabeledGraph,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// A builder with pre-reserved capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            graph: LabeledGraph {
                vertices: Vec::with_capacity(vertices),
                edges: Vec::with_capacity(edges),
                adj: Vec::with_capacity(vertices),
            },
        }
    }

    /// Adds a vertex and returns its id.
    pub fn add_vertex(&mut self, attr: VertexAttr) -> VertexId {
        let id = VertexId(self.graph.vertices.len() as u32);
        self.graph.vertices.push(attr);
        self.graph.adj.push(Vec::new());
        id
    }

    /// Adds `n` vertices with the same attributes; returns their ids.
    pub fn add_vertices(&mut self, n: usize, attr: VertexAttr) -> Vec<VertexId> {
        (0..n).map(|_| self.add_vertex(attr)).collect()
    }

    /// Adds an undirected edge. Rejects self-loops, parallel edges and
    /// out-of-range endpoints (PIS graphs are simple).
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        attr: EdgeAttr,
    ) -> Result<EdgeId, GraphError> {
        let n = self.graph.vertices.len();
        for w in [u, v] {
            if w.index() >= n {
                return Err(GraphError::InvalidVertex { vertex: w, vertex_count: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.graph.edge_between(u, v).is_some() {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let id = EdgeId(self.graph.edges.len() as u32);
        self.graph.edges.push(Edge { source: u, target: v, attr });
        self.graph.adj[u.index()].push((v, id));
        self.graph.adj[v.index()].push((u, id));
        Ok(id)
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Edges added so far.
    pub fn edges(&self) -> &[Edge] {
        self.graph.edges()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Finalizes the graph.
    pub fn build(self) -> LabeledGraph {
        self.graph
    }
}

/// Builds a labeled path `v0 - v1 - … - v(n-1)`; test/demo helper.
pub fn path_graph(n: usize, vertex_label: Label, edge_label: Label) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs = b.add_vertices(n, VertexAttr::labeled(vertex_label));
    for w in vs.windows(2) {
        b.add_edge(w[0], w[1], EdgeAttr::labeled(edge_label)).unwrap();
    }
    b.build()
}

/// Builds a labeled cycle of `n ≥ 3` vertices; test/demo helper.
pub fn cycle_graph(n: usize, vertex_label: Label, edge_label: Label) -> LabeledGraph {
    assert!(n >= 3, "a simple cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new();
    let vs = b.add_vertices(n, VertexAttr::labeled(vertex_label));
    for i in 0..n {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(edge_label)).unwrap();
    }
    b.build()
}

/// Builds the complete graph on `n` vertices; test helper.
pub fn complete_graph(n: usize, vertex_label: Label, edge_label: Label) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs = b.add_vertices(n, VertexAttr::labeled(vertex_label));
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(vs[i], vs[j], EdgeAttr::labeled(edge_label)).unwrap();
        }
    }
    b.build()
}

/// Builds a star with `n` leaves around a hub; test helper.
pub fn star_graph(n: usize, vertex_label: Label, edge_label: Label) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let hub = b.add_vertex(VertexAttr::labeled(vertex_label));
    for _ in 0..n {
        let leaf = b.add_vertex(VertexAttr::labeled(vertex_label));
        b.add_edge(hub, leaf, EdgeAttr::labeled(edge_label)).unwrap();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(l: u32) -> VertexAttr {
        VertexAttr::labeled(Label(l))
    }

    fn eattr(l: u32) -> EdgeAttr {
        EdgeAttr::labeled(Label(l))
    }

    #[test]
    fn builder_basic() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(attr(1));
        let v = b.add_vertex(attr(2));
        let e = b.add_edge(u, v, eattr(5)).unwrap();
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.vertex(u).label, Label(1));
        assert_eq!(g.vertex(v).label, Label(2));
        assert_eq!(g.edge(e).attr.label, Label(5));
        assert_eq!(g.edge_between(u, v), Some(e));
        assert_eq!(g.edge_between(v, u), Some(e));
        assert_eq!(g.degree(u), 1);
    }

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(attr(0));
        assert_eq!(b.add_edge(u, u, eattr(0)), Err(GraphError::SelfLoop(u)));
    }

    #[test]
    fn builder_rejects_duplicate_edge() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(attr(0));
        let v = b.add_vertex(attr(0));
        b.add_edge(u, v, eattr(0)).unwrap();
        assert_eq!(b.add_edge(v, u, eattr(1)), Err(GraphError::DuplicateEdge(v, u)));
    }

    #[test]
    fn builder_rejects_invalid_vertex() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(attr(0));
        let bad = VertexId(9);
        assert!(matches!(b.add_edge(u, bad, eattr(0)), Err(GraphError::InvalidVertex { .. })));
    }

    #[test]
    fn edge_other_endpoint() {
        let g = path_graph(2, Label(0), Label(0));
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(VertexId(0)), VertexId(1));
        assert_eq!(e.other(VertexId(1)), VertexId(0));
        assert!(e.is_incident(VertexId(0)));
        assert!(!e.is_incident(VertexId(5)));
    }

    #[test]
    fn connectivity() {
        assert!(path_graph(5, Label(0), Label(0)).is_connected());
        assert!(cycle_graph(6, Label(0), Label(0)).is_connected());
        let mut b = GraphBuilder::new();
        b.add_vertex(attr(0));
        b.add_vertex(attr(0));
        let g = b.build();
        assert!(!g.is_connected());
        assert_eq!(g.connected_components().len(), 2);
        assert!(LabeledGraph::default().is_connected());
    }

    #[test]
    fn erase_labels_keeps_topology() {
        let g = cycle_graph(4, Label(3), Label(7));
        let s = g.erase_labels();
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(s.edge_count(), 4);
        for v in s.vertex_ids() {
            assert_eq!(s.vertex(v).label, Label::ERASED);
        }
        for e in s.edges() {
            assert_eq!(e.attr.label, Label::ERASED);
        }
    }

    #[test]
    fn edge_subgraph_extracts_and_maps() {
        let g = path_graph(4, Label(1), Label(2));
        // Take the middle edge only.
        let (sub, map) = g.edge_subgraph(&[EdgeId(1)]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(map.len(), 2);
        // Mapped-back endpoints are 1 and 2 in the original path.
        let mut ends: Vec<u32> = map.iter().map(|v| v.0).collect();
        ends.sort_unstable();
        assert_eq!(ends, vec![1, 2]);
    }

    #[test]
    fn edge_subgraph_ignores_duplicates() {
        let g = path_graph(3, Label(0), Label(0));
        let (sub, _) = g.edge_subgraph(&[EdgeId(0), EdgeId(0)]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = cycle_graph(4, Label(0), Label(0));
        let (sub, map) = g.induced_subgraph(&[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(sub.vertex_count(), 3);
        // Cycle 0-1-2-3-0 restricted to {0,1,2} has edges 0-1 and 1-2.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn generators_have_expected_shape() {
        let p = path_graph(5, Label(0), Label(0));
        assert_eq!((p.vertex_count(), p.edge_count()), (5, 4));
        let c = cycle_graph(6, Label(0), Label(0));
        assert_eq!((c.vertex_count(), c.edge_count()), (6, 6));
        for v in c.vertex_ids() {
            assert_eq!(c.degree(v), 2);
        }
        let k = complete_graph(5, Label(0), Label(0));
        assert_eq!((k.vertex_count(), k.edge_count()), (5, 10));
        let s = star_graph(4, Label(0), Label(0));
        assert_eq!((s.vertex_count(), s.edge_count()), (5, 4));
        assert_eq!(s.degree(VertexId(0)), 4);
    }

    #[test]
    fn total_weight_sums_vertices_and_edges() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr { label: Label(0), weight: 1.5 });
        let v = b.add_vertex(VertexAttr { label: Label(0), weight: 2.5 });
        b.add_edge(u, v, EdgeAttr { label: Label(0), weight: 3.0 }).unwrap();
        assert_eq!(b.build().total_weight(), 7.0);
    }
}
