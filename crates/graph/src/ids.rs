//! Strongly-typed identifiers used throughout the workspace.
//!
//! All identifiers are thin `u32` newtypes: graphs in the evaluation
//! dataset have at most a few hundred vertices/edges, and the database
//! holds at most tens of thousands of graphs, so `u32` keeps hot
//! structures (embeddings, adjacency lists, posting lists) compact
//! (see the type-size guidance in the Rust perf book).

use std::fmt;

/// Identifier of a vertex within a single [`crate::LabeledGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex position as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge within a single [`crate::LabeledGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge position as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a graph within a graph database.
///
/// PIS never stores real graphs inside the index; posting lists carry
/// `GraphId`s only (Section 6 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GraphId(pub u32);

impl GraphId {
    /// The graph position as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A categorical label attached to a vertex or an edge.
///
/// Labels are opaque small integers; domain vocabularies (atom symbols,
/// bond types, …) live in `pis-datasets`. `Label(0)` is conventionally
/// the "erased" label used when only the topology of a graph matters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Label(pub u32);

impl Label {
    /// The erased label used for bare structures (skeletons).
    pub const ERASED: Label = Label(0);

    /// The label value as a `usize`, for score-matrix indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_compact() {
        // Hot structures store millions of these; keep them word-small.
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<GraphId>(), 4);
        assert_eq!(std::mem::size_of::<Label>(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(EdgeId(7).to_string(), "e7");
        assert_eq!(GraphId(0).to_string(), "g0");
        assert_eq!(Label(2).to_string(), "l2");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(VertexId(41).index(), 41);
        assert_eq!(EdgeId(9).index(), 9);
        assert_eq!(GraphId(123).index(), 123);
        assert_eq!(Label::ERASED.index(), 0);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(Label(0) < Label(10));
    }
}
