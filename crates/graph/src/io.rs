//! Line-oriented text format for graph databases.
//!
//! The format follows the de-facto standard of the graph-mining
//! literature (gSpan datasets), extended with optional weights:
//!
//! ```text
//! # comment
//! t 0                 graph header (id is informational)
//! v 0 6               vertex 0 with label 6
//! v 1 6 1.5           vertex 1 with label 6 and weight 1.5
//! e 0 1 2             edge 0-1 with label 2
//! e 0 1 2 0.7         … and weight 0.7
//! ```
//!
//! Vertices must be declared densely (`v k …` is the k-th declaration).

use std::fmt::Write as _;

use crate::error::GraphError;
use crate::graph::{EdgeAttr, GraphBuilder, LabeledGraph, VertexAttr};
use crate::ids::{Label, VertexId};

/// Parses a multi-graph database.
pub fn parse_database(text: &str) -> Result<Vec<LabeledGraph>, GraphError> {
    let mut graphs = Vec::new();
    let mut current: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let tag = tokens.next().expect("non-empty line has a first token");
        match tag {
            "t" => {
                if let Some(b) = current.take() {
                    graphs.push(b.build());
                }
                current = Some(GraphBuilder::new());
                // Consume the informational graph id, if present.
                let _ = tokens.next();
            }
            "v" => {
                let b = current.as_mut().ok_or_else(|| parse_err(line_no, "'v' before 't'"))?;
                let idx: usize = next_num(&mut tokens, line_no, "vertex index")?;
                let label: u32 = next_num(&mut tokens, line_no, "vertex label")?;
                let weight: f64 = opt_num(&mut tokens, line_no, "vertex weight")?.unwrap_or(0.0);
                if idx != b.vertex_count() {
                    return Err(parse_err(
                        line_no,
                        &format!(
                            "vertex {idx} declared out of order (expected {})",
                            b.vertex_count()
                        ),
                    ));
                }
                b.add_vertex(VertexAttr { label: Label(label), weight });
            }
            "e" => {
                let b = current.as_mut().ok_or_else(|| parse_err(line_no, "'e' before 't'"))?;
                let u: u32 = next_num(&mut tokens, line_no, "edge source")?;
                let v: u32 = next_num(&mut tokens, line_no, "edge target")?;
                let label: u32 = next_num(&mut tokens, line_no, "edge label")?;
                let weight: f64 = opt_num(&mut tokens, line_no, "edge weight")?.unwrap_or(0.0);
                b.add_edge(VertexId(u), VertexId(v), EdgeAttr { label: Label(label), weight })
                    .map_err(|e| parse_err(line_no, &e.to_string()))?;
            }
            other => return Err(parse_err(line_no, &format!("unknown record tag '{other}'"))),
        }
        if tokens.next().is_some() {
            return Err(parse_err(line_no, "trailing tokens"));
        }
    }
    if let Some(b) = current {
        graphs.push(b.build());
    }
    Ok(graphs)
}

/// Parses a single graph (the first `t` block).
pub fn parse_graph(text: &str) -> Result<LabeledGraph, GraphError> {
    let graphs = parse_database(text)?;
    graphs.into_iter().next().ok_or_else(|| parse_err(0, "input contains no graph"))
}

/// Serializes a database in the text format. Weights are emitted only
/// when non-zero, keeping label-only datasets compact.
pub fn write_database(graphs: &[LabeledGraph]) -> String {
    let mut out = String::new();
    for (id, g) in graphs.iter().enumerate() {
        let _ = writeln!(out, "t {id}");
        for v in g.vertex_ids() {
            let a = g.vertex(v);
            if a.weight != 0.0 {
                let _ = writeln!(out, "v {} {} {}", v.0, a.label.0, a.weight);
            } else {
                let _ = writeln!(out, "v {} {}", v.0, a.label.0);
            }
        }
        for e in g.edges() {
            if e.attr.weight != 0.0 {
                let _ = writeln!(
                    out,
                    "e {} {} {} {}",
                    e.source.0, e.target.0, e.attr.label.0, e.attr.weight
                );
            } else {
                let _ = writeln!(out, "e {} {} {}", e.source.0, e.target.0, e.attr.label.0);
            }
        }
    }
    out
}

/// Renders a graph in Graphviz DOT format for visual inspection
/// (`dot -Tsvg`). Vertex labels become node labels, edge labels edge
/// labels; non-zero weights are appended.
pub fn to_dot(g: &LabeledGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in g.vertex_ids() {
        let a = g.vertex(v);
        if a.weight != 0.0 {
            let _ = writeln!(out, "  v{} [label=\"{}:{:.2}\"];", v.0, a.label.0, a.weight);
        } else {
            let _ = writeln!(out, "  v{} [label=\"{}\"];", v.0, a.label.0);
        }
    }
    for e in g.edges() {
        if e.attr.weight != 0.0 {
            let _ = writeln!(
                out,
                "  v{} -- v{} [label=\"{}:{:.2}\"];",
                e.source.0, e.target.0, e.attr.label.0, e.attr.weight
            );
        } else {
            let _ = writeln!(
                out,
                "  v{} -- v{} [label=\"{}\"];",
                e.source.0, e.target.0, e.attr.label.0
            );
        }
    }
    out.push_str("}\n");
    out
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse { line, message: message.to_string() }
}

fn next_num<T: std::str::FromStr>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let tok = tokens.next().ok_or_else(|| parse_err(line, &format!("missing {what}")))?;
    tok.parse().map_err(|_| parse_err(line, &format!("invalid {what}: '{tok}'")))
}

fn opt_num<T: std::str::FromStr>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<Option<T>, GraphError> {
    match tokens.next() {
        None => Ok(None),
        Some(tok) => {
            tok.parse().map(Some).map_err(|_| parse_err(line, &format!("invalid {what}: '{tok}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::cycle_graph;

    #[test]
    fn round_trip() {
        let graphs = vec![cycle_graph(5, Label(2), Label(3)), cycle_graph(3, Label(1), Label(0))];
        let text = write_database(&graphs);
        let parsed = parse_database(&text).unwrap();
        assert_eq!(parsed, graphs);
    }

    #[test]
    fn round_trip_with_weights() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr { label: Label(1), weight: 0.25 });
        let v = b.add_vertex(VertexAttr { label: Label(2), weight: 0.0 });
        b.add_edge(u, v, EdgeAttr { label: Label(0), weight: 1.75 }).unwrap();
        let g = b.build();
        let parsed = parse_database(&write_database(std::slice::from_ref(&g))).unwrap();
        assert_eq!(parsed, vec![g]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# db\n\nt 0\n v 0 1 \nv 1 1\n# middle\ne 0 1 9\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges()[0].attr.label, Label(9));
    }

    #[test]
    fn error_on_out_of_order_vertex() {
        let text = "t 0\nv 1 0\n";
        let err = parse_database(text).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn error_on_vertex_before_header() {
        let err = parse_database("v 0 0\n").unwrap_err();
        assert!(err.to_string().contains("before 't'"));
    }

    #[test]
    fn error_on_bad_edge_endpoint() {
        let err = parse_database("t 0\nv 0 0\ne 0 5 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }

    #[test]
    fn error_on_unknown_tag() {
        let err = parse_database("x 1 2\n").unwrap_err();
        assert!(err.to_string().contains("unknown record tag"));
    }

    #[test]
    fn error_on_trailing_tokens() {
        let err = parse_database("t 0\nv 0 0 0.5 junk\n").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn empty_input_yields_empty_database() {
        assert!(parse_database("").unwrap().is_empty());
        assert!(parse_graph("").is_err());
    }

    #[test]
    fn dot_export_mentions_every_element() {
        let g = cycle_graph(3, Label(5), Label(7));
        let dot = to_dot(&g, "demo");
        assert!(dot.starts_with("graph demo {"));
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert_eq!(dot.matches("label=\"5\"").count(), 3); // vertices
        assert_eq!(dot.matches("label=\"7\"").count(), 3); // edges
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_export_includes_weights() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr { label: Label(1), weight: 2.5 });
        let v = b.add_vertex(VertexAttr::labeled(Label(1)));
        b.add_edge(u, v, EdgeAttr { label: Label(0), weight: 1.25 }).unwrap();
        let dot = to_dot(&b.build(), "w");
        assert!(dot.contains("1:2.50"));
        assert!(dot.contains("0:1.25"));
    }

    #[test]
    fn multiple_graphs_split_on_headers() {
        let text = "t 0\nv 0 1\nt 1\nv 0 2\nv 1 2\ne 0 1 0\n";
        let db = parse_database(text).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db[0].vertex_count(), 1);
        assert_eq!(db[1].edge_count(), 1);
    }
}
