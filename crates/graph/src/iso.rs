//! VF2-style subgraph isomorphism with full embedding enumeration.
//!
//! The paper's subgraph isomorphism `Q ⊆ G` considers only the structure
//! of the graphs (Section 2); labels are compared separately through the
//! superimposed distance. The matcher therefore defaults to
//! structure-only matching, with optional label-respecting modes used by
//! the mining substrate and by `⊑` (label-preserving containment).
//!
//! Matching is *non-induced* (a monomorphism): every pattern edge must
//! map to a target edge, but the target may have extra edges between
//! mapped vertices — exactly the containment used in the paper's
//! Example 2, where the query ring system is contained in 1H-Indene.
//!
//! The engine exposes a [`MatchVisitor`] hook invoked on every partial
//! assignment, which is how `pis-core` implements the branch-and-bound
//! minimum-superimposed-distance verifier without duplicating the search.
//!
//! Repeated searches amortize their setup: the matching order lives in a
//! reusable flat [`MatchPlan`] arena (target-independent under
//! [`IsoConfig::STRUCTURE`], so one plan serves a query against every
//! candidate), the target adjacency bitset ([`AdjBits`]) rebuilds in
//! place, and [`SubgraphMatcher::search_with_buffers`] threads
//! caller-owned [`SearchBuffers`] through the DFS instead of allocating
//! per call. [`MatchPlan::suffix_lower_bounds`] folds caller-supplied
//! per-element cost floors into per-depth remaining-cost bounds — the
//! admissible heuristic behind `pis-core`'s bound-propagating verifier.

use std::ops::ControlFlow;

use crate::graph::LabeledGraph;
use crate::ids::{EdgeId, VertexId};

/// Label semantics for the matcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IsoConfig {
    /// Require mapped vertices to carry equal labels.
    pub respect_vertex_labels: bool,
    /// Require mapped edges to carry equal labels.
    pub respect_edge_labels: bool,
}

impl IsoConfig {
    /// Structure-only matching (the paper's `⊆`).
    pub const STRUCTURE: IsoConfig =
        IsoConfig { respect_vertex_labels: false, respect_edge_labels: false };

    /// Label-preserving matching (the paper's `⊑`).
    pub const LABELED: IsoConfig =
        IsoConfig { respect_vertex_labels: true, respect_edge_labels: true };
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig::STRUCTURE
    }
}

/// A complete mapping of pattern vertices into a target graph.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Embedding {
    map: Vec<VertexId>,
}

impl Embedding {
    /// The target vertex that pattern vertex `p` maps to.
    #[inline]
    pub fn vertex_image(&self, p: VertexId) -> VertexId {
        self.map[p.index()]
    }

    /// Full mapping as a slice indexed by pattern vertex.
    #[inline]
    pub fn vertex_map(&self) -> &[VertexId] {
        &self.map
    }

    /// The target edge that pattern edge `pe` maps to.
    ///
    /// # Panics
    /// Panics if the embedding is not valid for the given graphs.
    pub fn edge_image(&self, pattern: &LabeledGraph, target: &LabeledGraph, pe: EdgeId) -> EdgeId {
        let e = pattern.edge(pe);
        target
            .edge_between(self.vertex_image(e.source), self.vertex_image(e.target))
            .expect("embedding must map every pattern edge onto a target edge")
    }

    /// The set of target vertices covered, sorted ascending; used to
    /// deduplicate query fragments that differ only by automorphism.
    pub fn sorted_image(&self) -> Vec<VertexId> {
        let mut image = self.map.clone();
        image.sort_unstable();
        image
    }
}

/// Hook invoked by the matcher on every assignment; lets callers prune
/// branches (e.g. by accumulated superimposed distance) and consume
/// complete embeddings.
pub trait MatchVisitor {
    /// Pattern vertex `p` has just passed the structural feasibility
    /// checks for target vertex `t`. Return `false` to prune the branch;
    /// in that case the visitor must leave its own state untouched.
    fn assign(&mut self, p: VertexId, t: VertexId) -> bool;

    /// Undo a previously accepted assignment (called in LIFO order).
    fn unassign(&mut self, p: VertexId, t: VertexId);

    /// A complete embedding was found. Return
    /// [`ControlFlow::Break`] to stop the whole search.
    fn complete(&mut self, embedding: &Embedding) -> ControlFlow<()>;
}

/// A visitor that accepts everything and collects embeddings through a
/// closure.
struct CollectVisitor<F: FnMut(&Embedding) -> ControlFlow<()>> {
    on_complete: F,
}

impl<F: FnMut(&Embedding) -> ControlFlow<()>> MatchVisitor for CollectVisitor<F> {
    #[inline]
    fn assign(&mut self, _p: VertexId, _t: VertexId) -> bool {
        true
    }

    #[inline]
    fn unassign(&mut self, _p: VertexId, _t: VertexId) {}

    #[inline]
    fn complete(&mut self, embedding: &Embedding) -> ControlFlow<()> {
        (self.on_complete)(embedding)
    }
}

/// The precomputed matching order, stored as a flat level-major arena:
/// one entry per depth holding the pattern vertex matched there, the
/// anchor that bounds its candidate images, and a `[check_start,
/// check_start+1, …)` slice into one shared `checks` array of
/// already-matched neighbors. Rebuilding in place keeps every allocation
/// alive, so the plan of a query can be built once and reused across an
/// entire candidate list (under [`IsoConfig::STRUCTURE`] the order is
/// target-independent; see [`MatchPlan::rebuild_for_pattern`]).
#[derive(Clone, Debug, Default)]
pub struct MatchPlan {
    /// Pattern vertex matched at each depth.
    vertices: Vec<VertexId>,
    /// An already-matched pattern neighbor anchoring candidate
    /// generation at each depth (`u32::MAX` for the first vertex of a
    /// component, which scans the whole target).
    anchors: Vec<VertexId>,
    /// CSR offsets into `checks`: depth `d` owns
    /// `checks[check_start[d]..check_start[d + 1]]`.
    check_start: Vec<u32>,
    /// All already-matched pattern neighbors and the connecting pattern
    /// edge, concatenated depth-major; every one must map to a target
    /// edge.
    checks: Vec<(VertexId, EdgeId)>,
    /// Scratch: per-vertex placement flag (reused across rebuilds).
    placed: Vec<bool>,
    /// Scratch: how many placed neighbors each unplaced vertex has.
    back_degree: Vec<usize>,
    /// Scratch: plan position of each pattern vertex.
    position: Vec<usize>,
    /// Scratch: per-vertex candidate-image counts (label rarity).
    rarity: Vec<usize>,
}

impl MatchPlan {
    /// An empty plan; it sizes itself on first rebuild.
    pub fn new() -> Self {
        MatchPlan::default()
    }

    /// Number of depths (= pattern vertices) in the plan.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the plan is empty (empty pattern).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The pattern vertex matched at `depth`.
    #[inline]
    pub fn vertex(&self, depth: usize) -> VertexId {
        self.vertices[depth]
    }

    /// The already-matched neighbors (and connecting pattern edges)
    /// checked when matching `depth`.
    #[inline]
    pub fn checks(&self, depth: usize) -> &[(VertexId, EdgeId)] {
        &self.checks[self.check_start[depth] as usize..self.check_start[depth + 1] as usize]
    }

    #[inline]
    fn anchor(&self, depth: usize) -> Option<VertexId> {
        let a = self.anchors[depth];
        (a != VertexId(u32::MAX)).then_some(a)
    }

    /// Rebuilds the plan for a structure-only search
    /// ([`IsoConfig::STRUCTURE`]). The order depends only on the
    /// pattern, so one plan serves the pattern against every target —
    /// the matcher produced by [`SubgraphMatcher::with_parts`] runs the
    /// exact same DFS as a freshly built one.
    pub fn rebuild_for_pattern(&mut self, pattern: &LabeledGraph) {
        self.rebuild_inner(pattern, None);
    }

    /// Rebuilds the plan for a `(pattern, target, config)` triple —
    /// label-respecting configs use the target's label frequencies to
    /// order rare-labeled vertices first.
    pub fn rebuild(&mut self, pattern: &LabeledGraph, target: &LabeledGraph, config: IsoConfig) {
        self.rebuild_inner(pattern, config.respect_vertex_labels.then_some(target));
    }

    /// Matching order: connectivity-first greedy selection.
    ///
    /// At every step the next pattern vertex is the unplaced one with
    ///
    /// 1. the most already-placed neighbors (every placed neighbor is a
    ///    structural constraint that fires the moment the vertex is
    ///    tried — the core idea of VF2++'s ordering),
    /// 2. then the rarest label among target vertices (label-respecting
    ///    configs only: fewer candidate images, smaller branching
    ///    factor),
    /// 3. then the highest pattern degree (dense regions constrain
    ///    first),
    /// 4. then the smallest id (determinism).
    ///
    /// Because criterion 1 dominates, a vertex adjacent to the placed
    /// prefix is always preferred over starting a new region: each
    /// component is matched contiguously and every step after a
    /// component's first has an anchor.
    fn rebuild_inner(&mut self, pattern: &LabeledGraph, rarity_target: Option<&LabeledGraph>) {
        let n = pattern.vertex_count();
        // How many target vertices could host each pattern vertex, by
        // label. Erased/uniform labels make this a constant, disabling
        // criterion 2.
        self.rarity.clear();
        match rarity_target {
            Some(target) => self.rarity.extend(pattern.vertex_ids().map(|p| {
                let label = pattern.vertex(p).label;
                target.vertex_ids().filter(|&t| target.vertex(t).label == label).count()
            })),
            None => self.rarity.resize(n, 0),
        }
        self.placed.clear();
        self.placed.resize(n, false);
        self.back_degree.clear();
        self.back_degree.resize(n, 0);
        self.vertices.clear();
        for _ in 0..n {
            let mut best: Option<VertexId> = None;
            let mut best_key = (0usize, usize::MAX, 0usize, u32::MAX);
            for v in pattern.vertex_ids() {
                if self.placed[v.index()] {
                    continue;
                }
                // Lexicographic: back-degree desc, rarity asc, degree
                // desc, id asc — encoded so the largest tuple wins.
                let key = (
                    self.back_degree[v.index()] + 1,
                    usize::MAX - self.rarity[v.index()],
                    pattern.degree(v),
                    u32::MAX - v.0,
                );
                if best.is_none() || key > best_key {
                    best = Some(v);
                    best_key = key;
                }
            }
            let v = best.expect("an unplaced vertex remains");
            self.placed[v.index()] = true;
            for &(w, _) in pattern.neighbors(v) {
                self.back_degree[w.index()] += 1;
            }
            self.vertices.push(v);
        }
        debug_assert_eq!(self.vertices.len(), n);
        // Derive anchors and checks strictly by plan position. The
        // anchor is the earliest-placed checked neighbor (its image
        // bounds the candidate set).
        self.position.clear();
        self.position.resize(n, usize::MAX);
        for (i, &v) in self.vertices.iter().enumerate() {
            self.position[v.index()] = i;
        }
        self.anchors.clear();
        self.check_start.clear();
        self.checks.clear();
        self.check_start.push(0);
        for (i, &v) in self.vertices.iter().enumerate() {
            let mut anchor = VertexId(u32::MAX);
            let mut anchor_pos = usize::MAX;
            for &(q, e) in pattern.neighbors(v) {
                let pos = self.position[q.index()];
                if pos < i {
                    self.checks.push((q, e));
                    if pos < anchor_pos {
                        anchor_pos = pos;
                        anchor = q;
                    }
                }
            }
            self.anchors.push(anchor);
            self.check_start.push(self.checks.len() as u32);
        }
    }

    /// Folds per-element cost floors into per-depth remaining-cost
    /// bounds: `out[d]` is a lower bound on the cost still to be paid
    /// once the first `d` plan steps are assigned, with `out[len()] =
    /// 0`.
    ///
    /// `vertex_floor[p]` must lower-bound the vertex cost of pattern
    /// vertex `p` under any feasible image, and `edge_floor[e]` the edge
    /// cost of pattern edge `e` under any feasible image. Each edge is
    /// attributed to the depth of its later-placed endpoint — exactly
    /// the step whose `checks` pay it during the DFS — so `out[d]`
    /// covers precisely the cost components no partial assignment of
    /// depth `d` has accumulated yet. Both floors may be
    /// `f64::INFINITY` (no feasible image at all), which propagates into
    /// the suffix and lets callers refute the whole pair up front.
    pub fn suffix_lower_bounds(
        &self,
        vertex_floor: &[f64],
        edge_floor: &[f64],
        out: &mut Vec<f64>,
    ) {
        let n = self.len();
        out.clear();
        out.resize(n + 1, 0.0);
        let mut acc = 0.0;
        for d in (0..n).rev() {
            acc += vertex_floor[self.vertex(d).index()];
            for &(_, e) in self.checks(d) {
                acc += edge_floor[e.index()];
            }
            out[d] = acc;
        }
    }
}

/// Targets above this size skip the adjacency-matrix bitset (quadratic
/// memory); `edge_between` scans take over. Molecular graphs sit around
/// 25 vertices, so in practice the matrix is always on.
const ADJ_BITS_MAX_VERTICES: usize = 4096;

/// Dense target adjacency: one bitset row per vertex, so the matcher's
/// edge-existence checks are a shift and a mask instead of an
/// adjacency-list scan. Rebuilding in place keeps the bit storage
/// allocated across targets.
#[derive(Clone, Debug, Default)]
pub struct AdjBits {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl AdjBits {
    /// Empty storage; populate with [`AdjBits::rebuild`].
    pub fn new() -> Self {
        AdjBits::default()
    }

    /// Rebuilds the adjacency matrix for `g`, reusing the bit storage.
    /// Returns `false` (leaving the matrix unusable) when `g` is too
    /// large for quadratic memory; callers then fall back to
    /// `edge_between` scans.
    pub fn rebuild(&mut self, g: &LabeledGraph) -> bool {
        let n = g.vertex_count();
        if n > ADJ_BITS_MAX_VERTICES {
            return false;
        }
        self.words_per_row = n.div_ceil(64);
        self.bits.clear();
        self.bits.resize(n * self.words_per_row, 0);
        for e in g.edges() {
            let (u, v) = (e.source.index(), e.target.index());
            self.bits[u * self.words_per_row + v / 64] |= 1 << (v % 64);
            self.bits[v * self.words_per_row + u / 64] |= 1 << (u % 64);
        }
        true
    }

    fn build(g: &LabeledGraph) -> Option<AdjBits> {
        let mut adj = AdjBits::new();
        adj.rebuild(g).then_some(adj)
    }

    /// Whether `u` and `v` are adjacent.
    #[inline]
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        (self.bits[u.index() * self.words_per_row + v.index() / 64] >> (v.index() % 64)) & 1 == 1
    }
}

/// Targets above this size skip the dense edge-id grid (quadratic
/// `u32` memory, 16× an [`AdjBits`] row set); `edge_between` scans take
/// over, exactly as for the bitset.
const EDGE_GRID_MAX_VERTICES: usize = 1024;

/// Dense target edge lookup: the edge id connecting each vertex pair,
/// so cost-accounting visitors resolve the edge an adjacency bit
/// implies in O(1) instead of rescanning a neighbor list. Rebuilding in
/// place keeps the storage allocated across targets.
#[derive(Clone, Debug, Default)]
pub struct EdgeGrid {
    stride: usize,
    ids: Vec<u32>,
}

impl EdgeGrid {
    /// Empty storage; populate with [`EdgeGrid::rebuild`].
    pub fn new() -> Self {
        EdgeGrid::default()
    }

    /// Rebuilds the grid for `g`, reusing the id storage. Returns
    /// `false` (leaving the grid unusable) when `g` is too large for
    /// quadratic memory; callers then fall back to `edge_between`.
    pub fn rebuild(&mut self, g: &LabeledGraph) -> bool {
        let n = g.vertex_count();
        if n > EDGE_GRID_MAX_VERTICES {
            return false;
        }
        self.stride = n;
        self.ids.clear();
        self.ids.resize(n * n, u32::MAX);
        for (i, e) in g.edges().iter().enumerate() {
            let (u, v) = (e.source.index(), e.target.index());
            self.ids[u * n + v] = i as u32;
            self.ids[v * n + u] = i as u32;
        }
        true
    }

    /// The edge between `u` and `v`, if any.
    #[inline]
    pub fn get(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let id = self.ids[u.index() * self.stride + v.index()];
        (id != u32::MAX).then_some(EdgeId(id))
    }
}

/// Reusable DFS state of one search: the partial map, the used-vertex
/// flags and the embedding handed to the visitor. One buffer set serves
/// any number of sequential [`SubgraphMatcher::search_with_buffers`]
/// calls of any size (buffers re-size per call), making the steady-state
/// search allocation-free.
#[derive(Clone, Debug, Default)]
pub struct SearchBuffers {
    map: Vec<VertexId>,
    used: Vec<bool>,
    embedding: Embedding,
}

impl SearchBuffers {
    /// Empty buffers; they size themselves per search.
    pub fn new() -> Self {
        SearchBuffers::default()
    }
}

/// The plan a matcher runs: built for this pair, or borrowed from a
/// caller amortizing one plan across many targets.
enum PlanSource<'a> {
    Owned(MatchPlan),
    Borrowed(&'a MatchPlan),
}

/// The adjacency matrix a matcher consults (`None` = target too large).
enum AdjSource<'a> {
    Owned(Option<AdjBits>),
    Borrowed(Option<&'a AdjBits>),
}

/// VF2-style matcher for one `(pattern, target)` pair.
///
/// The matcher precomputes a connected matching order over the pattern
/// once and can then run several searches. The order is guided by the
/// target (see [`MatchPlan::rebuild`]): vertices with many
/// already-placed neighbors go first so every structural constraint
/// fires as early as possible, with rare-labeled and high-degree
/// vertices breaking ties.
pub struct SubgraphMatcher<'a> {
    pattern: &'a LabeledGraph,
    target: &'a LabeledGraph,
    config: IsoConfig,
    plan: PlanSource<'a>,
    adj: AdjSource<'a>,
}

/// The borrow-resolved search state threaded through the DFS.
struct SearchCtx<'s> {
    pattern: &'s LabeledGraph,
    target: &'s LabeledGraph,
    config: IsoConfig,
    plan: &'s MatchPlan,
    adj: Option<&'s AdjBits>,
}

impl<'a> SubgraphMatcher<'a> {
    /// Builds a matcher; cost is near-linear in the two graph sizes
    /// (plus one adjacency-bitset row per target vertex).
    pub fn new(pattern: &'a LabeledGraph, target: &'a LabeledGraph, config: IsoConfig) -> Self {
        let mut plan = MatchPlan::new();
        plan.rebuild(pattern, target, config);
        let adj = AdjBits::build(target);
        SubgraphMatcher {
            pattern,
            target,
            config,
            plan: PlanSource::Owned(plan),
            adj: AdjSource::Owned(adj),
        }
    }

    /// A matcher over caller-owned parts: a plan already rebuilt for
    /// `(pattern, target, config)` (or for `pattern` alone under
    /// [`IsoConfig::STRUCTURE`], where the order is target-independent)
    /// and an optional adjacency matrix already rebuilt for `target`.
    /// Runs the exact same DFS as [`SubgraphMatcher::new`] without
    /// paying the setup — the amortization behind `pis-core`'s
    /// `VerifyScratch`.
    pub fn with_parts(
        pattern: &'a LabeledGraph,
        target: &'a LabeledGraph,
        config: IsoConfig,
        plan: &'a MatchPlan,
        adj: Option<&'a AdjBits>,
    ) -> Self {
        debug_assert_eq!(plan.len(), pattern.vertex_count(), "plan built for another pattern");
        SubgraphMatcher {
            pattern,
            target,
            config,
            plan: PlanSource::Borrowed(plan),
            adj: AdjSource::Borrowed(adj),
        }
    }

    fn ctx(&self) -> SearchCtx<'_> {
        SearchCtx {
            pattern: self.pattern,
            target: self.target,
            config: self.config,
            plan: match &self.plan {
                PlanSource::Owned(p) => p,
                PlanSource::Borrowed(p) => p,
            },
            adj: match &self.adj {
                AdjSource::Owned(a) => a.as_ref(),
                AdjSource::Borrowed(a) => *a,
            },
        }
    }

    /// Runs the search, driving `visitor`.
    pub fn search(&self, visitor: &mut dyn MatchVisitor) {
        self.search_with_buffers(&mut SearchBuffers::new(), visitor);
    }

    /// [`SubgraphMatcher::search`] with caller-owned DFS buffers, so
    /// repeated searches allocate nothing.
    pub fn search_with_buffers(&self, bufs: &mut SearchBuffers, visitor: &mut dyn MatchVisitor) {
        let n = self.pattern.vertex_count();
        if n > self.target.vertex_count() || self.pattern.edge_count() > self.target.edge_count() {
            return;
        }
        bufs.map.clear();
        bufs.map.resize(n, VertexId(u32::MAX));
        bufs.used.clear();
        bufs.used.resize(self.target.vertex_count(), false);
        let ctx = self.ctx();
        let SearchBuffers { map, used, embedding } = bufs;
        let _ = ctx.recurse(0, map, used, embedding, visitor);
    }

    /// Calls `f` for every embedding; stop early by returning `Break`.
    pub fn for_each(&self, f: impl FnMut(&Embedding) -> ControlFlow<()>) {
        let mut visitor = CollectVisitor { on_complete: f };
        self.search(&mut visitor);
    }

    /// The first embedding in deterministic search order, if any.
    pub fn find_first(&self) -> Option<Embedding> {
        let mut found = None;
        self.for_each(|e| {
            found = Some(e.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// Whether at least one embedding exists.
    pub fn exists(&self) -> bool {
        self.find_first().is_some()
    }

    /// Number of embeddings, stopping at `limit` if given.
    pub fn count(&self, limit: Option<usize>) -> usize {
        let mut n = 0usize;
        self.for_each(|_| {
            n += 1;
            if limit.is_some_and(|l| n >= l) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        n
    }

    /// All embeddings, in deterministic search order.
    pub fn all(&self) -> Vec<Embedding> {
        let mut out = Vec::new();
        self.for_each(|e| {
            out.push(e.clone());
            ControlFlow::Continue(())
        });
        out
    }
}

impl SearchCtx<'_> {
    fn recurse(
        &self,
        depth: usize,
        map: &mut Vec<VertexId>,
        used: &mut [bool],
        embedding: &mut Embedding,
        visitor: &mut dyn MatchVisitor,
    ) -> ControlFlow<()> {
        if depth == self.plan.len() {
            // One reusable buffer for every complete embedding the
            // visitor sees: `clone_from` keeps its allocation alive
            // across hits.
            embedding.map.clone_from(map);
            return visitor.complete(embedding);
        }
        let p = self.plan.vertex(depth);
        match self.plan.anchor(depth) {
            Some(q) => {
                // Candidates: neighbors of the image of the anchor. The
                // slice borrows the target, disjoint from `map`/`used`.
                let image = map[q.index()];
                for &(t, _) in self.target.neighbors(image) {
                    self.try_candidate(depth, p, t, map, used, embedding, visitor)?;
                }
            }
            None => {
                for t in 0..self.target.vertex_count() as u32 {
                    self.try_candidate(depth, p, VertexId(t), map, used, embedding, visitor)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // private hot path; the args are the search state
    fn try_candidate(
        &self,
        depth: usize,
        p: VertexId,
        t: VertexId,
        map: &mut Vec<VertexId>,
        used: &mut [bool],
        embedding: &mut Embedding,
        visitor: &mut dyn MatchVisitor,
    ) -> ControlFlow<()> {
        if used[t.index()] {
            return ControlFlow::Continue(());
        }
        if self.target.degree(t) < self.pattern.degree(p) {
            return ControlFlow::Continue(());
        }
        if self.config.respect_vertex_labels
            && self.pattern.vertex(p).label != self.target.vertex(t).label
        {
            return ControlFlow::Continue(());
        }
        for &(q, pe) in self.plan.checks(depth) {
            let tq = map[q.index()];
            if let Some(adj) = self.adj {
                if !adj.contains(tq, t) {
                    return ControlFlow::Continue(());
                }
                if self.config.respect_edge_labels {
                    let te =
                        self.target.edge_between(tq, t).expect("adjacency bit implies an edge");
                    if self.pattern.edge(pe).attr.label != self.target.edge(te).attr.label {
                        return ControlFlow::Continue(());
                    }
                }
            } else {
                let Some(te) = self.target.edge_between(tq, t) else {
                    return ControlFlow::Continue(());
                };
                if self.config.respect_edge_labels
                    && self.pattern.edge(pe).attr.label != self.target.edge(te).attr.label
                {
                    return ControlFlow::Continue(());
                }
            }
        }
        // One-level lookahead: `p` still has `deg(p) - placed` neighbors
        // waiting to be placed (the plan fixes which neighbors are
        // already mapped at each depth), and injectivity forces each
        // onto a distinct unused neighbor of `t`. Skip `t` outright when
        // it cannot supply that many — the subtree holds no complete
        // embedding, so every visitor sees the same results.
        let need = self.pattern.degree(p) - self.plan.checks(depth).len();
        if need > 0 {
            let mut have = 0;
            for &(u, _) in self.target.neighbors(t) {
                if !used[u.index()] {
                    have += 1;
                    if have == need {
                        break;
                    }
                }
            }
            if have < need {
                return ControlFlow::Continue(());
            }
        }
        if !visitor.assign(p, t) {
            return ControlFlow::Continue(());
        }
        map[p.index()] = t;
        used[t.index()] = true;
        let flow = self.recurse(depth + 1, map, used, embedding, visitor);
        used[t.index()] = false;
        map[p.index()] = VertexId(u32::MAX);
        visitor.unassign(p, t);
        flow
    }
}

/// Convenience: does `pattern ⊆ target` (structure-only by default)?
pub fn is_subgraph(pattern: &LabeledGraph, target: &LabeledGraph, config: IsoConfig) -> bool {
    SubgraphMatcher::new(pattern, target, config).exists()
}

/// Convenience: all embeddings of `pattern` into `target`.
pub fn embeddings(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    config: IsoConfig,
) -> Vec<Embedding> {
    SubgraphMatcher::new(pattern, target, config).all()
}

/// All automorphisms of `g` (label-respecting self-embeddings).
///
/// Because `g` is finite and the mapping is injective on an equal number
/// of vertices and preserves all edges, every such embedding is an
/// automorphism.
pub fn automorphisms(g: &LabeledGraph) -> Vec<Embedding> {
    embeddings(g, g, IsoConfig::LABELED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{
        complete_graph, cycle_graph, path_graph, star_graph, EdgeAttr, GraphBuilder, VertexAttr,
    };
    use crate::ids::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn path_in_cycle() {
        let p = path_graph(3, l(0), l(0));
        let c = cycle_graph(6, l(0), l(0));
        assert!(is_subgraph(&p, &c, IsoConfig::STRUCTURE));
        // 6 starting points × 2 directions = 12 embeddings.
        assert_eq!(embeddings(&p, &c, IsoConfig::STRUCTURE).len(), 12);
    }

    #[test]
    fn cycle_not_in_path() {
        let c = cycle_graph(3, l(0), l(0));
        let p = path_graph(5, l(0), l(0));
        assert!(!is_subgraph(&c, &p, IsoConfig::STRUCTURE));
    }

    #[test]
    fn larger_pattern_never_matches() {
        let big = path_graph(7, l(0), l(0));
        let small = path_graph(3, l(0), l(0));
        assert!(!is_subgraph(&big, &small, IsoConfig::STRUCTURE));
    }

    #[test]
    fn non_induced_semantics() {
        // A 3-path maps into a triangle even though the triangle has the
        // extra closing edge (monomorphism, not induced).
        let p = path_graph(3, l(0), l(0));
        let t = complete_graph(3, l(0), l(0));
        assert!(is_subgraph(&p, &t, IsoConfig::STRUCTURE));
        assert_eq!(embeddings(&p, &t, IsoConfig::STRUCTURE).len(), 6);
    }

    #[test]
    fn vertex_labels_respected_when_asked() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr::labeled(l(1)));
        let v = b.add_vertex(VertexAttr::labeled(l(2)));
        b.add_edge(u, v, EdgeAttr::labeled(l(0))).unwrap();
        let pattern = b.build();

        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr::labeled(l(2)));
        let v = b.add_vertex(VertexAttr::labeled(l(2)));
        b.add_edge(u, v, EdgeAttr::labeled(l(0))).unwrap();
        let target = b.build();

        assert!(is_subgraph(&pattern, &target, IsoConfig::STRUCTURE));
        assert!(!is_subgraph(&pattern, &target, IsoConfig::LABELED));
    }

    #[test]
    fn edge_labels_respected_when_asked() {
        let p = path_graph(2, l(0), l(1));
        let t = path_graph(2, l(0), l(2));
        assert!(is_subgraph(&p, &t, IsoConfig::STRUCTURE));
        assert!(!is_subgraph(
            &p,
            &t,
            IsoConfig { respect_vertex_labels: false, respect_edge_labels: true }
        ));
    }

    #[test]
    fn embedding_edge_image() {
        let p = path_graph(2, l(0), l(0));
        let c = cycle_graph(4, l(0), l(0));
        let e = SubgraphMatcher::new(&p, &c, IsoConfig::STRUCTURE).find_first().unwrap();
        let te = e.edge_image(&p, &c, EdgeId(0));
        let edge = c.edge(te);
        assert!(edge.is_incident(e.vertex_image(VertexId(0))));
        assert!(edge.is_incident(e.vertex_image(VertexId(1))));
    }

    #[test]
    fn automorphisms_of_cycle_form_dihedral_group() {
        let c = cycle_graph(6, l(0), l(0));
        assert_eq!(automorphisms(&c).len(), 12); // D6: 6 rotations × 2 reflections
        let p = path_graph(4, l(0), l(0));
        assert_eq!(automorphisms(&p).len(), 2); // identity + reversal
        let k = complete_graph(4, l(0), l(0));
        assert_eq!(automorphisms(&k).len(), 24); // S4
        let s = star_graph(3, l(0), l(0));
        assert_eq!(automorphisms(&s).len(), 6); // S3 on the leaves
    }

    #[test]
    fn count_with_limit_stops_early() {
        let p = path_graph(2, l(0), l(0));
        let k = complete_graph(6, l(0), l(0));
        let m = SubgraphMatcher::new(&p, &k, IsoConfig::STRUCTURE);
        assert_eq!(m.count(Some(5)), 5);
        assert_eq!(m.count(None), 30); // 15 edges × 2 directions
    }

    #[test]
    fn empty_pattern_has_one_empty_embedding() {
        let p = LabeledGraph::default();
        let t = path_graph(3, l(0), l(0));
        let all = embeddings(&p, &t, IsoConfig::STRUCTURE);
        assert_eq!(all.len(), 1);
        assert!(all[0].vertex_map().is_empty());
    }

    #[test]
    fn disconnected_pattern_matches_injectively() {
        // Two isolated pattern vertices into a 2-path: 2 injective maps.
        let mut b = GraphBuilder::new();
        b.add_vertex(VertexAttr::labeled(l(0)));
        b.add_vertex(VertexAttr::labeled(l(0)));
        let p = b.build();
        let t = path_graph(2, l(0), l(0));
        assert_eq!(embeddings(&p, &t, IsoConfig::STRUCTURE).len(), 2);
    }

    #[test]
    fn branch_and_bound_visitor_prunes() {
        // A visitor that rejects mapping pattern v0 onto target v0 sees
        // only the embeddings avoiding that assignment.
        let p = path_graph(2, l(0), l(0));
        let t = path_graph(2, l(0), l(0));
        struct CountingReject(usize);
        impl MatchVisitor for CountingReject {
            fn assign(&mut self, p: VertexId, t: VertexId) -> bool {
                !(p == VertexId(0) && t == VertexId(0))
            }
            fn unassign(&mut self, _p: VertexId, _t: VertexId) {}
            fn complete(&mut self, _e: &Embedding) -> ControlFlow<()> {
                self.0 += 1;
                ControlFlow::Continue(())
            }
        }
        let mut v = CountingReject(0);
        SubgraphMatcher::new(&p, &t, IsoConfig::STRUCTURE).search(&mut v);
        // Unpruned there are 2 embeddings; the one mapping v0->v0 is cut.
        assert_eq!(v.0, 1);
    }

    #[test]
    fn sorted_image_dedups_automorphic_embeddings() {
        let p = path_graph(3, l(0), l(0));
        let c = cycle_graph(6, l(0), l(0));
        let mut images: Vec<Vec<VertexId>> =
            embeddings(&p, &c, IsoConfig::STRUCTURE).iter().map(Embedding::sorted_image).collect();
        images.sort();
        images.dedup();
        assert_eq!(images.len(), 6); // 6 distinct 3-vertex windows on C6
    }

    #[test]
    fn borrowed_parts_run_the_same_search() {
        // A structure plan built from the pattern alone, plus a rebuilt
        // adjacency matrix, must enumerate the exact same embeddings in
        // the exact same order as the owning constructor — across
        // several targets sharing one plan and one bitset allocation.
        let p = path_graph(3, l(0), l(0));
        let mut plan = MatchPlan::new();
        plan.rebuild_for_pattern(&p);
        let mut adj = AdjBits::new();
        let mut bufs = SearchBuffers::new();
        for t in [
            cycle_graph(6, l(0), l(0)),
            complete_graph(4, l(0), l(0)),
            star_graph(4, l(0), l(0)),
            path_graph(2, l(0), l(0)), // pattern larger than target
        ] {
            let built = adj.rebuild(&t);
            assert!(built);
            let borrowed =
                SubgraphMatcher::with_parts(&p, &t, IsoConfig::STRUCTURE, &plan, Some(&adj));
            let mut got = Vec::new();
            let mut collect = CollectVisitor {
                on_complete: |e: &Embedding| {
                    got.push(e.clone());
                    ControlFlow::Continue(())
                },
            };
            borrowed.search_with_buffers(&mut bufs, &mut collect);
            assert_eq!(got, embeddings(&p, &t, IsoConfig::STRUCTURE));
        }
    }

    #[test]
    fn plan_rebuild_matches_fresh_plan() {
        // Rebuilding a dirty plan in place yields the same order, checks
        // and anchors as a fresh one.
        let graphs =
            [cycle_graph(5, l(0), l(1)), star_graph(4, l(2), l(0)), path_graph(6, l(0), l(0))];
        let mut reused = MatchPlan::new();
        for g in &graphs {
            reused.rebuild_for_pattern(g);
            let mut fresh = MatchPlan::new();
            fresh.rebuild_for_pattern(g);
            assert_eq!(reused.len(), fresh.len());
            for d in 0..fresh.len() {
                assert_eq!(reused.vertex(d), fresh.vertex(d));
                assert_eq!(reused.anchor(d), fresh.anchor(d));
                assert_eq!(reused.checks(d), fresh.checks(d));
            }
        }
    }

    #[test]
    fn suffix_lower_bounds_accumulate_by_plan_depth() {
        // Triangle: every vertex costs 1, every edge costs 10. The plan
        // places 3 vertices; depth 1 still owes 2 vertices + all edges
        // checked from depth 1 on. Attribution: the triangle's 3 edges
        // split 1 at depth 1 (first anchored step) and 2 at depth 2.
        let g = cycle_graph(3, l(0), l(0));
        let mut plan = MatchPlan::new();
        plan.rebuild_for_pattern(&g);
        let vertex_floor = vec![1.0; 3];
        let edge_floor = vec![10.0; 3];
        let mut suffix = Vec::new();
        plan.suffix_lower_bounds(&vertex_floor, &edge_floor, &mut suffix);
        assert_eq!(suffix, vec![33.0, 32.0, 21.0, 0.0]);
    }

    #[test]
    fn suffix_lower_bounds_propagate_infinity() {
        let g = path_graph(2, l(0), l(0));
        let mut plan = MatchPlan::new();
        plan.rebuild_for_pattern(&g);
        let mut suffix = Vec::new();
        plan.suffix_lower_bounds(&[0.0, f64::INFINITY], &[0.0], &mut suffix);
        assert!(suffix[0].is_infinite());
        assert_eq!(*suffix.last().unwrap(), 0.0);
    }
}
