//! VF2-style subgraph isomorphism with full embedding enumeration.
//!
//! The paper's subgraph isomorphism `Q ⊆ G` considers only the structure
//! of the graphs (Section 2); labels are compared separately through the
//! superimposed distance. The matcher therefore defaults to
//! structure-only matching, with optional label-respecting modes used by
//! the mining substrate and by `⊑` (label-preserving containment).
//!
//! Matching is *non-induced* (a monomorphism): every pattern edge must
//! map to a target edge, but the target may have extra edges between
//! mapped vertices — exactly the containment used in the paper's
//! Example 2, where the query ring system is contained in 1H-Indene.
//!
//! The engine exposes a [`MatchVisitor`] hook invoked on every partial
//! assignment, which is how `pis-core` implements the branch-and-bound
//! minimum-superimposed-distance verifier without duplicating the search.

use std::ops::ControlFlow;

use crate::graph::LabeledGraph;
use crate::ids::{EdgeId, VertexId};

/// Label semantics for the matcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IsoConfig {
    /// Require mapped vertices to carry equal labels.
    pub respect_vertex_labels: bool,
    /// Require mapped edges to carry equal labels.
    pub respect_edge_labels: bool,
}

impl IsoConfig {
    /// Structure-only matching (the paper's `⊆`).
    pub const STRUCTURE: IsoConfig =
        IsoConfig { respect_vertex_labels: false, respect_edge_labels: false };

    /// Label-preserving matching (the paper's `⊑`).
    pub const LABELED: IsoConfig =
        IsoConfig { respect_vertex_labels: true, respect_edge_labels: true };
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig::STRUCTURE
    }
}

/// A complete mapping of pattern vertices into a target graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Embedding {
    map: Vec<VertexId>,
}

impl Embedding {
    /// The target vertex that pattern vertex `p` maps to.
    #[inline]
    pub fn vertex_image(&self, p: VertexId) -> VertexId {
        self.map[p.index()]
    }

    /// Full mapping as a slice indexed by pattern vertex.
    #[inline]
    pub fn vertex_map(&self) -> &[VertexId] {
        &self.map
    }

    /// The target edge that pattern edge `pe` maps to.
    ///
    /// # Panics
    /// Panics if the embedding is not valid for the given graphs.
    pub fn edge_image(&self, pattern: &LabeledGraph, target: &LabeledGraph, pe: EdgeId) -> EdgeId {
        let e = pattern.edge(pe);
        target
            .edge_between(self.vertex_image(e.source), self.vertex_image(e.target))
            .expect("embedding must map every pattern edge onto a target edge")
    }

    /// The set of target vertices covered, sorted ascending; used to
    /// deduplicate query fragments that differ only by automorphism.
    pub fn sorted_image(&self) -> Vec<VertexId> {
        let mut image = self.map.clone();
        image.sort_unstable();
        image
    }
}

/// Hook invoked by the matcher on every assignment; lets callers prune
/// branches (e.g. by accumulated superimposed distance) and consume
/// complete embeddings.
pub trait MatchVisitor {
    /// Pattern vertex `p` has just passed the structural feasibility
    /// checks for target vertex `t`. Return `false` to prune the branch;
    /// in that case the visitor must leave its own state untouched.
    fn assign(&mut self, p: VertexId, t: VertexId) -> bool;

    /// Undo a previously accepted assignment (called in LIFO order).
    fn unassign(&mut self, p: VertexId, t: VertexId);

    /// A complete embedding was found. Return
    /// [`ControlFlow::Break`] to stop the whole search.
    fn complete(&mut self, embedding: &Embedding) -> ControlFlow<()>;
}

/// A visitor that accepts everything and collects embeddings through a
/// closure.
struct CollectVisitor<F: FnMut(&Embedding) -> ControlFlow<()>> {
    on_complete: F,
}

impl<F: FnMut(&Embedding) -> ControlFlow<()>> MatchVisitor for CollectVisitor<F> {
    #[inline]
    fn assign(&mut self, _p: VertexId, _t: VertexId) -> bool {
        true
    }

    #[inline]
    fn unassign(&mut self, _p: VertexId, _t: VertexId) {}

    #[inline]
    fn complete(&mut self, embedding: &Embedding) -> ControlFlow<()> {
        (self.on_complete)(embedding)
    }
}

/// Per-depth data of the precomputed matching plan.
struct PlanStep {
    /// Pattern vertex matched at this depth.
    vertex: VertexId,
    /// An already-matched pattern neighbor used to anchor candidate
    /// generation (None only for the first vertex of a component).
    anchor: Option<VertexId>,
    /// All already-matched pattern neighbors and the connecting pattern
    /// edge; every one must map to a target edge.
    checks: Vec<(VertexId, EdgeId)>,
}

/// Targets above this size skip the adjacency-matrix bitset (quadratic
/// memory); `edge_between` scans take over. Molecular graphs sit around
/// 25 vertices, so in practice the matrix is always on.
const ADJ_BITS_MAX_VERTICES: usize = 4096;

/// Dense target adjacency: one bitset row per vertex, so the matcher's
/// edge-existence checks are a shift and a mask instead of an
/// adjacency-list scan.
struct AdjBits {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl AdjBits {
    fn build(g: &LabeledGraph) -> Option<AdjBits> {
        let n = g.vertex_count();
        if n > ADJ_BITS_MAX_VERTICES {
            return None;
        }
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for e in g.edges() {
            let (u, v) = (e.source.index(), e.target.index());
            bits[u * words_per_row + v / 64] |= 1 << (v % 64);
            bits[v * words_per_row + u / 64] |= 1 << (u % 64);
        }
        Some(AdjBits { words_per_row, bits })
    }

    #[inline]
    fn contains(&self, u: VertexId, v: VertexId) -> bool {
        (self.bits[u.index() * self.words_per_row + v.index() / 64] >> (v.index() % 64)) & 1 == 1
    }
}

/// VF2-style matcher for one `(pattern, target)` pair.
///
/// The matcher precomputes a connected matching order over the pattern
/// once and can then run several searches. The order is guided by the
/// target (see `build_plan`): vertices with many already-placed
/// neighbors go first so every structural constraint fires as early as
/// possible, with rare-labeled and high-degree vertices breaking ties.
pub struct SubgraphMatcher<'a> {
    pattern: &'a LabeledGraph,
    target: &'a LabeledGraph,
    config: IsoConfig,
    plan: Vec<PlanStep>,
    adj: Option<AdjBits>,
}

impl<'a> SubgraphMatcher<'a> {
    /// Builds a matcher; cost is near-linear in the two graph sizes
    /// (plus one adjacency-bitset row per target vertex).
    pub fn new(pattern: &'a LabeledGraph, target: &'a LabeledGraph, config: IsoConfig) -> Self {
        let plan = build_plan(pattern, target, config);
        let adj = AdjBits::build(target);
        SubgraphMatcher { pattern, target, config, plan, adj }
    }

    /// Runs the search, driving `visitor`.
    pub fn search(&self, visitor: &mut dyn MatchVisitor) {
        let n = self.pattern.vertex_count();
        if n > self.target.vertex_count() || self.pattern.edge_count() > self.target.edge_count() {
            return;
        }
        let mut map: Vec<VertexId> = vec![VertexId(u32::MAX); n];
        let mut used = vec![false; self.target.vertex_count()];
        // One reusable buffer for every complete embedding the visitor
        // sees: `clone_from` keeps its allocation alive across hits.
        let mut embedding = Embedding { map: Vec::with_capacity(n) };
        let _ = self.recurse(0, &mut map, &mut used, &mut embedding, visitor);
    }

    fn recurse(
        &self,
        depth: usize,
        map: &mut Vec<VertexId>,
        used: &mut [bool],
        embedding: &mut Embedding,
        visitor: &mut dyn MatchVisitor,
    ) -> ControlFlow<()> {
        if depth == self.plan.len() {
            embedding.map.clone_from(map);
            return visitor.complete(embedding);
        }
        let step = &self.plan[depth];
        let p = step.vertex;
        match step.anchor {
            Some(q) => {
                // Candidates: neighbors of the image of the anchor. The
                // slice borrows the target for 'a, disjoint from
                // `map`/`used`.
                let image = map[q.index()];
                for &(t, _) in self.target.neighbors(image) {
                    self.try_candidate(depth, p, t, map, used, embedding, visitor)?;
                }
            }
            None => {
                for t in 0..self.target.vertex_count() as u32 {
                    self.try_candidate(depth, p, VertexId(t), map, used, embedding, visitor)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // private hot path; the args are the search state
    fn try_candidate(
        &self,
        depth: usize,
        p: VertexId,
        t: VertexId,
        map: &mut Vec<VertexId>,
        used: &mut [bool],
        embedding: &mut Embedding,
        visitor: &mut dyn MatchVisitor,
    ) -> ControlFlow<()> {
        if used[t.index()] {
            return ControlFlow::Continue(());
        }
        if self.target.degree(t) < self.pattern.degree(p) {
            return ControlFlow::Continue(());
        }
        if self.config.respect_vertex_labels
            && self.pattern.vertex(p).label != self.target.vertex(t).label
        {
            return ControlFlow::Continue(());
        }
        let step = &self.plan[depth];
        for &(q, pe) in &step.checks {
            let tq = map[q.index()];
            if let Some(adj) = &self.adj {
                if !adj.contains(tq, t) {
                    return ControlFlow::Continue(());
                }
                if self.config.respect_edge_labels {
                    let te =
                        self.target.edge_between(tq, t).expect("adjacency bit implies an edge");
                    if self.pattern.edge(pe).attr.label != self.target.edge(te).attr.label {
                        return ControlFlow::Continue(());
                    }
                }
            } else {
                let Some(te) = self.target.edge_between(tq, t) else {
                    return ControlFlow::Continue(());
                };
                if self.config.respect_edge_labels
                    && self.pattern.edge(pe).attr.label != self.target.edge(te).attr.label
                {
                    return ControlFlow::Continue(());
                }
            }
        }
        if !visitor.assign(p, t) {
            return ControlFlow::Continue(());
        }
        map[p.index()] = t;
        used[t.index()] = true;
        let flow = self.recurse(depth + 1, map, used, embedding, visitor);
        used[t.index()] = false;
        map[p.index()] = VertexId(u32::MAX);
        visitor.unassign(p, t);
        flow
    }

    /// Calls `f` for every embedding; stop early by returning `Break`.
    pub fn for_each(&self, f: impl FnMut(&Embedding) -> ControlFlow<()>) {
        let mut visitor = CollectVisitor { on_complete: f };
        self.search(&mut visitor);
    }

    /// The first embedding in deterministic search order, if any.
    pub fn find_first(&self) -> Option<Embedding> {
        let mut found = None;
        self.for_each(|e| {
            found = Some(e.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// Whether at least one embedding exists.
    pub fn exists(&self) -> bool {
        self.find_first().is_some()
    }

    /// Number of embeddings, stopping at `limit` if given.
    pub fn count(&self, limit: Option<usize>) -> usize {
        let mut n = 0usize;
        self.for_each(|_| {
            n += 1;
            if limit.is_some_and(|l| n >= l) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        n
    }

    /// All embeddings, in deterministic search order.
    pub fn all(&self) -> Vec<Embedding> {
        let mut out = Vec::new();
        self.for_each(|e| {
            out.push(e.clone());
            ControlFlow::Continue(())
        });
        out
    }
}

/// Matching order: connectivity-first greedy selection, guided by the
/// target.
///
/// At every step the next pattern vertex is the unplaced one with
///
/// 1. the most already-placed neighbors (every placed neighbor is a
///    structural constraint that fires the moment the vertex is tried —
///    the core idea of VF2++'s ordering),
/// 2. then the rarest label among target vertices (label-respecting
///    configs only: fewer candidate images, smaller branching factor),
/// 3. then the highest pattern degree (dense regions constrain first),
/// 4. then the smallest id (determinism).
///
/// Because criterion 1 dominates, a vertex adjacent to the placed
/// prefix is always preferred over starting a new region: each
/// component is matched contiguously and every step after a
/// component's first has an anchor.
fn build_plan(pattern: &LabeledGraph, target: &LabeledGraph, config: IsoConfig) -> Vec<PlanStep> {
    let n = pattern.vertex_count();
    // How many target vertices could host each pattern vertex, by label.
    // Erased/uniform labels make this a constant, disabling criterion 2.
    let rarity: Vec<usize> = if config.respect_vertex_labels {
        pattern
            .vertex_ids()
            .map(|p| {
                let label = pattern.vertex(p).label;
                target.vertex_ids().filter(|&t| target.vertex(t).label == label).count()
            })
            .collect()
    } else {
        vec![0; n]
    };
    let mut placed = vec![false; n];
    let mut back_degree = vec![0usize; n];
    let mut plan: Vec<PlanStep> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<VertexId> = None;
        let mut best_key = (0usize, usize::MAX, 0usize, u32::MAX);
        for v in pattern.vertex_ids() {
            if placed[v.index()] {
                continue;
            }
            // Lexicographic: back-degree desc, rarity asc, degree desc,
            // id asc — encoded so the largest tuple wins.
            let key = (
                back_degree[v.index()] + 1,
                usize::MAX - rarity[v.index()],
                pattern.degree(v),
                u32::MAX - v.0,
            );
            if best.is_none() || key > best_key {
                best = Some(v);
                best_key = key;
            }
        }
        let v = best.expect("an unplaced vertex remains");
        placed[v.index()] = true;
        for &(w, _) in pattern.neighbors(v) {
            back_degree[w.index()] += 1;
        }
        // Anchor: the earliest-placed neighbor (its image bounds the
        // candidate set); filled in below once positions are final.
        plan.push(PlanStep { vertex: v, anchor: None, checks: Vec::new() });
    }
    debug_assert_eq!(plan.len(), n);
    // Derive anchors and checks strictly by plan position.
    let mut position = vec![usize::MAX; n];
    for (i, step) in plan.iter().enumerate() {
        position[step.vertex.index()] = i;
    }
    for (i, step) in plan.iter_mut().enumerate() {
        step.checks = pattern
            .neighbors(step.vertex)
            .iter()
            .filter(|(q, _)| position[q.index()] < i)
            .map(|&(q, e)| (q, e))
            .collect();
        step.anchor = step.checks.iter().min_by_key(|(q, _)| position[q.index()]).map(|&(q, _)| q);
    }
    plan
}

/// Convenience: does `pattern ⊆ target` (structure-only by default)?
pub fn is_subgraph(pattern: &LabeledGraph, target: &LabeledGraph, config: IsoConfig) -> bool {
    SubgraphMatcher::new(pattern, target, config).exists()
}

/// Convenience: all embeddings of `pattern` into `target`.
pub fn embeddings(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    config: IsoConfig,
) -> Vec<Embedding> {
    SubgraphMatcher::new(pattern, target, config).all()
}

/// All automorphisms of `g` (label-respecting self-embeddings).
///
/// Because `g` is finite and the mapping is injective on an equal number
/// of vertices and preserves all edges, every such embedding is an
/// automorphism.
pub fn automorphisms(g: &LabeledGraph) -> Vec<Embedding> {
    embeddings(g, g, IsoConfig::LABELED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{
        complete_graph, cycle_graph, path_graph, star_graph, EdgeAttr, GraphBuilder, VertexAttr,
    };
    use crate::ids::Label;

    fn l(x: u32) -> Label {
        Label(x)
    }

    #[test]
    fn path_in_cycle() {
        let p = path_graph(3, l(0), l(0));
        let c = cycle_graph(6, l(0), l(0));
        assert!(is_subgraph(&p, &c, IsoConfig::STRUCTURE));
        // 6 starting points × 2 directions = 12 embeddings.
        assert_eq!(embeddings(&p, &c, IsoConfig::STRUCTURE).len(), 12);
    }

    #[test]
    fn cycle_not_in_path() {
        let c = cycle_graph(3, l(0), l(0));
        let p = path_graph(5, l(0), l(0));
        assert!(!is_subgraph(&c, &p, IsoConfig::STRUCTURE));
    }

    #[test]
    fn larger_pattern_never_matches() {
        let big = path_graph(7, l(0), l(0));
        let small = path_graph(3, l(0), l(0));
        assert!(!is_subgraph(&big, &small, IsoConfig::STRUCTURE));
    }

    #[test]
    fn non_induced_semantics() {
        // A 3-path maps into a triangle even though the triangle has the
        // extra closing edge (monomorphism, not induced).
        let p = path_graph(3, l(0), l(0));
        let t = complete_graph(3, l(0), l(0));
        assert!(is_subgraph(&p, &t, IsoConfig::STRUCTURE));
        assert_eq!(embeddings(&p, &t, IsoConfig::STRUCTURE).len(), 6);
    }

    #[test]
    fn vertex_labels_respected_when_asked() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr::labeled(l(1)));
        let v = b.add_vertex(VertexAttr::labeled(l(2)));
        b.add_edge(u, v, EdgeAttr::labeled(l(0))).unwrap();
        let pattern = b.build();

        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VertexAttr::labeled(l(2)));
        let v = b.add_vertex(VertexAttr::labeled(l(2)));
        b.add_edge(u, v, EdgeAttr::labeled(l(0))).unwrap();
        let target = b.build();

        assert!(is_subgraph(&pattern, &target, IsoConfig::STRUCTURE));
        assert!(!is_subgraph(&pattern, &target, IsoConfig::LABELED));
    }

    #[test]
    fn edge_labels_respected_when_asked() {
        let p = path_graph(2, l(0), l(1));
        let t = path_graph(2, l(0), l(2));
        assert!(is_subgraph(&p, &t, IsoConfig::STRUCTURE));
        assert!(!is_subgraph(
            &p,
            &t,
            IsoConfig { respect_vertex_labels: false, respect_edge_labels: true }
        ));
    }

    #[test]
    fn embedding_edge_image() {
        let p = path_graph(2, l(0), l(0));
        let c = cycle_graph(4, l(0), l(0));
        let e = SubgraphMatcher::new(&p, &c, IsoConfig::STRUCTURE).find_first().unwrap();
        let te = e.edge_image(&p, &c, EdgeId(0));
        let edge = c.edge(te);
        assert!(edge.is_incident(e.vertex_image(VertexId(0))));
        assert!(edge.is_incident(e.vertex_image(VertexId(1))));
    }

    #[test]
    fn automorphisms_of_cycle_form_dihedral_group() {
        let c = cycle_graph(6, l(0), l(0));
        assert_eq!(automorphisms(&c).len(), 12); // D6: 6 rotations × 2 reflections
        let p = path_graph(4, l(0), l(0));
        assert_eq!(automorphisms(&p).len(), 2); // identity + reversal
        let k = complete_graph(4, l(0), l(0));
        assert_eq!(automorphisms(&k).len(), 24); // S4
        let s = star_graph(3, l(0), l(0));
        assert_eq!(automorphisms(&s).len(), 6); // S3 on the leaves
    }

    #[test]
    fn count_with_limit_stops_early() {
        let p = path_graph(2, l(0), l(0));
        let k = complete_graph(6, l(0), l(0));
        let m = SubgraphMatcher::new(&p, &k, IsoConfig::STRUCTURE);
        assert_eq!(m.count(Some(5)), 5);
        assert_eq!(m.count(None), 30); // 15 edges × 2 directions
    }

    #[test]
    fn empty_pattern_has_one_empty_embedding() {
        let p = LabeledGraph::default();
        let t = path_graph(3, l(0), l(0));
        let all = embeddings(&p, &t, IsoConfig::STRUCTURE);
        assert_eq!(all.len(), 1);
        assert!(all[0].vertex_map().is_empty());
    }

    #[test]
    fn disconnected_pattern_matches_injectively() {
        // Two isolated pattern vertices into a 2-path: 2 injective maps.
        let mut b = GraphBuilder::new();
        b.add_vertex(VertexAttr::labeled(l(0)));
        b.add_vertex(VertexAttr::labeled(l(0)));
        let p = b.build();
        let t = path_graph(2, l(0), l(0));
        assert_eq!(embeddings(&p, &t, IsoConfig::STRUCTURE).len(), 2);
    }

    #[test]
    fn branch_and_bound_visitor_prunes() {
        // A visitor that rejects mapping pattern v0 onto target v0 sees
        // only the embeddings avoiding that assignment.
        let p = path_graph(2, l(0), l(0));
        let t = path_graph(2, l(0), l(0));
        struct CountingReject(usize);
        impl MatchVisitor for CountingReject {
            fn assign(&mut self, p: VertexId, t: VertexId) -> bool {
                !(p == VertexId(0) && t == VertexId(0))
            }
            fn unassign(&mut self, _p: VertexId, _t: VertexId) {}
            fn complete(&mut self, _e: &Embedding) -> ControlFlow<()> {
                self.0 += 1;
                ControlFlow::Continue(())
            }
        }
        let mut v = CountingReject(0);
        SubgraphMatcher::new(&p, &t, IsoConfig::STRUCTURE).search(&mut v);
        // Unpruned there are 2 embeddings; the one mapping v0->v0 is cut.
        assert_eq!(v.0, 1);
    }

    #[test]
    fn sorted_image_dedups_automorphic_embeddings() {
        let p = path_graph(3, l(0), l(0));
        let c = cycle_graph(6, l(0), l(0));
        let mut images: Vec<Vec<VertexId>> =
            embeddings(&p, &c, IsoConfig::STRUCTURE).iter().map(|e| e.sorted_image()).collect();
        images.sort();
        images.dedup();
        assert_eq!(images.len(), 6); // 6 distinct 3-vertex windows on C6
    }
}
