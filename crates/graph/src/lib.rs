//! Labeled-graph substrate for PIS (ICDE 2006).
//!
//! This crate provides every structural primitive the PIS system is built
//! on:
//!
//! * [`LabeledGraph`] — an undirected, simple, labeled and optionally
//!   weighted graph, the unit stored in a graph database.
//! * [`iso`] — a VF2-style subgraph-isomorphism matcher with full
//!   embedding enumeration (the paper's `⊆` and the superposition
//!   enumerator behind `d(Q, G)`).
//! * [`canonical`] — minimum-DFS-code canonical forms (gSpan [Yan & Han,
//!   ICDM'02]) used to hash fragments into structural equivalence
//!   classes, plus a naive adjacency-matrix canonical form used as a
//!   cross-check.
//! * [`enumerate`] — connected-subgraph enumeration with canonical
//!   deduplication, used for exhaustive feature generation.
//! * [`io`] — a small line-oriented text format for graph databases.
//! * [`bitset`] / [`pool`] — a dense [`GraphBitSet`] over database ids
//!   and the shared [`ScopedPool`] chunking utility, the performance
//!   substrate of the candidate funnel (`DESIGN.md` §6).
//! * [`budget`] — per-query [`QueryBudget`] limits and the cooperative
//!   [`BudgetState`] checkpoints every long-running loop consults
//!   (`DESIGN.md` §6.9).
//!
//! The crate has no mandatory dependencies and is
//! `#![forbid(unsafe_code)]` (enforced workspace-wide); the optional
//! `failpoints` feature pulls in the vendored test-support registry for
//! the fault-injection tier.

#![forbid(unsafe_code)]

pub mod algo;
pub mod bitset;
pub mod budget;
pub mod canonical;
pub mod enumerate;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod iso;
pub mod pool;
pub mod util;

pub use bitset::GraphBitSet;
pub use budget::{BudgetState, BudgetStats, CheckpointSite, Interrupted, QueryBudget};
pub use error::GraphError;
pub use graph::{Edge, EdgeAttr, GraphBuilder, LabeledGraph, VertexAttr};
pub use ids::{EdgeId, GraphId, Label, VertexId};
pub use iso::{Embedding, IsoConfig, SubgraphMatcher};
pub use pool::ScopedPool;
