//! The workspace's one scoped thread-pool utility.
//!
//! Index build, candidate verification, batch workloads and per-fragment
//! range queries all want the same thing: "map this slice across the
//! cores, keep the results in input order, and don't bother below a
//! break-even batch size". Before this module each site hand-rolled its
//! own `std::thread::scope` chunking; they now share this one, so the
//! chunking policy, the break-even guard and the panic story live in a
//! single place.
//!
//! Threads are scoped (borrowed inputs need no `'static`) and spawned
//! per call — at one job per core per call the spawn cost is noise next
//! to the work each site ships, and a persistent pool would drag in
//! channels and lifetime plumbing the workspace otherwise avoids.
//!
//! Fan-outs do not nest: a `map` issued from inside a pool worker runs
//! serially (a thread-local marks worker threads), so composed sites —
//! a batch of queries whose searches would each fan out verification —
//! stay at one thread per core instead of workers².

std::thread_local! {
    /// Set inside pool workers so nested `map` calls run serially —
    /// an outer fan-out already owns the cores, and stacking fan-outs
    /// (e.g. a batch of queries each verifying candidates in parallel)
    /// would oversubscribe workers² threads.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A chunking policy over scoped threads.
#[derive(Clone, Copy, Debug)]
pub struct ScopedPool {
    workers: usize,
}

impl ScopedPool {
    /// A pool with `workers` threads; `0` means one per available core.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            workers
        };
        ScopedPool { workers }
    }

    /// Number of worker threads the pool will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the current thread is a pool worker. Fan-outs issued
    /// from workers run serially; callers that keep dedicated state for
    /// the parallel branch (fresh per-worker buffers instead of a
    /// shared scratch) should check this and take their serial,
    /// state-reusing path directly.
    pub fn in_worker() -> bool {
        IN_POOL_WORKER.with(std::cell::Cell::get)
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Runs serially when the pool has one worker or `items` is shorter
    /// than `min_parallel` (below break-even, threads cost more than
    /// they save); otherwise chunks the slice across scoped threads.
    pub fn map<T, R>(
        &self,
        items: &[T],
        min_parallel: usize,
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_with(items, min_parallel, || (), |(), i, item| f(i, item))
    }

    /// Like [`ScopedPool::map`], but hands every worker its own state
    /// built by `init` — scratch buffers, RNGs, anything `f` wants to
    /// reuse across the items of one chunk. The serial path builds the
    /// state once and reuses it for every item.
    pub fn map_with<S, T, R>(
        &self,
        items: &[T],
        min_parallel: usize,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, &T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        if self.workers <= 1
            || items.len() < min_parallel.max(2)
            || IN_POOL_WORKER.with(std::cell::Cell::get)
        {
            let mut state = init();
            return items.iter().enumerate().map(|(i, item)| f(&mut state, i, item)).collect();
        }
        let chunk = items.len().div_ceil(self.workers);
        let mut results: Vec<Vec<R>> = Vec::with_capacity(items.len().div_ceil(chunk));
        // Worker panics are caught per task, every worker is joined, and
        // the *first* payload resurfaces on the calling thread — one
        // panic, no leaked threads, and the pool (a plain policy struct)
        // stays usable for the next call.
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(ci, part)| {
                    let f = &f;
                    let init = &init;
                    scope.spawn(move || {
                        IN_POOL_WORKER.with(|w| w.set(true));
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut state = init();
                            part.iter()
                                .enumerate()
                                .map(|(i, item)| f(&mut state, ci * chunk + i, item))
                                .collect::<Vec<R>>()
                        }))
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok(part)) => results.push(part),
                    Ok(Err(payload)) => {
                        first_panic.get_or_insert(payload);
                    }
                    // A panic that escaped catch_unwind (e.g. from a
                    // panic hook) still surfaces.
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
        });
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results.into_iter().flatten().collect()
    }
}

impl Default for ScopedPool {
    /// One worker per available core.
    fn default() -> Self {
        ScopedPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_input_order() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 2, 7] {
            let pool = ScopedPool::new(workers);
            let doubled = pool.map(&items, 0, |i, &x| (i, x * 2));
            assert_eq!(doubled.len(), 100);
            for (i, (idx, v)) in doubled.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*v, items[i] * 2);
            }
        }
    }

    #[test]
    fn below_break_even_runs_serially_with_one_state() {
        let pool = ScopedPool::new(8);
        // Count how many states get built: serial path builds exactly one.
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let out = pool.map_with(
            &[1, 2, 3],
            64,
            || counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
            |_, _, &x: &i32| x,
        );
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_chunk() {
        let pool = ScopedPool::new(2);
        // Each worker's state counts the items it saw; totals must cover
        // the input exactly once.
        let seen: Vec<usize> = pool.map_with(
            &[0u8; 64],
            2,
            || 0usize,
            |state, _, _| {
                *state += 1;
                *state
            },
        );
        assert_eq!(seen.len(), 64);
        // Counts restart per worker but each item was visited once.
        assert!(seen.iter().all(|&c| c >= 1));
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        assert!(ScopedPool::new(0).workers() >= 1);
        assert!(ScopedPool::default().workers() >= 1);
    }

    #[test]
    fn empty_input() {
        let pool = ScopedPool::new(4);
        let out: Vec<i32> = pool.map(&[] as &[i32], 0, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_surfaces_once_and_pool_stays_usable() {
        let pool = ScopedPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        // Two workers panic; exactly one payload must resurface (the
        // first in chunk order), all workers must be joined (scoped
        // threads guarantee no leak), and the same pool must serve the
        // next call normally.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, 2, |_, &x| {
                if x % 16 == 7 {
                    panic!("worker bang at {x}");
                }
                x
            })
        }));
        let payload = caught.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
            .expect("panic payload is a message");
        assert!(message.contains("worker bang"), "payload resurfaces verbatim: {message}");
        // The pool is a plain chunking policy: the next call works.
        let out = pool.map(&items, 2, |_, &x| x * 2);
        assert_eq!(out.len(), 64);
        assert_eq!(out[10], 20);
    }

    #[test]
    fn serial_path_panic_propagates_plainly() {
        let pool = ScopedPool::new(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&[1, 2, 3], 0, |_, &x: &i32| {
                if x == 2 {
                    panic!("serial bang");
                }
                x
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn nested_fan_outs_run_serially_in_workers() {
        // An inner map issued from inside a pool worker must not spawn
        // its own threads: its per-call state counter stays at one
        // state for all items (the serial path), whereas a top-level
        // inner map with the same shape would chunk across workers.
        let outer = ScopedPool::new(4);
        let states_per_inner: Vec<usize> = outer.map(&[(); 8], 2, |_, _| {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            let inner = ScopedPool::new(4);
            inner.map_with(
                &[(); 16],
                2,
                || counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
                |_, _, _| (),
            );
            counter.load(std::sync::atomic::Ordering::SeqCst)
        });
        assert!(states_per_inner.iter().all(|&n| n == 1), "nested map spawned workers");
    }
}
