//! Small utilities shared across the workspace.
//!
//! The main item is an Fx-style hasher: the workspace hashes integer keys
//! (canonical-sequence words, `(GraphId, ClassId)` pairs) on hot paths,
//! where SipHash's HashDoS protection buys nothing. Implemented locally
//! (~20 lines) instead of pulling `rustc-hash` so the dependency set stays
//! within the sanctioned offline crates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (from Firefox/rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer-heavy keys.
///
/// Same construction as rustc's `FxHasher`: rotate, xor, multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// A `HashMap` keyed with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with the fast [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn hasher_distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_padding_semantics() {
        // write() consumes trailing partial chunks zero-padded; two
        // different-length prefixes of zeros must still differ via length
        // extension only if content differs — we only assert determinism
        // and basic separation here.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(99);
        assert!(s.contains(&99));
    }
}
