//! Admissibility of [`MatchPlan::suffix_lower_bounds`], checked
//! exhaustively.
//!
//! The verifier prunes a DFS branch when `paid + suffix[depth]` exceeds
//! the budget, which is lossless only if `suffix[d]` never exceeds the
//! cost any completion actually pays from depth `d` on. These tests
//! enumerate *every* simple target graph on up to 6 vertices (all edge
//! subsets of `K4`/`K5`, plus labeled `K6` itself), every embedding of a
//! pattern family into each, and every depth of the plan — and assert
//! the suffix bound is below the true remaining cost at each one, with
//! the floor tables built exactly like the distance kernels build them
//! (degree-compatible vertex minima, sorted-degree-dominating edge
//! minima).

use pis_graph::iso::{IsoConfig, MatchPlan, SubgraphMatcher};
use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr};

/// Toy per-element cost: absolute label difference. Strictly positive
/// off-diagonal, zero on the diagonal — the same shape as a mutation
/// score matrix.
fn cost(a: Label, b: Label) -> f64 {
    (a.0 as f64 - b.0 as f64).abs()
}

/// Builds the graph on `n` vertices with the given edges; labels are a
/// deterministic function of position so different edge subsets get
/// different-but-collision-rich labelings.
fn labeled(n: usize, edges: &[(usize, usize)], scheme: u32) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs: Vec<_> =
        (0..n).map(|i| b.add_vertex(VertexAttr::labeled(Label((i as u32 + scheme) % 3)))).collect();
    for &(u, v) in edges {
        b.add_edge(vs[u], vs[v], EdgeAttr::labeled(Label((u as u32 + v as u32 + scheme) % 3)))
            .expect("edge subsets are simple");
    }
    b.build()
}

/// All simple graphs on exactly `n` vertices: one graph per subset of
/// the `n(n-1)/2` possible edges.
fn all_graphs(n: usize, scheme: u32) -> Vec<LabeledGraph> {
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
    (0u32..1 << pairs.len())
        .map(|mask| {
            let edges: Vec<(usize, usize)> = pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| p)
                .collect();
            labeled(n, &edges, scheme)
        })
        .collect()
}

/// Floor tables mirroring `pis_distance`'s generic kernels: per pattern
/// vertex the cheapest degree-compatible target vertex, per pattern edge
/// the cheapest target edge whose sorted endpoint degrees dominate.
fn floors(pattern: &LabeledGraph, target: &LabeledGraph) -> (Vec<f64>, Vec<f64>) {
    let vertex_floor: Vec<f64> = pattern
        .vertex_ids()
        .map(|p| {
            target
                .vertex_ids()
                .filter(|&t| target.degree(t) >= pattern.degree(p))
                .map(|t| cost(pattern.vertex(p).label, target.vertex(t).label))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let sorted_degrees = |g: &LabeledGraph, u, v| {
        let (a, b) = (g.degree(u), g.degree(v));
        (a.min(b), a.max(b))
    };
    let edge_floor: Vec<f64> = pattern
        .edges()
        .iter()
        .map(|pe| {
            let (plo, phi) = sorted_degrees(pattern, pe.source, pe.target);
            target
                .edges()
                .iter()
                .filter(|te| {
                    let (tlo, thi) = sorted_degrees(target, te.source, te.target);
                    tlo >= plo && thi >= phi
                })
                .map(|te| cost(pe.attr.label, te.attr.label))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    (vertex_floor, edge_floor)
}

/// For every embedding of `pattern` into `target` and every plan depth,
/// asserts `suffix[d] ≤` the cost the embedding actually pays from depth
/// `d` on (vertex cost at each step plus the edges its checks close).
fn assert_admissible(pattern: &LabeledGraph, target: &LabeledGraph) {
    let mut plan = MatchPlan::new();
    plan.rebuild_for_pattern(pattern);
    let (vertex_floor, edge_floor) = floors(pattern, target);
    let mut suffix = Vec::new();
    plan.suffix_lower_bounds(&vertex_floor, &edge_floor, &mut suffix);
    let n = plan.len();
    assert_eq!(suffix.len(), n + 1);
    assert_eq!(suffix[n], 0.0, "nothing remains past the last depth");
    for d in 0..n {
        assert!(suffix[d] >= suffix[d + 1], "suffix bounds must decrease monotonically");
    }
    for emb in SubgraphMatcher::new(pattern, target, IsoConfig::STRUCTURE).all() {
        // Cost paid at each plan depth by this embedding.
        let step_cost: Vec<f64> = (0..n)
            .map(|d| {
                let p = plan.vertex(d);
                let mut c = cost(pattern.vertex(p).label, target.vertex(emb.vertex_image(p)).label);
                for &(_, pe) in plan.checks(d) {
                    let te = emb.edge_image(pattern, target, pe);
                    c += cost(pattern.edge(pe).attr.label, target.edge(te).attr.label);
                }
                c
            })
            .collect();
        let mut remaining = 0.0;
        for d in (0..n).rev() {
            remaining += step_cost[d];
            assert!(
                suffix[d] <= remaining,
                "suffix[{d}] = {} exceeds true remaining cost {} \
                 (pattern {:?}, embedding {:?})",
                suffix[d],
                remaining,
                pattern,
                emb.vertex_map()
            );
        }
        // An embedding exists, so no floor on its steps may be infinite.
        assert!(suffix[0].is_finite(), "a matched pair cannot have an infinite floor");
    }
}

/// The pattern family: every connected graph on 2–3 vertices plus two
/// 4-vertex shapes (path and triangle-with-tail), under both label
/// schemes.
fn patterns() -> Vec<LabeledGraph> {
    let mut out = Vec::new();
    for scheme in [0, 1] {
        out.push(labeled(2, &[(0, 1)], scheme));
        out.push(labeled(3, &[(0, 1), (1, 2)], scheme));
        out.push(labeled(3, &[(0, 1), (0, 2)], scheme));
        out.push(labeled(3, &[(0, 1), (1, 2), (0, 2)], scheme));
        out.push(labeled(4, &[(0, 1), (1, 2), (2, 3)], scheme));
        out.push(labeled(4, &[(0, 1), (1, 2), (0, 2), (2, 3)], scheme));
    }
    out
}

#[test]
fn suffix_bound_is_admissible_on_all_4_vertex_targets() {
    for target in all_graphs(4, 0).iter().chain(all_graphs(4, 1).iter()) {
        for pattern in &patterns() {
            assert_admissible(pattern, target);
        }
    }
}

#[test]
fn suffix_bound_is_admissible_on_all_5_vertex_targets() {
    for target in &all_graphs(5, 0) {
        for pattern in &patterns() {
            assert_admissible(pattern, target);
        }
    }
}

#[test]
fn suffix_bound_is_admissible_on_dense_6_vertex_targets() {
    // All 2^15 six-vertex graphs would dominate the suite's runtime;
    // K6 and K6-minus-a-perfect-matching cover the embedding-richest
    // ones, where a too-tight bound has the most chances to overshoot.
    let complete: Vec<(usize, usize)> =
        (0..6).flat_map(|u| (u + 1..6).map(move |v| (u, v))).collect();
    let minus_matching: Vec<(usize, usize)> =
        complete.iter().copied().filter(|&e| ![(0, 1), (2, 3), (4, 5)].contains(&e)).collect();
    for scheme in [0, 1] {
        for edges in [&complete, &minus_matching] {
            let target = labeled(6, edges, scheme);
            for pattern in &patterns() {
                assert_admissible(pattern, &target);
            }
        }
    }
}

#[test]
fn no_compatible_image_floors_to_infinity() {
    // A 3-star pattern needs a degree-3 target vertex; a triangle target
    // has none, so the center's floor — and the whole suffix — must be
    // infinite, refuting the pair before any DFS runs.
    let star = labeled(4, &[(0, 1), (0, 2), (0, 3)], 0);
    let triangle = labeled(3, &[(0, 1), (1, 2), (0, 2)], 0);
    let mut plan = MatchPlan::new();
    plan.rebuild_for_pattern(&star);
    let (vertex_floor, edge_floor) = floors(&star, &triangle);
    let mut suffix = Vec::new();
    plan.suffix_lower_bounds(&vertex_floor, &edge_floor, &mut suffix);
    assert!(suffix[0].is_infinite());
    assert!(SubgraphMatcher::new(&star, &triangle, IsoConfig::STRUCTURE).all().is_empty());
}
