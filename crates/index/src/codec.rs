//! Binary persistence primitives shared by the snapshot format and the
//! write-ahead log: a vendored CRC32, little-endian byte cursors with
//! typed error reporting, and crash-safe (temp + fsync + rename) file
//! rotation.
//!
//! Everything read through [`ByteReader`] is treated as untrusted: every
//! cursor step is bounds-checked and reports a byte offset through
//! [`PersistError::Corrupt`](crate::persist::PersistError), never a
//! panic. Floats travel as raw bit patterns and are rejected when
//! non-finite, mirroring the text format's `hex_f64` policy.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::persist::PersistError;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial used by zip/png. Vendored: the workspace builds with no
/// registry access, and 16 lines beat a dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[idx((c ^ u32::from(b)) & 0xFF)] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ── Checked cast helpers ─────────────────────────────────────────────
//
// The codecs (snapshot/WAL/text persist) are forbidden from using bare
// `as` casts by srclint's `lossy-cast-in-codec` rule: on untrusted input
// a silent u64 → usize truncation (32-bit targets) or usize → u32 wrap
// maps distinct offsets onto the same slice. Widening conversions go
// through the infallible helpers below; narrowing conversions must use
// the fallible ones and surface `PersistError::Corrupt`.

/// Infallible `u32` → `usize` widening (all supported targets have
/// `usize` ≥ 32 bits; `unwrap_or` keeps the helper panic-free even if
/// that precondition were ever violated).
#[inline]
pub(crate) fn idx(x: u32) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// Infallible `usize` → `u64` widening (all supported targets have
/// `usize` ≤ 64 bits).
#[inline]
pub(crate) fn len64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Widen a trusted in-memory index to `u32`. Callers pass values bounded
/// by arena invariants (label ids, class counts and per-class slots are
/// all `< 2^32` by construction); if that contract were ever broken the
/// helper saturates, turning the bug into a loud length mismatch on
/// decode instead of silent aliasing.
#[inline]
pub(crate) fn u32_idx(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "index {n} exceeds u32");
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Checked `usize` → `u32` narrowing for encode-side lengths, failing
/// typed instead of wrapping.
pub(crate) fn u32_of(n: usize, what: &str) -> Result<u32, PersistError> {
    u32::try_from(n).map_err(|_| PersistError::Corrupt {
        offset: 0,
        message: format!("{what} {n} does not fit in u32"),
    })
}

/// Little-endian append-only byte sink (snapshot sections, WAL frames).
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (bit-exact round trip).
    pub fn f64_bits(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Overwrites 4 bytes at `at` with a little-endian `u32` (section
    /// tables are back-patched after their payloads are sized).
    pub fn patch_u32(&mut self, at: usize, x: u32) {
        self.buf[at..at + 4].copy_from_slice(&x.to_le_bytes());
    }

    /// Overwrites 8 bytes at `at` with a little-endian `u64`.
    pub fn patch_u64(&mut self, at: usize, x: u64) {
        self.buf[at..at + 8].copy_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor over untrusted bytes.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Offset of `buf[0]` in the containing file (error reporting for
    /// section payloads sliced out of a larger stream).
    base: u64,
}

impl<'a> ByteReader<'a> {
    /// A cursor over `buf`, reporting offsets relative to `base`.
    pub fn new(buf: &'a [u8], base: u64) -> Self {
        ByteReader { buf, pos: 0, base }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + len64(self.pos)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// A typed corruption error at the current offset.
    pub fn corrupt(&self, message: &str) -> PersistError {
        PersistError::Corrupt { offset: self.offset(), message: message.to_string() }
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(self.corrupt(&format!("truncated: {what} needs {n} bytes")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `u64` that must fit a `usize` count; the cap stops a
    /// corrupt count from driving gigabyte pre-allocations (the data
    /// behind it would fail the bounds check anyway, but only after the
    /// `Vec::with_capacity`).
    pub fn count(&mut self, what: &str, cap: usize) -> Result<usize, PersistError> {
        let x = self.u64(what)?;
        if x > len64(cap) {
            return Err(self.corrupt(&format!("{what} {x} exceeds the {cap} cap")));
        }
        // Infallible: x ≤ cap and cap is a usize.
        usize::try_from(x).map_err(|_| self.corrupt(&format!("{what} exceeds usize")))
    }

    /// Reads a little-endian `u32` widened to a `usize` count/index.
    pub fn u32_usize(&mut self, what: &str) -> Result<usize, PersistError> {
        Ok(idx(self.u32(what)?))
    }

    /// Reads a little-endian `u64` that must fit in `usize`, failing
    /// typed on 32-bit-target truncation.
    pub fn u64_usize(&mut self, what: &str) -> Result<usize, PersistError> {
        let x = self.u64(what)?;
        usize::try_from(x).map_err(|_| self.corrupt(&format!("{what} {x} does not fit in usize")))
    }

    /// Reads an `f64` bit pattern, rejecting NaN/∞ (a poisoned stored
    /// float would corrupt every distance downstream).
    pub fn f64_finite(&mut self, what: &str) -> Result<f64, PersistError> {
        let x = f64::from_bits(self.u64(what)?);
        if !x.is_finite() {
            return Err(self.corrupt(&format!("non-finite float in {what}")));
        }
        Ok(x)
    }
}

/// Consults the named failpoint and, when armed to fire, simulates a
/// crash: `partial` bytes of the intended write are flushed (a torn
/// write) and an `Interrupted` error is returned as if the process had
/// been killed mid-call. Compiled out without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub(crate) fn crash_point(site: &'static str, file: Option<(&mut File, &[u8])>) -> io::Result<()> {
    match failpoints::consult(site) {
        Some(failpoints::Action::Trip) => {
            if let Some((f, partial)) = file {
                f.write_all(partial)?;
                f.flush()?;
            }
            Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("failpoint: simulated crash at {site}"),
            ))
        }
        Some(failpoints::Action::Panic) => panic!("failpoint panic at {site}"),
        None => Ok(()),
    }
}

#[cfg(not(feature = "failpoints"))]
pub(crate) fn crash_point(
    _site: &'static str,
    _file: Option<(&mut File, &[u8])>,
) -> io::Result<()> {
    Ok(())
}

/// Crash-safe whole-file replacement: write `bytes` to `<path>.tmp`,
/// fsync, rename over `path`, then fsync the directory. A crash at any
/// point leaves either the old file or the new one — never a torn mix.
///
/// Under the `failpoints` feature the sites `snapshot-write` (torn temp
/// file, no rename) and `snapshot-rename` (complete temp file, rename
/// skipped) simulate kills inside the rotation.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    crash_point("snapshot-write", Some((&mut file, &bytes[..bytes.len() / 2])))?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    crash_point("snapshot-rename", None)?;
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable. Directory fsync is best-effort:
    // not every filesystem supports opening a directory for sync.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The temp-file name `atomic_write` rotates through (exposed so store
/// openers can sweep leftovers from a crashed rotation).
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(std::ffi::OsStr::to_os_string).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Opens `path` for appending, creating it if missing.
pub(crate) fn open_append(path: &Path) -> io::Result<File> {
    OpenOptions::new().read(true).create(true).append(true).open(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 test vectors ("check" values of the catalogue).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64_bits(std::f64::consts::PI);
        w.bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, 100);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64_finite("d").unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.bytes(3, "e").unwrap(), b"xyz");
        assert!(r.is_exhausted());
        assert_eq!(r.offset(), 100 + bytes.len() as u64);
    }

    #[test]
    fn reader_rejects_truncation_and_non_finite() {
        let mut r = ByteReader::new(&[1, 2], 0);
        assert!(r.u32("int").is_err());
        let mut w = ByteWriter::new();
        w.f64_bits(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, 0);
        assert!(r.f64_finite("nan").is_err());
    }

    #[test]
    fn count_cap_blocks_huge_allocations() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, 0);
        assert!(r.count("entries", 1 << 12).is_err());
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("pis-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second-longer");
        assert!(!tmp_path(&path).exists(), "rotation must not leave a temp file");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
