//! Cache-resident trie layout: a level-major arena with
//! frontier-batched range descent.
//!
//! The pointer trie ([`crate::trie::LabelTrie`]) is the natural *build*
//! structure — cheap inserts, one heap node per prefix — but a terrible
//! *query* structure: every descent chases `Vec<(Label, Node)>` child
//! allocations scattered across the heap and recurses once per branch,
//! and the per-position cost function is re-evaluated for every child
//! even though a level's children repeat a handful of labels.
//!
//! [`FlatTrie`] freezes the same logical trie into contiguous,
//! level-major arrays:
//!
//! * all nodes of one level are adjacent (`level_start` delimits
//!   levels), and a node's children are a contiguous run in the next
//!   level addressed by CSR-style `child_start`/`child_len` offsets;
//! * node labels live in one SoA `labels` array scanned
//!   word-contiguously during descent, plus a per-level distinct-label
//!   alphabet and a per-node `label_idx` into it;
//! * leaf posting lists are concatenated into one `postings` array in
//!   entry order — which makes **every** node's subtree postings a
//!   contiguous range (`sub_start`/`sub_len`), not just a leaf's.
//!
//! [`FlatTrie::range_query`] replaces recursion with an iterative
//! level-by-level frontier: all levels' distinct labels are priced
//! up-front through a batched cost callback (see
//! `MutationDistance::position_costs_into`), surviving children are
//! appended to the next frontier, and the descent **stops early at the
//! first level from which every remaining level prices to zero**
//! (under the paper's edge-Hamming distance the normalized vertex
//! suffix always does), emitting whole subtree posting ranges instead
//! of walking cost-free levels. All frontier state lives in a
//! caller-owned [`TrieFrontier`], so steady-state descents allocate
//! nothing. Per-path cost accumulation performs the same f64 additions
//! in the same order as the pointer trie (skipped levels contribute
//! exactly `+0.0`), so reported distances are byte-identical to the
//! reference.

use pis_graph::budget::{BudgetState, CheckpointSite};
use pis_graph::{GraphId, Label};

use crate::trie::LabelTrie;

/// Lane width of the unrolled frontier expansion: child costs are
/// gathered into a buffer of this many slots, added and compared as
/// lanes, and survivors compacted through a bit mask — the scalar
/// `push`-per-child loop only runs on the sub-lane tail. Eight f64
/// lanes span one cache line and match the widest vector registers in
/// common deployment (AVX-512); narrower ISAs simply split the lanes.
const LANES: usize = 8;

/// Expands one contiguous child range `cs..ce` in [`LANES`]-wide chunks:
/// gather each child's cost slot (`table[idx[child] - idx_base]`), add
/// the inherited `acc`, compare against `sigma` as lanes, then compact
/// the survivor mask in ascending-child order (bit scan instead of a
/// branch per child). Survivors' `(child, cost)` pairs are appended in
/// exactly the order the scalar loop would produce, and each cost is
/// the same single `acc + slot` addition — byte-identical output.
#[inline]
#[allow(clippy::too_many_arguments)]
fn expand_children_wide(
    idx: &[u32],
    idx_base: u32,
    table: &[f64],
    (cs, ce): (u32, u32),
    acc: f64,
    sigma: f64,
    out_nodes: &mut Vec<u32>,
    out_costs: &mut Vec<f64>,
) {
    let mut lane = [0.0f64; LANES];
    let mut child = cs as usize;
    let end = ce as usize;
    while child + LANES <= end {
        for (k, slot) in lane.iter_mut().enumerate() {
            *slot = acc + table[(idx[child + k] - idx_base) as usize];
        }
        let mut mask = 0u32;
        for (k, &c) in lane.iter().enumerate() {
            mask |= u32::from(c <= sigma) << k;
        }
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            out_nodes.push((child + k) as u32);
            out_costs.push(lane[k]);
        }
        child += LANES;
    }
    while child < end {
        let c = acc + table[(idx[child] - idx_base) as usize];
        if c <= sigma {
            out_nodes.push(child as u32);
            out_costs.push(c);
        }
        child += 1;
    }
}

/// A frozen fixed-depth trie over label sequences (level-major arena).
#[derive(Clone, Debug)]
pub struct FlatTrie {
    depth: usize,
    /// Node index range of level `l` is `level_start[l]..level_start[l+1]`
    /// (empty vec when `depth == 0`).
    level_start: Vec<u32>,
    /// Per node: the label on the edge from its parent.
    labels: Vec<Label>,
    /// Per node: absolute index of its label's cost slot (see
    /// `alphabet`; slots are level-major like everything else).
    label_idx: Vec<u32>,
    /// Per internal node: its child run in the next level (zeros for
    /// leaves, whose "children" are the posting range below).
    child_start: Vec<u32>,
    /// Per internal node: child run length.
    child_len: Vec<u32>,
    /// Per node: the contiguous `postings` range covered by its whole
    /// subtree (for a leaf: its own posting list).
    sub_start: Vec<u32>,
    sub_len: Vec<u32>,
    /// All `(sequence, graph)` entries' graph ids, in sorted entry
    /// order — simultaneously the concatenation of all leaf posting
    /// lists and of every subtree range.
    postings: Vec<GraphId>,
    /// Distinct labels of level `l`:
    /// `alphabet[alphabet_start[l]..alphabet_start[l+1]]`, sorted
    /// ascending. Query-time level costs are computed into a buffer
    /// with this exact layout.
    alphabet_start: Vec<u32>,
    alphabet: Vec<Label>,
}

/// Borrowed raw arena columns (snapshot serialization).
pub(crate) struct TrieParts<'a> {
    pub depth: usize,
    pub level_start: &'a [u32],
    pub labels: &'a [Label],
    pub label_idx: &'a [u32],
    pub child_start: &'a [u32],
    pub child_len: &'a [u32],
    pub sub_start: &'a [u32],
    pub sub_len: &'a [u32],
    pub postings: &'a [GraphId],
    pub alphabet_start: &'a [u32],
    pub alphabet: &'a [Label],
}

/// Owned raw arena columns for [`FlatTrie::from_parts`].
pub(crate) struct TriePartsOwned {
    pub depth: usize,
    pub level_start: Vec<u32>,
    pub labels: Vec<Label>,
    pub label_idx: Vec<u32>,
    pub child_start: Vec<u32>,
    pub child_len: Vec<u32>,
    pub sub_start: Vec<u32>,
    pub sub_len: Vec<u32>,
    pub postings: Vec<GraphId>,
    pub alphabet_start: Vec<u32>,
    pub alphabet: Vec<Label>,
}

/// Reusable frontier buffers for [`FlatTrie::range_query`]. One scratch
/// serves any number of sequential queries against tries of any shape.
#[derive(Clone, Debug, Default)]
pub struct TrieFrontier {
    /// Live nodes of the current level.
    nodes: Vec<u32>,
    /// Accumulated cost of each live node, parallel to `nodes`.
    costs: Vec<f64>,
    /// Double buffers for the next level.
    next_nodes: Vec<u32>,
    next_costs: Vec<f64>,
    /// Per-distinct-label costs of **all** levels, laid out like the
    /// trie's `alphabet` array.
    label_costs: Vec<f64>,
}

impl TrieFrontier {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        TrieFrontier::default()
    }
}

/// Reusable state for [`FlatTrie::range_query_batch`]: the shared
/// per-level pricing table and the node-major multi-probe frontier.
/// One scratch serves any number of sequential batches against tries
/// of any shape; steady-state batches allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct BatchFrontier {
    /// Cost rows, level-major then row-major: level `l` holds one row
    /// per *distinct* query label of the batch at that level, each row
    /// spanning the level's alphabet.
    costs: Vec<f64>,
    /// Distinct-label gathering buffer (per level during pricing).
    distinct: Vec<Label>,
    /// Whether each distinct row of the current level is all-zero.
    distinct_zero: Vec<bool>,
    /// Per probe per level (`p * depth + l`): offset of the probe's
    /// cost row in `costs`.
    row_of: Vec<u32>,
    /// Per probe per level: whether that row prices everything to zero.
    row_zero: Vec<bool>,
    /// Per probe: first level from which every remaining level prices
    /// to zero (the probe's zero-suffix boundary).
    zero_from: Vec<u32>,
    /// Frontier, node-major: `nodes[g]` carries the probe entries
    /// `group_start[g]..group_start[g + 1]` of the parallel
    /// `probes`/`accs` arrays — sibling probes alive on the same node
    /// share one arena read per child.
    nodes: Vec<u32>,
    group_start: Vec<u32>,
    probes: Vec<u32>,
    accs: Vec<f64>,
    /// Double buffers for the next level.
    next_nodes: Vec<u32>,
    next_group_start: Vec<u32>,
    next_probes: Vec<u32>,
    next_accs: Vec<f64>,
    /// Staging for the rare levels where *some* (not all) probes of a
    /// group retire into their zero suffix.
    group_probes: Vec<u32>,
    group_accs: Vec<f64>,
    /// Probe-major regrouping of the frontier (counting sort), used
    /// when sibling occupancy collapses and the descent switches to
    /// per-probe wide expansion: probe `p` owns
    /// `by_probe_start[p]..by_probe_start[p + 1]` of the sorted arrays.
    by_probe_start: Vec<u32>,
    sorted_nodes: Vec<u32>,
    sorted_accs: Vec<f64>,
}

impl BatchFrontier {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        BatchFrontier::default()
    }

    fn reset(&mut self, nprobes: usize, depth: usize) {
        self.costs.clear();
        self.row_of.clear();
        self.row_of.resize(nprobes * depth, 0);
        self.row_zero.clear();
        self.row_zero.resize(nprobes * depth, false);
        self.zero_from.clear();
        self.nodes.clear();
        self.group_start.clear();
        self.probes.clear();
        self.accs.clear();
    }
}

impl FlatTrie {
    /// Builds the arena from `(sequence, graph)` entries (any order;
    /// duplicates are dropped, matching [`LabelTrie::insert`]'s dedup).
    ///
    /// # Panics
    /// Panics if any sequence length differs from `depth`.
    pub fn from_entries(depth: usize, mut entries: Vec<(Vec<Label>, GraphId)>) -> Self {
        for (seq, _) in &entries {
            assert_eq!(seq.len(), depth, "sequence length must equal trie depth");
        }
        entries.sort_unstable();
        entries.dedup();
        FlatTrie::from_sorted(depth, &entries)
    }

    /// Freezes an insert-friendly [`LabelTrie`] builder into the arena
    /// layout. The two answer identical queries; only the memory layout
    /// changes.
    pub fn freeze(builder: &LabelTrie) -> Self {
        let mut entries: Vec<(Vec<Label>, GraphId)> = Vec::with_capacity(builder.len());
        builder.for_each_entry(|seq, g| entries.push((seq.to_vec(), g)));
        // `for_each_entry` yields lexicographic order with ascending
        // graph ids — already sorted and deduplicated.
        FlatTrie::from_sorted(builder.depth(), &entries)
    }

    /// `entries` must be sorted by `(sequence, graph)` and deduplicated.
    fn from_sorted(depth: usize, entries: &[(Vec<Label>, GraphId)]) -> Self {
        let n = entries.len();
        let mut trie = FlatTrie {
            depth,
            level_start: Vec::with_capacity(depth + 1),
            labels: Vec::new(),
            label_idx: Vec::new(),
            child_start: Vec::new(),
            child_len: Vec::new(),
            sub_start: Vec::new(),
            sub_len: Vec::new(),
            postings: entries.iter().map(|(_, g)| *g).collect(),
            alphabet_start: Vec::with_capacity(depth + 1),
            alphabet: Vec::new(),
        };
        if depth == 0 {
            // The virtual root is the only (leaf) node; its postings are
            // the whole array.
            return trie;
        }
        // Level-by-level construction: each node is a distinct prefix,
        // represented during the build by its contiguous entry range
        // (entries are sorted, so equal prefixes are adjacent) — which
        // is exactly its subtree posting range.
        let mut parent_ranges: Vec<(u32, u32)> =
            if n > 0 { vec![(0, n as u32)] } else { Vec::new() };
        for l in 0..depth {
            trie.level_start.push(trie.labels.len() as u32);
            let mut next_ranges: Vec<(u32, u32)> = Vec::new();
            for (pi, &(s, e)) in parent_ranges.iter().enumerate() {
                let first_child = trie.labels.len() as u32;
                let mut i = s;
                while i < e {
                    let label = entries[i as usize].0[l];
                    let mut j = i + 1;
                    while j < e && entries[j as usize].0[l] == label {
                        j += 1;
                    }
                    trie.labels.push(label);
                    trie.child_start.push(0);
                    trie.child_len.push(0);
                    trie.sub_start.push(i);
                    trie.sub_len.push(j - i);
                    next_ranges.push((i, j));
                    i = j;
                }
                if l > 0 {
                    // Parent `pi` of the previous level owns exactly the
                    // children just created.
                    let p = (trie.level_start[l - 1] + pi as u32) as usize;
                    trie.child_start[p] = first_child;
                    trie.child_len[p] = trie.labels.len() as u32 - first_child;
                }
            }
            parent_ranges = next_ranges;
        }
        trie.level_start.push(trie.labels.len() as u32);
        // Per-level distinct-label alphabets + absolute per-node cost
        // slots (computed once here so descents only index).
        trie.label_idx = vec![0; trie.labels.len()];
        let mut distinct: Vec<Label> = Vec::new();
        for l in 0..depth {
            let base = trie.alphabet.len() as u32;
            trie.alphabet_start.push(base);
            let (s, e) = (trie.level_start[l] as usize, trie.level_start[l + 1] as usize);
            distinct.clear();
            distinct.extend_from_slice(&trie.labels[s..e]);
            distinct.sort_unstable();
            distinct.dedup();
            for node in s..e {
                let k = distinct
                    .binary_search(&trie.labels[node])
                    .expect("every node label is in the level alphabet");
                trie.label_idx[node] = base + k as u32;
            }
            trie.alphabet.extend_from_slice(&distinct);
        }
        trie.alphabet_start.push(trie.alphabet.len() as u32);
        trie
    }

    /// The uniform sequence length.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of `(sequence, graph)` pairs stored (after dedup).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether the trie stores nothing.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Number of arena nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Borrowed view of the raw arena columns, for the binary snapshot
    /// writer. The snapshot loader feeds the same columns back through
    /// [`FlatTrie::from_parts`].
    pub(crate) fn parts(&self) -> TrieParts<'_> {
        TrieParts {
            depth: self.depth,
            level_start: &self.level_start,
            labels: &self.labels,
            label_idx: &self.label_idx,
            child_start: &self.child_start,
            child_len: &self.child_len,
            sub_start: &self.sub_start,
            sub_len: &self.sub_len,
            postings: &self.postings,
            alphabet_start: &self.alphabet_start,
            alphabet: &self.alphabet,
        }
    }

    /// Rebuilds an arena from raw columns read out of an untrusted
    /// binary snapshot, revalidating every structural invariant the
    /// query paths index by (see [`FlatTrie::validate`]). Anything out
    /// of range comes back as a description, never a later panic.
    ///
    /// Posting graph ids are *not* range-checked here — the caller
    /// knows the class size and validates them before handing over the
    /// columns.
    pub(crate) fn from_parts(p: TriePartsOwned) -> Result<FlatTrie, String> {
        let TriePartsOwned {
            depth,
            level_start,
            labels,
            label_idx,
            child_start,
            child_len,
            sub_start,
            sub_len,
            postings,
            alphabet_start,
            alphabet,
        } = p;
        let trie = FlatTrie {
            depth,
            level_start,
            labels,
            label_idx,
            child_start,
            child_len,
            sub_start,
            sub_len,
            postings,
            alphabet_start,
            alphabet,
        };
        trie.validate()?;
        Ok(trie)
    }

    /// Checks every structural invariant the descent paths index by and
    /// returns the first violation as a description, never a panic. A
    /// trie produced by any construction path always passes; the checks
    /// exist for untrusted snapshot columns (`FlatTrie::from_parts`
    /// runs them on every load), debug re-validation after mutation,
    /// and the offline `pis check` fsck.
    ///
    /// Beyond range checks, the tiling invariants pin the whole layout:
    /// level-0 subtree ranges tile the posting array, every internal
    /// node's children tile both the next level (CSR contiguity) and
    /// the parent's posting range, sibling labels are strictly
    /// ascending, and every node covers at least one posting — so any
    /// single structural-column corruption is caught, not just
    /// out-of-range values. Posting graph ids themselves are content,
    /// not structure; the owning class range-checks them.
    pub fn validate(&self) -> Result<(), String> {
        let FlatTrie {
            depth,
            level_start,
            labels,
            label_idx,
            child_start,
            child_len,
            sub_start,
            sub_len,
            postings,
            alphabet_start,
            alphabet,
        } = self;
        let depth = *depth;
        let nodes = labels.len();
        if label_idx.len() != nodes
            || child_start.len() != nodes
            || child_len.len() != nodes
            || sub_start.len() != nodes
            || sub_len.len() != nodes
        {
            return Err("node column lengths disagree".to_string());
        }
        if nodes > u32::MAX as usize || postings.len() > u32::MAX as usize {
            return Err("arena exceeds u32 addressing".to_string());
        }
        if depth == 0 {
            if nodes != 0 || !level_start.is_empty() || !alphabet_start.is_empty() {
                return Err("depth-0 trie must have empty node arrays".to_string());
            }
            return Ok(());
        }
        if level_start.len() != depth + 1 || alphabet_start.len() != depth + 1 {
            return Err("level table length must be depth + 1".to_string());
        }
        if level_start[0] != 0 || alphabet_start[0] != 0 {
            return Err("level tables must start at 0".to_string());
        }
        if level_start.windows(2).any(|w| w[0] > w[1])
            || alphabet_start.windows(2).any(|w| w[0] > w[1])
        {
            return Err("level tables must be monotone".to_string());
        }
        if level_start[depth] as usize != nodes {
            return Err("level table must cover every node".to_string());
        }
        if alphabet_start[depth] as usize != alphabet.len() {
            return Err("alphabet table must cover every slot".to_string());
        }
        for l in 0..depth {
            let slots = &alphabet[alphabet_start[l] as usize..alphabet_start[l + 1] as usize];
            if slots.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("level {l} alphabet is not strictly ascending"));
            }
            // Child runs tile the next level in node order (CSR
            // contiguity), so `child_start`/`child_len` are fully
            // determined by `level_start` — any corruption shows.
            let mut next_child = u64::from(level_start[l + 1]);
            for n in level_start[l] as usize..level_start[l + 1] as usize {
                let idx = label_idx[n];
                if idx < alphabet_start[l] || idx >= alphabet_start[l + 1] {
                    return Err(format!("node {n} label slot escapes level {l}"));
                }
                if alphabet[idx as usize] != labels[n] {
                    return Err(format!("node {n} label disagrees with its slot"));
                }
                if sub_len[n] == 0 {
                    return Err(format!("node {n} covers no postings"));
                }
                let se = u64::from(sub_start[n]) + u64::from(sub_len[n]);
                if se > postings.len() as u64 {
                    return Err(format!("node {n} subtree range escapes postings"));
                }
                if l + 1 < depth {
                    if u64::from(child_start[n]) != next_child {
                        return Err(format!("node {n} child run breaks CSR contiguity"));
                    }
                    if child_len[n] == 0 {
                        return Err(format!("internal node {n} has no children"));
                    }
                    next_child += u64::from(child_len[n]);
                    if next_child > u64::from(level_start[l + 2]) {
                        return Err(format!("node {n} child run escapes level {}", l + 1));
                    }
                    // The children's subtree ranges tile the parent's
                    // exactly, with strictly ascending sibling labels.
                    let cs = child_start[n] as usize;
                    let ce = cs + child_len[n] as usize;
                    let mut at = sub_start[n];
                    for c in cs..ce {
                        if sub_start[c] != at {
                            return Err(format!("child {c} breaks node {n}'s subtree tiling"));
                        }
                        at = at.saturating_add(sub_len[c]);
                        if c > cs && labels[c - 1] >= labels[c] {
                            return Err(format!("sibling labels not ascending at node {c}"));
                        }
                    }
                    if u64::from(at) != se {
                        return Err(format!("node {n}'s children do not cover its subtree"));
                    }
                } else if child_start[n] != 0 || child_len[n] != 0 {
                    return Err(format!("leaf node {n} carries a child run"));
                }
            }
            if l + 1 < depth && next_child != u64::from(level_start[l + 2]) {
                return Err(format!("level {} is not covered by child runs", l + 1));
            }
        }
        // The root level tiles the whole posting array, with strictly
        // ascending labels (children of the virtual root).
        let mut at = 0u64;
        for n in 0..level_start[1] as usize {
            if u64::from(sub_start[n]) != at {
                return Err(format!("root-level node {n} breaks the posting tiling"));
            }
            at += u64::from(sub_len[n]);
            if n > 0 && labels[n - 1] >= labels[n] {
                return Err(format!("sibling labels not ascending at node {n}"));
            }
        }
        if at != postings.len() as u64 {
            return Err("root level does not cover the posting array".to_string());
        }
        Ok(())
    }

    /// Merges more `(sequence, graph)` entries into the arena by a
    /// one-shot rebuild — O(stored + added). Incremental insertion is
    /// not the arena's strength (see `FragmentIndex::insert_graph`);
    /// batching a whole graph's sequences per call keeps it one rebuild
    /// per class.
    ///
    /// # Panics
    /// Panics if any sequence length differs from the trie depth.
    pub fn insert_batch(&mut self, additions: Vec<(Vec<Label>, GraphId)>) {
        if additions.is_empty() {
            return;
        }
        let mut merged: Vec<(Vec<Label>, GraphId)> =
            Vec::with_capacity(self.len() + additions.len());
        self.for_each_entry(|seq, g| merged.push((seq.to_vec(), g)));
        merged.extend(additions);
        *self = FlatTrie::from_entries(self.depth, merged);
    }

    /// Visits every stored `(sequence, graph)` pair in lexicographic
    /// sequence order (ascending graph ids within a sequence) — the
    /// same deterministic order as [`LabelTrie::for_each_entry`], which
    /// keeps persisted bytes identical across layouts.
    pub fn for_each_entry(&self, mut visit: impl FnMut(&[Label], GraphId)) {
        if self.depth == 0 {
            for &g in &self.postings {
                visit(&[], g);
            }
            return;
        }
        let mut path = vec![Label(0); self.depth];
        let root_range = (self.level_start[0], self.level_start[1]);
        self.walk_entries(0, root_range, &mut path, &mut visit);
    }

    fn walk_entries(
        &self,
        level: usize,
        (start, end): (u32, u32),
        path: &mut [Label],
        visit: &mut impl FnMut(&[Label], GraphId),
    ) {
        for node in start as usize..end as usize {
            path[level] = self.labels[node];
            if level + 1 == self.depth {
                let (s, n) = (self.sub_start[node], self.sub_len[node]);
                for &g in &self.postings[s as usize..(s + n) as usize] {
                    visit(path, g);
                }
            } else {
                let (cs, cl) = (self.child_start[node], self.child_len[node]);
                self.walk_entries(level + 1, (cs, cs + cl), path, visit);
            }
        }
    }

    /// Visits every stored `(graph, cost)` whose sequence is within
    /// `sigma` of `query` — the iterative, frontier-batched equivalent
    /// of [`LabelTrie::range_query`]. `level_costs(pos, query_label,
    /// stored_labels, out)` prices a whole level's distinct labels in
    /// one call (the batched kernel); each frontier node then pays one
    /// table lookup per child, and the descent short-circuits through
    /// any all-zero-cost suffix by emitting whole subtree posting
    /// ranges. A graph stored under several qualifying sequences is
    /// visited once per sequence; the caller keeps the minimum.
    ///
    /// # Panics
    /// Panics if `query.len() != depth`.
    pub fn range_query(
        &self,
        query: &[Label],
        sigma: f64,
        level_costs: impl FnMut(usize, Label, &[Label], &mut [f64]),
        scratch: &mut TrieFrontier,
        visit: impl FnMut(GraphId, f64),
    ) {
        let completed = self.range_query_budgeted(
            query,
            sigma,
            level_costs,
            scratch,
            BudgetState::unlimited(),
            visit,
        );
        debug_assert!(completed, "the unlimited budget never interrupts a descent");
    }

    /// [`FlatTrie::range_query`] under a budget: the descent consults
    /// one [`CheckpointSite::RangeDescent`] checkpoint per frontier
    /// level and returns `false` the moment the budget trips — visits
    /// already made are then a meaningless prefix and the caller must
    /// discard them (a partial descent's hit set is neither a subset
    /// nor a superset of the true answer once minima are folded).
    ///
    /// # Panics
    /// Panics if `query.len() != depth`.
    pub fn range_query_budgeted(
        &self,
        query: &[Label],
        sigma: f64,
        mut level_costs: impl FnMut(usize, Label, &[Label], &mut [f64]),
        scratch: &mut TrieFrontier,
        budget: &BudgetState,
        mut visit: impl FnMut(GraphId, f64),
    ) -> bool {
        assert_eq!(query.len(), self.depth, "query length must equal trie depth");
        if self.depth == 0 {
            for &g in &self.postings {
                visit(g, 0.0);
            }
            return true;
        }
        let TrieFrontier { nodes, costs, next_nodes, next_costs, label_costs } = scratch;
        // Price every level's alphabet up front (one batched call per
        // level into the alphabet-shaped buffer)...
        label_costs.clear();
        label_costs.resize(self.alphabet.len(), 0.0);
        for (l, &q) in query.iter().enumerate() {
            let (s, e) = (self.alphabet_start[l] as usize, self.alphabet_start[l + 1] as usize);
            level_costs(l, q, &self.alphabet[s..e], &mut label_costs[s..e]);
        }
        // ...then find the first level from which every remaining level
        // prices to zero: below it, descent cannot change a path's cost,
        // so whole subtrees resolve at once. Under the edge-Hamming
        // evaluation distance this is the entire vertex suffix.
        let mut zero_from = self.depth;
        while zero_from > 0 {
            let (s, e) = (
                self.alphabet_start[zero_from - 1] as usize,
                self.alphabet_start[zero_from] as usize,
            );
            if label_costs[s..e].iter().any(|&c| c != 0.0) {
                break;
            }
            zero_from -= 1;
        }
        if zero_from == 0 {
            // The whole query is cost-free against everything stored
            // (and costs are non-negative, so sigma >= 0 admits all).
            if sigma >= 0.0 {
                for &g in &self.postings {
                    visit(g, 0.0);
                }
            }
            return true;
        }
        if !budget.checkpoint(CheckpointSite::RangeDescent, 1) {
            return false;
        }
        nodes.clear();
        costs.clear();
        // Level 0: the virtual root's children are the whole first
        // level.
        for node in self.level_start[0]..self.level_start[1] {
            let c = label_costs[self.label_idx[node as usize] as usize];
            if c <= sigma {
                nodes.push(node);
                costs.push(c);
            }
        }
        for _l in 1..zero_from {
            if !budget.checkpoint(CheckpointSite::RangeDescent, 1) {
                return false;
            }
            next_nodes.clear();
            next_costs.clear();
            for (&node, &acc) in nodes.iter().zip(costs.iter()) {
                let cs = self.child_start[node as usize];
                let ce = cs + self.child_len[node as usize];
                expand_children_wide(
                    &self.label_idx,
                    0,
                    label_costs,
                    (cs, ce),
                    acc,
                    sigma,
                    next_nodes,
                    next_costs,
                );
            }
            std::mem::swap(nodes, next_nodes);
            std::mem::swap(costs, next_costs);
            if nodes.is_empty() {
                return true;
            }
        }
        // The frontier sits at level `zero_from - 1`; every deeper level
        // adds exactly 0.0, so each surviving node's whole subtree
        // posting range carries its accumulated cost.
        for (&node, &acc) in nodes.iter().zip(costs.iter()) {
            let s = self.sub_start[node as usize] as usize;
            let e = s + self.sub_len[node as usize] as usize;
            for &g in &self.postings[s..e] {
                visit(g, acc);
            }
        }
        true
    }

    /// Prices and descends a whole *probe batch* — `nprobes` query
    /// sequences against this class, concatenated row-major in `probes`
    /// (`probes.len() == nprobes * depth`) — in one arena pass.
    ///
    /// Pricing is shared: each level's alphabet is priced **once per
    /// distinct query label of the batch**
    /// (`level_costs_multi(level, distinct_queries, stored, rows)`,
    /// see `MutationDistance::position_costs_into_multi`), so sibling
    /// probes repeating a label never re-pay the kernel.
    /// `level_zero(level)` is the shared zero-prefix detector: return
    /// `true` when the level prices to zero for *every* query label
    /// (e.g. `MutationDistance::position_is_zero`), and the kernel call
    /// is skipped outright.
    ///
    /// The descent walks the arena level by level with a node-major
    /// frontier: probes alive on the same node share one read of its
    /// child range, single-probe nodes take the same wide-lane
    /// expansion as [`FlatTrie::range_query`], and each probe
    /// short-circuits through its own all-zero suffix independently.
    /// Every resolved subtree is reported as
    /// `emit(probe, cost, postings)` *during* the descent — emissions
    /// of different probes interleave, but per probe the flattened
    /// `(graph, cost)` multiset (exact f64 costs) is identical to a
    /// scalar [`FlatTrie::range_query`] with the same query and
    /// `sigma`, so an order-insensitive accumulator (e.g. a per-probe
    /// minimum table) reproduces the scalar hits byte-for-byte.
    ///
    /// # Panics
    /// Panics if `probes.len() != nprobes * depth`.
    #[allow(clippy::too_many_arguments)]
    pub fn range_query_batch(
        &self,
        nprobes: usize,
        probes: &[Label],
        sigma: f64,
        level_costs_multi: impl FnMut(usize, &[Label], &[Label], &mut [f64]),
        level_zero: impl FnMut(usize) -> bool,
        scratch: &mut BatchFrontier,
        emit: impl FnMut(u32, f64, &[GraphId]),
    ) {
        let completed = self.range_query_batch_budgeted(
            nprobes,
            probes,
            sigma,
            level_costs_multi,
            level_zero,
            scratch,
            BudgetState::unlimited(),
            emit,
        );
        debug_assert!(completed, "the unlimited budget never interrupts a descent");
    }

    /// [`FlatTrie::range_query_batch`] under a budget: one
    /// [`CheckpointSite::RangeDescent`] checkpoint per frontier level
    /// (and per per-probe descent level). Returns `false` the moment
    /// the budget trips; emissions already made cover an unpredictable
    /// probe subset, so the caller must discard the *whole batch's*
    /// partial results.
    ///
    /// # Panics
    /// Panics if `probes.len() != nprobes * depth`.
    #[allow(clippy::too_many_arguments)]
    pub fn range_query_batch_budgeted(
        &self,
        nprobes: usize,
        probes: &[Label],
        sigma: f64,
        mut level_costs_multi: impl FnMut(usize, &[Label], &[Label], &mut [f64]),
        mut level_zero: impl FnMut(usize) -> bool,
        scratch: &mut BatchFrontier,
        budget: &BudgetState,
        mut emit: impl FnMut(u32, f64, &[GraphId]),
    ) -> bool {
        let depth = self.depth;
        assert_eq!(
            probes.len(),
            nprobes * depth,
            "probe batch must hold nprobes sequences of trie depth"
        );
        scratch.reset(nprobes, depth);
        if nprobes == 0 || self.postings.is_empty() {
            return true;
        }
        if depth == 0 {
            // The virtual root is a leaf: every probe matches the whole
            // store at cost zero.
            for p in 0..nprobes {
                emit(p as u32, 0.0, &self.postings);
            }
            return true;
        }
        // --- Shared pricing: one kernel row per (level, distinct query
        // label); every probe's row offset is resolved up front. The
        // same pass accumulates the worst-case path cost, which decides
        // the descent mode below. ---
        let mut max_total = 0.0f64;
        for l in 0..depth {
            let (a0, a1) = (self.alphabet_start[l] as usize, self.alphabet_start[l + 1] as usize);
            let alpha = &self.alphabet[a0..a1];
            let alen = alpha.len();
            scratch.distinct.clear();
            for p in 0..nprobes {
                scratch.distinct.push(probes[p * depth + l]);
            }
            scratch.distinct.sort_unstable();
            scratch.distinct.dedup();
            let base = scratch.costs.len();
            scratch.costs.resize(base + scratch.distinct.len() * alen, 0.0);
            scratch.distinct_zero.clear();
            if level_zero(l) {
                // The level cannot price anything for any query label —
                // the zero-filled rows are already exact, skip the
                // kernel and the per-row scans.
                scratch.distinct_zero.resize(scratch.distinct.len(), true);
            } else {
                let rows = &mut scratch.costs[base..];
                level_costs_multi(l, &scratch.distinct, alpha, rows);
                scratch
                    .distinct_zero
                    .extend(rows.chunks_exact(alen).map(|row| row.iter().all(|&c| c == 0.0)));
                max_total += rows.iter().copied().fold(0.0, f64::max);
            }
            for p in 0..nprobes {
                let di = scratch
                    .distinct
                    .binary_search(&probes[p * depth + l])
                    .expect("every probe label was gathered");
                scratch.row_of[p * depth + l] = (base + di * alen) as u32;
                scratch.row_zero[p * depth + l] = scratch.distinct_zero[di];
            }
        }
        // Per-probe zero-suffix boundary; probes whose whole query
        // prices to zero resolve to the full store immediately.
        let mut max_zero = 0u32;
        for p in 0..nprobes {
            let mut zf = depth as u32;
            while zf > 0 && scratch.row_zero[p * depth + zf as usize - 1] {
                zf -= 1;
            }
            scratch.zero_from.push(zf);
            max_zero = max_zero.max(zf);
            if zf == 0 && sigma >= 0.0 {
                // Costs are non-negative, so sigma >= 0 admits all.
                emit(p as u32, 0.0, &self.postings);
            }
        }
        if max_zero == 0 {
            return true;
        }
        let BatchFrontier {
            costs,
            row_of,
            zero_from,
            nodes,
            group_start,
            probes: fprobes,
            accs,
            next_nodes,
            next_group_start,
            next_probes,
            next_accs,
            group_probes,
            group_accs,
            by_probe_start,
            sorted_nodes,
            sorted_accs,
            ..
        } = scratch;
        // --- Descent mode. When `sigma` covers at least half the
        // worst-case path cost, most paths survive most levels, the
        // sibling probes stay stacked on the same frontier nodes, and
        // the node-major descent amortizes every arena read across
        // them. Below that, survivor sets separate fast and per-probe
        // wide-lane descents over the shared pricing table win — the
        // group bookkeeping would outweigh the sharing. ---
        let (l0s, l0e) = (self.level_start[0], self.level_start[1]);
        if 2.0 * sigma < max_total || nprobes == 1 {
            for p in 0..nprobes {
                if zero_from[p] == 0 {
                    continue;
                }
                if !budget.checkpoint(CheckpointSite::RangeDescent, 1) {
                    return false;
                }
                let row0 = row_of[p * depth] as usize;
                nodes.clear();
                accs.clear();
                for node in l0s..l0e {
                    // Level-0 cost slots start at 0.
                    let c = costs[row0 + self.label_idx[node as usize] as usize];
                    if c <= sigma {
                        nodes.push(node);
                        accs.push(c);
                    }
                }
                if !self.descend_probe(
                    p, 1, sigma, costs, row_of, zero_from, nodes, accs, next_nodes, next_accs,
                    budget, &mut emit,
                ) {
                    return false;
                }
            }
            return true;
        }
        // Seed with level 0 (node-major so sibling probes group).
        group_start.push(0);
        for node in l0s..l0e {
            let rel = self.label_idx[node as usize] as usize; // level-0 slots start at 0
            let mut began = false;
            for p in 0..nprobes {
                if zero_from[p] == 0 {
                    continue;
                }
                let c = costs[row_of[p * depth] as usize + rel];
                if c <= sigma {
                    if !began {
                        nodes.push(node);
                        began = true;
                    }
                    fprobes.push(p as u32);
                    accs.push(c);
                }
            }
            if began {
                group_start.push(fprobes.len() as u32);
            }
        }
        let mut frontier_level = 0usize;
        loop {
            if nodes.is_empty() {
                return true;
            }
            if !budget.checkpoint(CheckpointSite::RangeDescent, 1) {
                return false;
            }
            let lvl = frontier_level + 1;
            if lvl >= max_zero as usize {
                // Every remaining probe's zero suffix starts here: each
                // entry resolves to its node's whole subtree range.
                for g in 0..nodes.len() {
                    let node = nodes[g] as usize;
                    let sub = self.subtree_postings(node);
                    for i in group_start[g] as usize..group_start[g + 1] as usize {
                        emit(fprobes[i], accs[i], sub);
                    }
                }
                return true;
            }
            // Adaptive lane occupancy: node-major groups pay off while
            // several sibling probes ride each frontier node (one arena
            // read serves them all). Once the average occupancy drops
            // under 2 — selective sigmas separate the probes quickly —
            // the group bookkeeping is pure overhead, so regroup the
            // frontier probe-major (stable counting sort) and finish
            // each probe with the scalar wide-lane descent, still on
            // the shared pricing table.
            if fprobes.len() < 2 * nodes.len() {
                by_probe_start.clear();
                by_probe_start.resize(nprobes + 1, 0);
                for &p in fprobes.iter() {
                    by_probe_start[p as usize + 1] += 1;
                }
                for p in 0..nprobes {
                    by_probe_start[p + 1] += by_probe_start[p];
                }
                let total = fprobes.len();
                sorted_nodes.clear();
                sorted_nodes.resize(total, 0);
                sorted_accs.clear();
                sorted_accs.resize(total, 0.0);
                group_probes.clear();
                group_probes.extend_from_slice(by_probe_start);
                for g in 0..nodes.len() {
                    for i in group_start[g] as usize..group_start[g + 1] as usize {
                        let cursor = &mut group_probes[fprobes[i] as usize];
                        let pos = *cursor as usize;
                        *cursor += 1;
                        sorted_nodes[pos] = nodes[g];
                        sorted_accs[pos] = accs[i];
                    }
                }
                for p in 0..nprobes {
                    let (ps, pe) = (by_probe_start[p] as usize, by_probe_start[p + 1] as usize);
                    if ps == pe {
                        continue;
                    }
                    nodes.clear();
                    nodes.extend_from_slice(&sorted_nodes[ps..pe]);
                    accs.clear();
                    accs.extend_from_slice(&sorted_accs[ps..pe]);
                    if !self.descend_probe(
                        p, lvl, sigma, costs, row_of, zero_from, nodes, accs, next_nodes,
                        next_accs, budget, &mut emit,
                    ) {
                        return false;
                    }
                }
                return true;
            }
            let any_retiring = zero_from.iter().any(|&zf| zf as usize == lvl);
            let alpha_base = self.alphabet_start[lvl];
            next_nodes.clear();
            next_group_start.clear();
            next_group_start.push(0);
            next_probes.clear();
            next_accs.clear();
            for g in 0..nodes.len() {
                let node = nodes[g] as usize;
                let (es, ee) = (group_start[g] as usize, group_start[g + 1] as usize);
                // The group's live entries; on the rare levels where
                // some (not all) probes retire into their zero suffix,
                // the retirees emit their subtree range here and the
                // survivors are staged aside.
                let (mut live_probes, mut live_accs): (&[u32], &[f64]) =
                    (&fprobes[es..ee], &accs[es..ee]);
                if any_retiring {
                    group_probes.clear();
                    group_accs.clear();
                    let sub = self.subtree_postings(node);
                    for i in es..ee {
                        if zero_from[fprobes[i] as usize] as usize == lvl {
                            emit(fprobes[i], accs[i], sub);
                        } else {
                            group_probes.push(fprobes[i]);
                            group_accs.push(accs[i]);
                        }
                    }
                    if group_probes.is_empty() {
                        continue;
                    }
                    (live_probes, live_accs) = (group_probes.as_slice(), group_accs.as_slice());
                }
                let cs = self.child_start[node];
                let ce = cs + self.child_len[node];
                if let (&[p], &[acc]) = (live_probes, live_accs) {
                    // Single live probe on this node: take the same
                    // wide-lane expansion as the scalar descent, each
                    // survivor becoming its own next-level group.
                    let row = row_of[p as usize * depth + lvl] as usize;
                    let before = next_nodes.len();
                    expand_children_wide(
                        &self.label_idx,
                        alpha_base,
                        &costs[row..],
                        (cs, ce),
                        acc,
                        sigma,
                        next_nodes,
                        next_accs,
                    );
                    for _ in before..next_nodes.len() {
                        next_probes.push(p);
                        next_group_start.push(next_probes.len() as u32);
                    }
                } else {
                    // Shared arena reads: one label load per child, all
                    // sibling probes priced from their own row lane.
                    for child in cs..ce {
                        let rel = (self.label_idx[child as usize] - alpha_base) as usize;
                        let mut began = false;
                        for (&p, &acc) in live_probes.iter().zip(live_accs.iter()) {
                            let row = row_of[p as usize * depth + lvl] as usize;
                            let c = acc + costs[row + rel];
                            if c <= sigma {
                                if !began {
                                    next_nodes.push(child);
                                    began = true;
                                }
                                next_probes.push(p);
                                next_accs.push(c);
                            }
                        }
                        if began {
                            next_group_start.push(next_probes.len() as u32);
                        }
                    }
                }
            }
            std::mem::swap(nodes, next_nodes);
            std::mem::swap(group_start, next_group_start);
            std::mem::swap(fprobes, next_probes);
            std::mem::swap(accs, next_accs);
            frontier_level = lvl;
        }
    }

    /// Finishes one probe's batched descent from a frontier sitting at
    /// level `from_level - 1`: expands through the probe's remaining
    /// cost-bearing levels with the wide-lane loop over its rows of the
    /// shared pricing table (exactly the scalar descent's inner loop),
    /// then emits each survivor's subtree posting range. Returns
    /// `false` when the budget trips mid-descent.
    #[allow(clippy::too_many_arguments)]
    fn descend_probe(
        &self,
        p: usize,
        from_level: usize,
        sigma: f64,
        costs: &[f64],
        row_of: &[u32],
        zero_from: &[u32],
        nodes: &mut Vec<u32>,
        accs: &mut Vec<f64>,
        next_nodes: &mut Vec<u32>,
        next_accs: &mut Vec<f64>,
        budget: &BudgetState,
        emit: &mut impl FnMut(u32, f64, &[GraphId]),
    ) -> bool {
        let depth = self.depth;
        for lvl in from_level..zero_from[p] as usize {
            if !budget.checkpoint(CheckpointSite::RangeDescent, 1) {
                return false;
            }
            let row = row_of[p * depth + lvl] as usize;
            let base = self.alphabet_start[lvl];
            next_nodes.clear();
            next_accs.clear();
            for (&node, &acc) in nodes.iter().zip(accs.iter()) {
                let cs = self.child_start[node as usize];
                let ce = cs + self.child_len[node as usize];
                expand_children_wide(
                    &self.label_idx,
                    base,
                    &costs[row..],
                    (cs, ce),
                    acc,
                    sigma,
                    next_nodes,
                    next_accs,
                );
            }
            std::mem::swap(nodes, next_nodes);
            std::mem::swap(accs, next_accs);
            if nodes.is_empty() {
                return true;
            }
        }
        for (&node, &acc) in nodes.iter().zip(accs.iter()) {
            emit(p as u32, acc, self.subtree_postings(node as usize));
        }
        true
    }

    /// The contiguous postings range covered by `node`'s whole subtree.
    #[inline]
    fn subtree_postings(&self, node: usize) -> &[GraphId] {
        let s = self.sub_start[node] as usize;
        &self.postings[s..s + self.sub_len[node] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(xs: &[u32]) -> Vec<Label> {
        xs.iter().map(|&x| Label(x)).collect()
    }

    /// Unit Hamming cost regardless of position, batched form.
    fn hamming(_pos: usize, q: Label, stored: &[Label], out: &mut [f64]) {
        for (o, &s) in out.iter_mut().zip(stored) {
            *o = if s == q { 0.0 } else { 1.0 };
        }
    }

    fn collect(trie: &FlatTrie, query: &[Label], sigma: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        let mut scratch = TrieFrontier::new();
        trie.range_query(query, sigma, hamming, &mut scratch, |g, c| out.push((g.0, c)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    fn from_builder(entries: &[(Vec<Label>, GraphId)], depth: usize) -> (LabelTrie, FlatTrie) {
        let mut builder = LabelTrie::new(depth);
        for (seq, g) in entries {
            builder.insert(seq, *g);
        }
        let flat = FlatTrie::freeze(&builder);
        (builder, flat)
    }

    #[test]
    fn exact_and_near_matches() {
        let entries = vec![
            (l(&[1, 2, 3]), GraphId(0)),
            (l(&[1, 2, 4]), GraphId(1)),
            (l(&[9, 9, 9]), GraphId(2)),
        ];
        let (_, t) = from_builder(&entries, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 0.0), vec![(0, 0.0)]);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 1.0), vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 3.0), vec![(0, 0.0), (1, 1.0), (2, 3.0)]);
    }

    #[test]
    fn duplicate_pairs_deduplicated() {
        let t = FlatTrie::from_entries(
            2,
            vec![(l(&[1, 1]), GraphId(7)), (l(&[1, 1]), GraphId(7)), (l(&[1, 1]), GraphId(8))],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(collect(&t, &l(&[1, 1]), 0.0), vec![(7, 0.0), (8, 0.0)]);
    }

    #[test]
    fn matches_pointer_trie_on_random_data() {
        // Differential check including duplicate `(sequence, graph)`
        // pairs, several sigmas, and a position-dependent cost whose
        // zero-cost suffix exercises the subtree short-circuit.
        let mut entries = Vec::new();
        let mut x = 1u64;
        for g in 0..80u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let seq = l(&[
                (x >> 8) as u32 % 4,
                (x >> 16) as u32 % 3,
                (x >> 24) as u32 % 3,
                (x >> 32) as u32 % 2,
            ]);
            entries.push((seq, GraphId(g % 20)));
        }
        let (builder, flat) = from_builder(&entries, 4);
        assert_eq!(builder.len(), flat.len());
        // Hamming on the first two positions, free afterwards — the
        // descent must stop at level 2 and emit subtree ranges.
        let scalar = |pos: usize, a: Label, b: Label| {
            if a == b || pos >= 2 {
                0.0
            } else {
                1.0
            }
        };
        let batched = |pos: usize, q: Label, stored: &[Label], out: &mut [f64]| {
            for (o, &s) in out.iter_mut().zip(stored) {
                *o = scalar(pos, q, s);
            }
        };
        let mut scratch = TrieFrontier::new();
        for query in [l(&[0, 0, 0, 0]), l(&[1, 2, 1, 1]), l(&[3, 2, 2, 0])] {
            for sigma in [0.0, 1.0, 2.0, 4.0] {
                let mut expected = Vec::new();
                builder.range_query(&query, sigma, scalar, |g, c| expected.push((g.0, c)));
                expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut got = Vec::new();
                flat.range_query(&query, sigma, batched, &mut scratch, |g, c| got.push((g.0, c)));
                got.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(got, expected, "sigma={sigma} query={query:?}");
            }
        }
    }

    #[test]
    fn all_zero_costs_emit_everything_at_zero() {
        let entries =
            vec![(l(&[1, 2]), GraphId(0)), (l(&[3, 4]), GraphId(1)), (l(&[3, 4]), GraphId(2))];
        let t = FlatTrie::from_entries(2, entries);
        let free = |_pos: usize, _q: Label, stored: &[Label], out: &mut [f64]| {
            for (o, _) in out.iter_mut().zip(stored) {
                *o = 0.0;
            }
        };
        let mut out = Vec::new();
        t.range_query(&l(&[9, 9]), 0.0, free, &mut TrieFrontier::new(), |g, c| out.push((g.0, c)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn entry_iteration_matches_pointer_trie() {
        let entries = vec![
            (l(&[2, 1]), GraphId(5)),
            (l(&[1, 1]), GraphId(3)),
            (l(&[1, 2]), GraphId(3)),
            (l(&[1, 1]), GraphId(1)),
        ];
        let (builder, flat) = from_builder(&entries, 2);
        let mut a = Vec::new();
        builder.for_each_entry(|s, g| a.push((s.to_vec(), g)));
        let mut b = Vec::new();
        flat.for_each_entry(|s, g| b.push((s.to_vec(), g)));
        assert_eq!(a, b);
    }

    #[test]
    fn insert_batch_equals_bulk_build() {
        let first = vec![(l(&[1, 2]), GraphId(0)), (l(&[2, 2]), GraphId(1))];
        let second = vec![(l(&[1, 2]), GraphId(2)), (l(&[0, 1]), GraphId(2))];
        let mut incremental = FlatTrie::from_entries(2, first.clone());
        incremental.insert_batch(second.clone());
        let bulk = FlatTrie::from_entries(2, first.into_iter().chain(second).collect());
        let mut a = Vec::new();
        incremental.for_each_entry(|s, g| a.push((s.to_vec(), g)));
        let mut b = Vec::new();
        bulk.for_each_entry(|s, g| b.push((s.to_vec(), g)));
        assert_eq!(a, b);
        assert_eq!(incremental.len(), bulk.len());
    }

    #[test]
    fn empty_and_depth_zero_tries() {
        let empty = FlatTrie::from_entries(2, Vec::new());
        assert!(empty.is_empty());
        assert!(collect(&empty, &l(&[0, 0]), 10.0).is_empty());
        let zero = FlatTrie::from_entries(0, vec![(Vec::new(), GraphId(4))]);
        assert_eq!(zero.len(), 1);
        assert_eq!(collect(&zero, &[], 0.0), vec![(4, 0.0)]);
        let mut seen = Vec::new();
        zero.for_each_entry(|s, g| seen.push((s.len(), g.0)));
        assert_eq!(seen, vec![(0, 4)]);
    }

    /// Batched form of [`hamming`] for `range_query_batch`.
    fn hamming_multi(_pos: usize, queries: &[Label], stored: &[Label], out: &mut [f64]) {
        for (qi, &q) in queries.iter().enumerate() {
            for (k, &s) in stored.iter().enumerate() {
                out[qi * stored.len() + k] = if s == q { 0.0 } else { 1.0 };
            }
        }
    }

    /// Collects a batch probe's hits sorted, via the scalar descent.
    fn collect_scalar(trie: &FlatTrie, query: &[Label], sigma: f64) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        let mut scratch = TrieFrontier::new();
        trie.range_query(query, sigma, hamming, &mut scratch, |g, c| out.push((g.0, c.to_bits())));
        out.sort_unstable();
        out
    }

    /// Runs a batch and flattens each probe's emitted ranges into its
    /// visit list.
    fn run_batch(trie: &FlatTrie, probes: &[Vec<Label>], sigma: f64) -> Vec<Vec<(u32, u64)>> {
        let flat: Vec<Label> = probes.iter().flat_map(|p| p.iter().copied()).collect();
        let mut scratch = BatchFrontier::new();
        let mut visits: Vec<Vec<(u32, u64)>> = vec![Vec::new(); probes.len()];
        trie.range_query_batch(
            probes.len(),
            &flat,
            sigma,
            hamming_multi,
            |_| false,
            &mut scratch,
            |p, acc, graphs| {
                visits[p as usize].extend(graphs.iter().map(|g| (g.0, acc.to_bits())));
            },
        );
        visits
    }

    /// Asserts every probe of a batch reproduces the scalar visit
    /// multiset bit-for-bit (costs compared by their f64 bits).
    fn assert_batch_matches_scalar(trie: &FlatTrie, probes: &[Vec<Label>], sigma: f64) {
        let depth = trie.depth();
        for (pi, (probe, mut got)) in probes.iter().zip(run_batch(trie, probes, sigma)).enumerate()
        {
            assert_eq!(probe.len(), depth);
            got.sort_unstable();
            assert_eq!(got, collect_scalar(trie, probe, sigma), "probe {pi} sigma {sigma}");
        }
    }

    #[test]
    fn batch_matches_scalar_on_random_data() {
        let mut entries = Vec::new();
        let mut x = 7u64;
        for g in 0..120u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let seq = l(&[
                (x >> 8) as u32 % 5,
                (x >> 16) as u32 % 4,
                (x >> 24) as u32 % 3,
                (x >> 32) as u32 % 3,
            ]);
            entries.push((seq, GraphId(g % 30)));
        }
        let t = FlatTrie::from_entries(4, entries);
        // Duplicate probes included: the batch must price them once and
        // answer them identically.
        let probes = vec![
            l(&[0, 0, 0, 0]),
            l(&[1, 2, 1, 1]),
            l(&[0, 0, 0, 0]),
            l(&[4, 3, 2, 2]),
            l(&[2, 1, 0, 1]),
        ];
        for sigma in [0.0, 1.0, 2.0, 4.0] {
            assert_batch_matches_scalar(&t, &probes, sigma);
        }
    }

    #[test]
    fn batch_zero_suffix_boundaries_match_scalar() {
        // Position-dependent costs: free from level `cut` on, so probes
        // retire at different levels depending on their own labels too.
        let entries = vec![
            (l(&[1, 2, 3, 4]), GraphId(0)),
            (l(&[1, 2, 3, 5]), GraphId(1)),
            (l(&[1, 9, 3, 4]), GraphId(2)),
            (l(&[2, 2, 3, 4]), GraphId(3)),
            (l(&[2, 2, 4, 4]), GraphId(4)),
        ];
        let t = FlatTrie::from_entries(4, entries);
        for cut in 0..=4usize {
            let scalar = |pos: usize, a: Label, b: Label| {
                if a == b || pos >= cut {
                    0.0
                } else {
                    1.0
                }
            };
            let batched = |pos: usize, qs: &[Label], stored: &[Label], out: &mut [f64]| {
                for (qi, &q) in qs.iter().enumerate() {
                    for (k, &s) in stored.iter().enumerate() {
                        out[qi * stored.len() + k] = scalar(pos, q, s);
                    }
                }
            };
            let probes = [l(&[1, 2, 3, 4]), l(&[2, 2, 9, 9]), l(&[9, 9, 9, 9])];
            let flat: Vec<Label> = probes.iter().flat_map(|p| p.iter().copied()).collect();
            for sigma in [0.0, 1.0, 2.0] {
                let mut batch = BatchFrontier::new();
                // Exercise both zero-detection paths: the shared
                // level_zero flag and the per-row scan.
                for shared_zero in [false, true] {
                    let mut visits: Vec<Vec<(u32, u64)>> = vec![Vec::new(); probes.len()];
                    t.range_query_batch(
                        probes.len(),
                        &flat,
                        sigma,
                        batched,
                        |pos| shared_zero && pos >= cut,
                        &mut batch,
                        |p, acc, graphs| {
                            visits[p as usize].extend(graphs.iter().map(|g| (g.0, acc.to_bits())));
                        },
                    );
                    for (pi, probe) in probes.iter().enumerate() {
                        let mut got = visits[pi].clone();
                        got.sort_unstable();
                        let mut expected = Vec::new();
                        let mut tf = TrieFrontier::new();
                        t.range_query(
                            probe,
                            sigma,
                            |pos, q, stored, out| {
                                for (o, &s) in out.iter_mut().zip(stored) {
                                    *o = scalar(pos, q, s);
                                }
                            },
                            &mut tf,
                            |g, c| expected.push((g.0, c.to_bits())),
                        );
                        expected.sort_unstable();
                        assert_eq!(got, expected, "cut {cut} sigma {sigma} probe {pi}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_on_empty_singleton_and_depth_zero_tries() {
        let empty = FlatTrie::from_entries(2, Vec::new());
        let mut batch = BatchFrontier::new();
        empty.range_query_batch(
            2,
            &l(&[0, 0, 1, 1]),
            5.0,
            hamming_multi,
            |_| false,
            &mut batch,
            |_, _, _| panic!("empty trie emitted a range"),
        );
        let singleton = FlatTrie::from_entries(2, vec![(l(&[3, 7]), GraphId(9))]);
        assert_batch_matches_scalar(&singleton, &[l(&[3, 7]), l(&[3, 8]), l(&[0, 0])], 1.0);
        let zero =
            FlatTrie::from_entries(0, vec![(Vec::new(), GraphId(4)), (Vec::new(), GraphId(5))]);
        let visits = {
            let mut visits: Vec<Vec<(u32, f64)>> = vec![Vec::new(); 3];
            zero.range_query_batch(3, &[], 0.0, hamming_multi, |_| false, &mut batch, {
                let visits = &mut visits;
                move |p, acc, graphs| {
                    visits[p as usize].extend(graphs.iter().map(|g| (g.0, acc)));
                }
            });
            visits
        };
        for got in visits {
            assert_eq!(got, vec![(4, 0.0), (5, 0.0)]);
        }
        // An empty batch is a no-op.
        singleton.range_query_batch(
            0,
            &[],
            1.0,
            hamming_multi,
            |_| false,
            &mut batch,
            |_, _, _| panic!("zero probes emitted a range"),
        );
    }

    #[test]
    fn wide_expansion_handles_all_tail_lengths() {
        // One root with `n` children for n around the lane width,
        // including sub-lane, exact-multiple, and ragged counts: every
        // child must be found, in ascending order, for full and
        // selective sigmas.
        for n in [1usize, 3, 7, 8, 9, 15, 16, 17, 31] {
            let mut entries = Vec::new();
            for i in 0..n as u32 {
                entries.push((l(&[5, i]), GraphId(i)));
            }
            let t = FlatTrie::from_entries(2, entries);
            // sigma large: all children survive the level-1 expansion.
            let all = collect(&t, &l(&[5, 0]), n as f64 + 1.0);
            assert_eq!(all.len(), n, "n={n}");
            assert!(all.iter().enumerate().all(|(i, &(g, _))| g as usize == i));
            // sigma 0: only the exact child survives.
            for probe in 0..n as u32 {
                let exact = collect(&t, &l(&[5, probe]), 0.0);
                assert_eq!(exact, vec![(probe, 0.0)], "n={n} probe={probe}");
            }
            // The batch path takes the single-probe wide expansion too.
            assert_batch_matches_scalar(&t, &[l(&[5, 0]), l(&[5, n as u32 / 2])], 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "probe batch")]
    fn batch_length_mismatch_rejected() {
        let t = FlatTrie::from_entries(2, vec![(l(&[1, 1]), GraphId(0))]);
        let mut batch = BatchFrontier::new();
        t.range_query_batch(
            2,
            &l(&[1, 1, 2]),
            1.0,
            hamming_multi,
            |_| false,
            &mut batch,
            |_, _, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn wrong_length_rejected() {
        let _ = FlatTrie::from_entries(3, vec![(l(&[1]), GraphId(0))]);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn wrong_query_length_rejected() {
        let t = FlatTrie::from_entries(2, vec![(l(&[1, 1]), GraphId(0))]);
        let _ = collect(&t, &l(&[1]), 1.0);
    }

    /// Clones a frozen trie's columns for mutation.
    fn owned_parts(t: &FlatTrie) -> TriePartsOwned {
        let p = t.parts();
        TriePartsOwned {
            depth: p.depth,
            level_start: p.level_start.to_vec(),
            labels: p.labels.to_vec(),
            label_idx: p.label_idx.to_vec(),
            child_start: p.child_start.to_vec(),
            child_len: p.child_len.to_vec(),
            sub_start: p.sub_start.to_vec(),
            sub_len: p.sub_len.to_vec(),
            postings: p.postings.to_vec(),
            alphabet_start: p.alphabet_start.to_vec(),
            alphabet: p.alphabet.to_vec(),
        }
    }

    #[test]
    fn validate_accepts_every_built_trie() {
        for depth in [0usize, 1, 2, 4] {
            let entries: Vec<(Vec<Label>, GraphId)> = (0..30u32)
                .map(|g| {
                    (
                        l(&(0..depth as u32).map(|p| (g * 7 + p) % 3).collect::<Vec<_>>()),
                        GraphId(g % 12),
                    )
                })
                .collect();
            let t = FlatTrie::from_entries(depth, entries);
            t.validate().unwrap_or_else(|m| panic!("depth {depth}: {m}"));
        }
    }

    /// The tiling invariants pin every structural column exactly: a
    /// single bit flip anywhere outside the (separately validated)
    /// `postings` payload must be rejected by [`FlatTrie::from_parts`].
    #[test]
    fn structural_bit_flip_corpus_is_always_rejected() {
        let entries: Vec<(Vec<Label>, GraphId)> = (0..40u32)
            .map(|g| (l(&[(g * 7) % 3, (g * 5) % 4, (g * 3) % 3, g % 2]), GraphId(g % 15)))
            .collect();
        let t = FlatTrie::from_entries(4, entries);
        t.validate().unwrap();
        type U32Column = fn(&mut TriePartsOwned) -> &mut Vec<u32>;
        type LabelColumn = fn(&mut TriePartsOwned) -> &mut Vec<Label>;
        let columns: &[(&str, U32Column)] = &[
            ("level_start", |p| &mut p.level_start),
            ("label_idx", |p| &mut p.label_idx),
            ("child_start", |p| &mut p.child_start),
            ("child_len", |p| &mut p.child_len),
            ("sub_start", |p| &mut p.sub_start),
            ("sub_len", |p| &mut p.sub_len),
            ("alphabet_start", |p| &mut p.alphabet_start),
        ];
        for (name, column) in columns {
            let len = column(&mut owned_parts(&t)).len();
            for i in 0..len {
                for bit in [0, 1, 7, 31] {
                    let mut p = owned_parts(&t);
                    column(&mut p)[i] ^= 1 << bit;
                    assert!(
                        FlatTrie::from_parts(p).is_err(),
                        "flipping {name}[{i}] bit {bit} must be rejected"
                    );
                }
            }
        }
        // Label columns: pinned by alphabet ⟷ label cross-checks.
        for (name, column) in [
            ("labels", (|p: &mut TriePartsOwned| &mut p.labels) as LabelColumn),
            ("alphabet", |p| &mut p.alphabet),
        ] {
            let len = column(&mut owned_parts(&t)).len();
            for i in 0..len {
                for bit in [0, 1, 7, 31] {
                    let mut p = owned_parts(&t);
                    column(&mut p)[i].0 ^= 1 << bit;
                    assert!(
                        FlatTrie::from_parts(p).is_err(),
                        "flipping {name}[{i}] bit {bit} must be rejected"
                    );
                }
            }
        }
    }
}
