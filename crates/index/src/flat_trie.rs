//! Cache-resident trie layout: a level-major arena with
//! frontier-batched range descent.
//!
//! The pointer trie ([`crate::trie::LabelTrie`]) is the natural *build*
//! structure — cheap inserts, one heap node per prefix — but a terrible
//! *query* structure: every descent chases `Vec<(Label, Node)>` child
//! allocations scattered across the heap and recurses once per branch,
//! and the per-position cost function is re-evaluated for every child
//! even though a level's children repeat a handful of labels.
//!
//! [`FlatTrie`] freezes the same logical trie into contiguous,
//! level-major arrays:
//!
//! * all nodes of one level are adjacent (`level_start` delimits
//!   levels), and a node's children are a contiguous run in the next
//!   level addressed by CSR-style `child_start`/`child_len` offsets;
//! * node labels live in one SoA `labels` array scanned
//!   word-contiguously during descent, plus a per-level distinct-label
//!   alphabet and a per-node `label_idx` into it;
//! * leaf posting lists are concatenated into one `postings` array in
//!   entry order — which makes **every** node's subtree postings a
//!   contiguous range (`sub_start`/`sub_len`), not just a leaf's.
//!
//! [`FlatTrie::range_query`] replaces recursion with an iterative
//! level-by-level frontier: all levels' distinct labels are priced
//! up-front through a batched cost callback (see
//! `MutationDistance::position_costs_into`), surviving children are
//! appended to the next frontier, and the descent **stops early at the
//! first level from which every remaining level prices to zero**
//! (under the paper's edge-Hamming distance the normalized vertex
//! suffix always does), emitting whole subtree posting ranges instead
//! of walking cost-free levels. All frontier state lives in a
//! caller-owned [`TrieFrontier`], so steady-state descents allocate
//! nothing. Per-path cost accumulation performs the same f64 additions
//! in the same order as the pointer trie (skipped levels contribute
//! exactly `+0.0`), so reported distances are byte-identical to the
//! reference.

use pis_graph::{GraphId, Label};

use crate::trie::LabelTrie;

/// A frozen fixed-depth trie over label sequences (level-major arena).
#[derive(Clone, Debug)]
pub struct FlatTrie {
    depth: usize,
    /// Node index range of level `l` is `level_start[l]..level_start[l+1]`
    /// (empty vec when `depth == 0`).
    level_start: Vec<u32>,
    /// Per node: the label on the edge from its parent.
    labels: Vec<Label>,
    /// Per node: absolute index of its label's cost slot (see
    /// `alphabet`; slots are level-major like everything else).
    label_idx: Vec<u32>,
    /// Per internal node: its child run in the next level (zeros for
    /// leaves, whose "children" are the posting range below).
    child_start: Vec<u32>,
    /// Per internal node: child run length.
    child_len: Vec<u32>,
    /// Per node: the contiguous `postings` range covered by its whole
    /// subtree (for a leaf: its own posting list).
    sub_start: Vec<u32>,
    sub_len: Vec<u32>,
    /// All `(sequence, graph)` entries' graph ids, in sorted entry
    /// order — simultaneously the concatenation of all leaf posting
    /// lists and of every subtree range.
    postings: Vec<GraphId>,
    /// Distinct labels of level `l`:
    /// `alphabet[alphabet_start[l]..alphabet_start[l+1]]`, sorted
    /// ascending. Query-time level costs are computed into a buffer
    /// with this exact layout.
    alphabet_start: Vec<u32>,
    alphabet: Vec<Label>,
}

/// Reusable frontier buffers for [`FlatTrie::range_query`]. One scratch
/// serves any number of sequential queries against tries of any shape.
#[derive(Clone, Debug, Default)]
pub struct TrieFrontier {
    /// Live nodes of the current level.
    nodes: Vec<u32>,
    /// Accumulated cost of each live node, parallel to `nodes`.
    costs: Vec<f64>,
    /// Double buffers for the next level.
    next_nodes: Vec<u32>,
    next_costs: Vec<f64>,
    /// Per-distinct-label costs of **all** levels, laid out like the
    /// trie's `alphabet` array.
    label_costs: Vec<f64>,
}

impl TrieFrontier {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        TrieFrontier::default()
    }
}

impl FlatTrie {
    /// Builds the arena from `(sequence, graph)` entries (any order;
    /// duplicates are dropped, matching [`LabelTrie::insert`]'s dedup).
    ///
    /// # Panics
    /// Panics if any sequence length differs from `depth`.
    pub fn from_entries(depth: usize, mut entries: Vec<(Vec<Label>, GraphId)>) -> Self {
        for (seq, _) in &entries {
            assert_eq!(seq.len(), depth, "sequence length must equal trie depth");
        }
        entries.sort_unstable();
        entries.dedup();
        FlatTrie::from_sorted(depth, &entries)
    }

    /// Freezes an insert-friendly [`LabelTrie`] builder into the arena
    /// layout. The two answer identical queries; only the memory layout
    /// changes.
    pub fn freeze(builder: &LabelTrie) -> Self {
        let mut entries: Vec<(Vec<Label>, GraphId)> = Vec::with_capacity(builder.len());
        builder.for_each_entry(|seq, g| entries.push((seq.to_vec(), g)));
        // `for_each_entry` yields lexicographic order with ascending
        // graph ids — already sorted and deduplicated.
        FlatTrie::from_sorted(builder.depth(), &entries)
    }

    /// `entries` must be sorted by `(sequence, graph)` and deduplicated.
    fn from_sorted(depth: usize, entries: &[(Vec<Label>, GraphId)]) -> Self {
        let n = entries.len();
        let mut trie = FlatTrie {
            depth,
            level_start: Vec::with_capacity(depth + 1),
            labels: Vec::new(),
            label_idx: Vec::new(),
            child_start: Vec::new(),
            child_len: Vec::new(),
            sub_start: Vec::new(),
            sub_len: Vec::new(),
            postings: entries.iter().map(|(_, g)| *g).collect(),
            alphabet_start: Vec::with_capacity(depth + 1),
            alphabet: Vec::new(),
        };
        if depth == 0 {
            // The virtual root is the only (leaf) node; its postings are
            // the whole array.
            return trie;
        }
        // Level-by-level construction: each node is a distinct prefix,
        // represented during the build by its contiguous entry range
        // (entries are sorted, so equal prefixes are adjacent) — which
        // is exactly its subtree posting range.
        let mut parent_ranges: Vec<(u32, u32)> =
            if n > 0 { vec![(0, n as u32)] } else { Vec::new() };
        for l in 0..depth {
            trie.level_start.push(trie.labels.len() as u32);
            let mut next_ranges: Vec<(u32, u32)> = Vec::new();
            for (pi, &(s, e)) in parent_ranges.iter().enumerate() {
                let first_child = trie.labels.len() as u32;
                let mut i = s;
                while i < e {
                    let label = entries[i as usize].0[l];
                    let mut j = i + 1;
                    while j < e && entries[j as usize].0[l] == label {
                        j += 1;
                    }
                    trie.labels.push(label);
                    trie.child_start.push(0);
                    trie.child_len.push(0);
                    trie.sub_start.push(i);
                    trie.sub_len.push(j - i);
                    next_ranges.push((i, j));
                    i = j;
                }
                if l > 0 {
                    // Parent `pi` of the previous level owns exactly the
                    // children just created.
                    let p = (trie.level_start[l - 1] + pi as u32) as usize;
                    trie.child_start[p] = first_child;
                    trie.child_len[p] = trie.labels.len() as u32 - first_child;
                }
            }
            parent_ranges = next_ranges;
        }
        trie.level_start.push(trie.labels.len() as u32);
        // Per-level distinct-label alphabets + absolute per-node cost
        // slots (computed once here so descents only index).
        trie.label_idx = vec![0; trie.labels.len()];
        let mut distinct: Vec<Label> = Vec::new();
        for l in 0..depth {
            let base = trie.alphabet.len() as u32;
            trie.alphabet_start.push(base);
            let (s, e) = (trie.level_start[l] as usize, trie.level_start[l + 1] as usize);
            distinct.clear();
            distinct.extend_from_slice(&trie.labels[s..e]);
            distinct.sort_unstable();
            distinct.dedup();
            for node in s..e {
                let k = distinct
                    .binary_search(&trie.labels[node])
                    .expect("every node label is in the level alphabet");
                trie.label_idx[node] = base + k as u32;
            }
            trie.alphabet.extend_from_slice(&distinct);
        }
        trie.alphabet_start.push(trie.alphabet.len() as u32);
        trie
    }

    /// The uniform sequence length.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of `(sequence, graph)` pairs stored (after dedup).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether the trie stores nothing.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Number of arena nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Merges more `(sequence, graph)` entries into the arena by a
    /// one-shot rebuild — O(stored + added). Incremental insertion is
    /// not the arena's strength (see `FragmentIndex::insert_graph`);
    /// batching a whole graph's sequences per call keeps it one rebuild
    /// per class.
    ///
    /// # Panics
    /// Panics if any sequence length differs from the trie depth.
    pub fn insert_batch(&mut self, additions: Vec<(Vec<Label>, GraphId)>) {
        if additions.is_empty() {
            return;
        }
        let mut merged: Vec<(Vec<Label>, GraphId)> =
            Vec::with_capacity(self.len() + additions.len());
        self.for_each_entry(|seq, g| merged.push((seq.to_vec(), g)));
        merged.extend(additions);
        *self = FlatTrie::from_entries(self.depth, merged);
    }

    /// Visits every stored `(sequence, graph)` pair in lexicographic
    /// sequence order (ascending graph ids within a sequence) — the
    /// same deterministic order as [`LabelTrie::for_each_entry`], which
    /// keeps persisted bytes identical across layouts.
    pub fn for_each_entry(&self, mut visit: impl FnMut(&[Label], GraphId)) {
        if self.depth == 0 {
            for &g in &self.postings {
                visit(&[], g);
            }
            return;
        }
        let mut path = vec![Label(0); self.depth];
        let root_range = (self.level_start[0], self.level_start[1]);
        self.walk_entries(0, root_range, &mut path, &mut visit);
    }

    fn walk_entries(
        &self,
        level: usize,
        (start, end): (u32, u32),
        path: &mut [Label],
        visit: &mut impl FnMut(&[Label], GraphId),
    ) {
        for node in start as usize..end as usize {
            path[level] = self.labels[node];
            if level + 1 == self.depth {
                let (s, n) = (self.sub_start[node], self.sub_len[node]);
                for &g in &self.postings[s as usize..(s + n) as usize] {
                    visit(path, g);
                }
            } else {
                let (cs, cl) = (self.child_start[node], self.child_len[node]);
                self.walk_entries(level + 1, (cs, cs + cl), path, visit);
            }
        }
    }

    /// Visits every stored `(graph, cost)` whose sequence is within
    /// `sigma` of `query` — the iterative, frontier-batched equivalent
    /// of [`LabelTrie::range_query`]. `level_costs(pos, query_label,
    /// stored_labels, out)` prices a whole level's distinct labels in
    /// one call (the batched kernel); each frontier node then pays one
    /// table lookup per child, and the descent short-circuits through
    /// any all-zero-cost suffix by emitting whole subtree posting
    /// ranges. A graph stored under several qualifying sequences is
    /// visited once per sequence; the caller keeps the minimum.
    ///
    /// # Panics
    /// Panics if `query.len() != depth`.
    pub fn range_query(
        &self,
        query: &[Label],
        sigma: f64,
        mut level_costs: impl FnMut(usize, Label, &[Label], &mut [f64]),
        scratch: &mut TrieFrontier,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        assert_eq!(query.len(), self.depth, "query length must equal trie depth");
        if self.depth == 0 {
            for &g in &self.postings {
                visit(g, 0.0);
            }
            return;
        }
        let TrieFrontier { nodes, costs, next_nodes, next_costs, label_costs } = scratch;
        // Price every level's alphabet up front (one batched call per
        // level into the alphabet-shaped buffer)...
        label_costs.clear();
        label_costs.resize(self.alphabet.len(), 0.0);
        for (l, &q) in query.iter().enumerate() {
            let (s, e) = (self.alphabet_start[l] as usize, self.alphabet_start[l + 1] as usize);
            level_costs(l, q, &self.alphabet[s..e], &mut label_costs[s..e]);
        }
        // ...then find the first level from which every remaining level
        // prices to zero: below it, descent cannot change a path's cost,
        // so whole subtrees resolve at once. Under the edge-Hamming
        // evaluation distance this is the entire vertex suffix.
        let mut zero_from = self.depth;
        while zero_from > 0 {
            let (s, e) = (
                self.alphabet_start[zero_from - 1] as usize,
                self.alphabet_start[zero_from] as usize,
            );
            if label_costs[s..e].iter().any(|&c| c != 0.0) {
                break;
            }
            zero_from -= 1;
        }
        if zero_from == 0 {
            // The whole query is cost-free against everything stored
            // (and costs are non-negative, so sigma >= 0 admits all).
            if sigma >= 0.0 {
                for &g in &self.postings {
                    visit(g, 0.0);
                }
            }
            return;
        }
        nodes.clear();
        costs.clear();
        // Level 0: the virtual root's children are the whole first
        // level.
        for node in self.level_start[0]..self.level_start[1] {
            let c = label_costs[self.label_idx[node as usize] as usize];
            if c <= sigma {
                nodes.push(node);
                costs.push(c);
            }
        }
        for _l in 1..zero_from {
            next_nodes.clear();
            next_costs.clear();
            for (&node, &acc) in nodes.iter().zip(costs.iter()) {
                let cs = self.child_start[node as usize];
                let ce = cs + self.child_len[node as usize];
                for child in cs..ce {
                    let c = acc + label_costs[self.label_idx[child as usize] as usize];
                    if c <= sigma {
                        next_nodes.push(child);
                        next_costs.push(c);
                    }
                }
            }
            std::mem::swap(nodes, next_nodes);
            std::mem::swap(costs, next_costs);
            if nodes.is_empty() {
                return;
            }
        }
        // The frontier sits at level `zero_from - 1`; every deeper level
        // adds exactly 0.0, so each surviving node's whole subtree
        // posting range carries its accumulated cost.
        for (&node, &acc) in nodes.iter().zip(costs.iter()) {
            let s = self.sub_start[node as usize] as usize;
            let e = s + self.sub_len[node as usize] as usize;
            for &g in &self.postings[s..e] {
                visit(g, acc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(xs: &[u32]) -> Vec<Label> {
        xs.iter().map(|&x| Label(x)).collect()
    }

    /// Unit Hamming cost regardless of position, batched form.
    fn hamming(_pos: usize, q: Label, stored: &[Label], out: &mut [f64]) {
        for (o, &s) in out.iter_mut().zip(stored) {
            *o = if s == q { 0.0 } else { 1.0 };
        }
    }

    fn collect(trie: &FlatTrie, query: &[Label], sigma: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        let mut scratch = TrieFrontier::new();
        trie.range_query(query, sigma, hamming, &mut scratch, |g, c| out.push((g.0, c)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    fn from_builder(entries: &[(Vec<Label>, GraphId)], depth: usize) -> (LabelTrie, FlatTrie) {
        let mut builder = LabelTrie::new(depth);
        for (seq, g) in entries {
            builder.insert(seq, *g);
        }
        let flat = FlatTrie::freeze(&builder);
        (builder, flat)
    }

    #[test]
    fn exact_and_near_matches() {
        let entries = vec![
            (l(&[1, 2, 3]), GraphId(0)),
            (l(&[1, 2, 4]), GraphId(1)),
            (l(&[9, 9, 9]), GraphId(2)),
        ];
        let (_, t) = from_builder(&entries, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 0.0), vec![(0, 0.0)]);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 1.0), vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 3.0), vec![(0, 0.0), (1, 1.0), (2, 3.0)]);
    }

    #[test]
    fn duplicate_pairs_deduplicated() {
        let t = FlatTrie::from_entries(
            2,
            vec![(l(&[1, 1]), GraphId(7)), (l(&[1, 1]), GraphId(7)), (l(&[1, 1]), GraphId(8))],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(collect(&t, &l(&[1, 1]), 0.0), vec![(7, 0.0), (8, 0.0)]);
    }

    #[test]
    fn matches_pointer_trie_on_random_data() {
        // Differential check including duplicate `(sequence, graph)`
        // pairs, several sigmas, and a position-dependent cost whose
        // zero-cost suffix exercises the subtree short-circuit.
        let mut entries = Vec::new();
        let mut x = 1u64;
        for g in 0..80u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let seq = l(&[
                (x >> 8) as u32 % 4,
                (x >> 16) as u32 % 3,
                (x >> 24) as u32 % 3,
                (x >> 32) as u32 % 2,
            ]);
            entries.push((seq, GraphId(g % 20)));
        }
        let (builder, flat) = from_builder(&entries, 4);
        assert_eq!(builder.len(), flat.len());
        // Hamming on the first two positions, free afterwards — the
        // descent must stop at level 2 and emit subtree ranges.
        let scalar = |pos: usize, a: Label, b: Label| {
            if a == b || pos >= 2 {
                0.0
            } else {
                1.0
            }
        };
        let batched = |pos: usize, q: Label, stored: &[Label], out: &mut [f64]| {
            for (o, &s) in out.iter_mut().zip(stored) {
                *o = scalar(pos, q, s);
            }
        };
        let mut scratch = TrieFrontier::new();
        for query in [l(&[0, 0, 0, 0]), l(&[1, 2, 1, 1]), l(&[3, 2, 2, 0])] {
            for sigma in [0.0, 1.0, 2.0, 4.0] {
                let mut expected = Vec::new();
                builder.range_query(&query, sigma, scalar, |g, c| expected.push((g.0, c)));
                expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut got = Vec::new();
                flat.range_query(&query, sigma, batched, &mut scratch, |g, c| got.push((g.0, c)));
                got.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(got, expected, "sigma={sigma} query={query:?}");
            }
        }
    }

    #[test]
    fn all_zero_costs_emit_everything_at_zero() {
        let entries =
            vec![(l(&[1, 2]), GraphId(0)), (l(&[3, 4]), GraphId(1)), (l(&[3, 4]), GraphId(2))];
        let t = FlatTrie::from_entries(2, entries);
        let free = |_pos: usize, _q: Label, stored: &[Label], out: &mut [f64]| {
            for (o, _) in out.iter_mut().zip(stored) {
                *o = 0.0;
            }
        };
        let mut out = Vec::new();
        t.range_query(&l(&[9, 9]), 0.0, free, &mut TrieFrontier::new(), |g, c| out.push((g.0, c)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn entry_iteration_matches_pointer_trie() {
        let entries = vec![
            (l(&[2, 1]), GraphId(5)),
            (l(&[1, 1]), GraphId(3)),
            (l(&[1, 2]), GraphId(3)),
            (l(&[1, 1]), GraphId(1)),
        ];
        let (builder, flat) = from_builder(&entries, 2);
        let mut a = Vec::new();
        builder.for_each_entry(|s, g| a.push((s.to_vec(), g)));
        let mut b = Vec::new();
        flat.for_each_entry(|s, g| b.push((s.to_vec(), g)));
        assert_eq!(a, b);
    }

    #[test]
    fn insert_batch_equals_bulk_build() {
        let first = vec![(l(&[1, 2]), GraphId(0)), (l(&[2, 2]), GraphId(1))];
        let second = vec![(l(&[1, 2]), GraphId(2)), (l(&[0, 1]), GraphId(2))];
        let mut incremental = FlatTrie::from_entries(2, first.clone());
        incremental.insert_batch(second.clone());
        let bulk = FlatTrie::from_entries(2, first.into_iter().chain(second).collect());
        let mut a = Vec::new();
        incremental.for_each_entry(|s, g| a.push((s.to_vec(), g)));
        let mut b = Vec::new();
        bulk.for_each_entry(|s, g| b.push((s.to_vec(), g)));
        assert_eq!(a, b);
        assert_eq!(incremental.len(), bulk.len());
    }

    #[test]
    fn empty_and_depth_zero_tries() {
        let empty = FlatTrie::from_entries(2, Vec::new());
        assert!(empty.is_empty());
        assert!(collect(&empty, &l(&[0, 0]), 10.0).is_empty());
        let zero = FlatTrie::from_entries(0, vec![(Vec::new(), GraphId(4))]);
        assert_eq!(zero.len(), 1);
        assert_eq!(collect(&zero, &[], 0.0), vec![(4, 0.0)]);
        let mut seen = Vec::new();
        zero.for_each_entry(|s, g| seen.push((s.len(), g.0)));
        assert_eq!(seen, vec![(0, 4)]);
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn wrong_length_rejected() {
        let _ = FlatTrie::from_entries(3, vec![(l(&[1]), GraphId(0))]);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn wrong_query_length_rejected() {
        let t = FlatTrie::from_entries(2, vec![(l(&[1, 1]), GraphId(0))]);
        let _ = collect(&t, &l(&[1]), 1.0);
    }
}
