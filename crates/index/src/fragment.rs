//! Fragment vectors: class-canonical readouts of embeddings.
//!
//! A fragment is an occurrence of a feature structure inside a graph —
//! formally an embedding `φ: f → G`. Its *vector* is the sequence of
//! labels (or weights) of the image, read in the feature's canonical
//! order: edge slots first (code order), then vertex slots (DFS
//! discovery order). Two fragments of the same class therefore always
//! get comparable, equal-length vectors, and the per-slot distance sums
//! to the superposition distance — the key identity behind answering
//! Eq. (3) with an index-only range query.
//!
//! Edges lead in the layout because the paper's evaluation distance is
//! edge-only: putting the cost-bearing slots first lets the trie prune
//! before reaching the zero-cost vertex suffix.

use pis_graph::util::FxHashSet;
use pis_graph::{Embedding, Label, LabeledGraph, VertexId};
use pis_mining::FeatureId;

/// A fragment's class-canonical vector: categorical labels under the
/// mutation distance, numeric weights under the linear distance.
#[derive(Clone, Debug, PartialEq)]
pub enum FragmentVector {
    /// Edge labels then vertex labels.
    Labels(Vec<Label>),
    /// Edge weights then vertex weights.
    Weights(Vec<f64>),
}

/// A borrowed fragment vector — the slice view the query funnel passes
/// around so arena-backed fragments ([`FragmentBuffer`]) never
/// materialize per-fragment `Vec`s.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FragmentVectorRef<'a> {
    /// Edge labels then vertex labels.
    Labels(&'a [Label]),
    /// Edge weights then vertex weights.
    Weights(&'a [f64]),
}

impl<'a> FragmentVectorRef<'a> {
    /// The vector length (vertex slots + edge slots).
    pub fn len(&self) -> usize {
        match self {
            FragmentVectorRef::Labels(v) => v.len(),
            FragmentVectorRef::Weights(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label slots.
    ///
    /// # Panics
    /// Panics if this is a weight vector.
    pub fn labels(&self) -> &'a [Label] {
        match self {
            FragmentVectorRef::Labels(v) => v,
            FragmentVectorRef::Weights(_) => panic!("expected a label vector, found weights"),
        }
    }

    /// The weight slots.
    ///
    /// # Panics
    /// Panics if this is a label vector.
    pub fn weights(&self) -> &'a [f64] {
        match self {
            FragmentVectorRef::Weights(v) => v,
            FragmentVectorRef::Labels(_) => panic!("expected a weight vector, found labels"),
        }
    }

    /// Copies the slice into an owned [`FragmentVector`].
    pub fn to_owned_vector(&self) -> FragmentVector {
        match self {
            FragmentVectorRef::Labels(v) => FragmentVector::Labels(v.to_vec()),
            FragmentVectorRef::Weights(v) => FragmentVector::Weights(v.to_vec()),
        }
    }
}

impl FragmentVector {
    /// The vector length (vertex slots + edge slots).
    pub fn len(&self) -> usize {
        match self {
            FragmentVector::Labels(v) => v.len(),
            FragmentVector::Weights(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label slots.
    ///
    /// # Panics
    /// Panics if this is a weight vector.
    pub fn labels(&self) -> &[Label] {
        match self {
            FragmentVector::Labels(v) => v,
            FragmentVector::Weights(_) => panic!("expected a label vector, found weights"),
        }
    }

    /// The weight slots.
    ///
    /// # Panics
    /// Panics if this is a label vector.
    pub fn weights(&self) -> &[f64] {
        match self {
            FragmentVector::Weights(v) => v,
            FragmentVector::Labels(_) => panic!("expected a weight vector, found labels"),
        }
    }

    /// Borrows the vector as a [`FragmentVectorRef`].
    pub fn as_view(&self) -> FragmentVectorRef<'_> {
        match self {
            FragmentVector::Labels(v) => FragmentVectorRef::Labels(v),
            FragmentVector::Weights(v) => FragmentVectorRef::Weights(v),
        }
    }
}

/// Reads the label vector of an embedding: target labels of the
/// feature's edges (in code order) followed by target labels of its
/// vertices (in the representative's identity order, which is
/// canonical).
pub fn label_vector(
    feature: &LabeledGraph,
    target: &LabeledGraph,
    embedding: &Embedding,
) -> Vec<Label> {
    let mut v = Vec::with_capacity(feature.vertex_count() + feature.edge_count());
    label_vector_into(feature, target, embedding, &mut v);
    v
}

/// Appends the label vector of an embedding to `out` (the
/// allocation-free form of [`label_vector`], used by arena fills).
pub fn label_vector_into(
    feature: &LabeledGraph,
    target: &LabeledGraph,
    embedding: &Embedding,
    out: &mut Vec<Label>,
) {
    for e in feature.edge_ids() {
        let te = embedding.edge_image(feature, target, e);
        out.push(target.edge(te).attr.label);
    }
    for p in feature.vertex_ids() {
        out.push(target.vertex(embedding.vertex_image(p)).label);
    }
}

/// Reads the weight vector of an embedding (same layout as
/// [`label_vector`]).
pub fn weight_vector(
    feature: &LabeledGraph,
    target: &LabeledGraph,
    embedding: &Embedding,
) -> Vec<f64> {
    let mut v = Vec::with_capacity(feature.vertex_count() + feature.edge_count());
    weight_vector_into(feature, target, embedding, &mut v);
    v
}

/// Appends the weight vector of an embedding to `out` (the
/// allocation-free form of [`weight_vector`]).
pub fn weight_vector_into(
    feature: &LabeledGraph,
    target: &LabeledGraph,
    embedding: &Embedding,
    out: &mut Vec<f64>,
) {
    for e in feature.edge_ids() {
        let te = embedding.edge_image(feature, target, e);
        out.push(target.edge(te).attr.weight);
    }
    for p in feature.vertex_ids() {
        out.push(target.vertex(embedding.vertex_image(p)).weight);
    }
}

/// An indexed fragment of a *query* graph: what Algorithm 2 enumerates
/// on lines 3–4.
#[derive(Clone, Debug)]
pub struct QueryFragment {
    /// The feature (equivalence class) this fragment belongs to.
    pub feature: FeatureId,
    /// Sorted query vertices covered by the fragment; drives the
    /// overlapping-relation graph.
    pub vertices: Vec<VertexId>,
    /// The fragment's vector (one automorphism representative; the index
    /// stores all database-side variants, so any representative yields
    /// the same range-query minima).
    pub vector: FragmentVector,
}

impl QueryFragment {
    /// Number of query vertices covered.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }
}

/// Arena-backed storage for one query's enumerated fragments — the
/// allocation-free counterpart of `Vec<QueryFragment>`.
///
/// All fragments share four flat arrays (features, vertex images,
/// vector slots, offsets); the dedup set recycles its key allocations
/// through an internal pool. Held inside the searcher's scratch and
/// reused across queries, `FragmentIndex::enumerate_query_fragments_into`
/// performs no steady-state heap allocation.
#[derive(Debug, Default)]
pub struct FragmentBuffer {
    /// Feature of fragment `i`.
    pub(crate) features: Vec<FeatureId>,
    /// Vertex images, concatenated; fragment `i` owns
    /// `verts[vert_start[i]..vert_start[i + 1]]` (sorted ascending).
    pub(crate) vert_start: Vec<u32>,
    pub(crate) verts: Vec<VertexId>,
    /// Vector slots, concatenated into `labels` (mutation distance) or
    /// `weights` (linear distance) depending on `label_kind`.
    pub(crate) vec_start: Vec<u32>,
    pub(crate) labels: Vec<Label>,
    pub(crate) weights: Vec<f64>,
    pub(crate) label_kind: bool,
    /// Dedup keys of this query's fragments.
    pub(crate) seen: FxHashSet<Vec<u32>>,
    /// Recycled key allocations (refilled from `seen` on reset).
    pub(crate) key_pool: Vec<Vec<u32>>,
    /// Reusable key-assembly buffer.
    pub(crate) key_buf: Vec<u32>,
}

impl FragmentBuffer {
    /// An empty buffer; it sizes itself on first use.
    pub fn new() -> Self {
        FragmentBuffer::default()
    }

    /// Resets for a new query, keeping every allocation (dedup keys are
    /// drained into the recycling pool).
    pub(crate) fn reset(&mut self, label_kind: bool) {
        self.features.clear();
        self.vert_start.clear();
        self.vert_start.push(0);
        self.verts.clear();
        self.vec_start.clear();
        self.vec_start.push(0);
        self.labels.clear();
        self.weights.clear();
        self.label_kind = label_kind;
        self.key_pool.extend(self.seen.drain());
    }

    /// Number of fragments stored.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether no fragments are stored.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature (equivalence class) of fragment `i`.
    pub fn feature(&self, i: usize) -> FeatureId {
        self.features[i]
    }

    /// Sorted query vertices covered by fragment `i`.
    pub fn vertices(&self, i: usize) -> &[VertexId] {
        &self.verts[self.vert_start[i] as usize..self.vert_start[i + 1] as usize]
    }

    /// The (normalized) vector of fragment `i`, borrowed from the arena.
    pub fn vector(&self, i: usize) -> FragmentVectorRef<'_> {
        let (s, e) = (self.vec_start[i] as usize, self.vec_start[i + 1] as usize);
        if self.label_kind {
            FragmentVectorRef::Labels(&self.labels[s..e])
        } else {
            FragmentVectorRef::Weights(&self.weights[s..e])
        }
    }

    /// Materializes fragment `i` as an owned [`QueryFragment`].
    pub fn to_query_fragment(&self, i: usize) -> QueryFragment {
        QueryFragment {
            feature: self.feature(i),
            vertices: self.vertices(i).to_vec(),
            vector: self.vector(i).to_owned_vector(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::graph::path_graph;
    use pis_graph::iso::{embeddings, IsoConfig};
    use pis_graph::{EdgeAttr, GraphBuilder, VertexAttr};

    fn labeled_path(vlabels: &[u32], elabels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = vlabels
            .iter()
            .map(|&l| b.add_vertex(VertexAttr { label: Label(l), weight: l as f64 }))
            .collect();
        for (i, &l) in elabels.iter().enumerate() {
            b.add_edge(vs[i], vs[i + 1], EdgeAttr { label: Label(l), weight: 10.0 + l as f64 })
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn vectors_follow_canonical_layout() {
        let feature = path_graph(3, Label::ERASED, Label::ERASED);
        let target = labeled_path(&[1, 2, 3], &[7, 8]);
        let embs = embeddings(&feature, &target, IsoConfig::STRUCTURE);
        // Identity and reversal.
        assert_eq!(embs.len(), 2);
        let vectors: Vec<Vec<Label>> =
            embs.iter().map(|e| label_vector(&feature, &target, e)).collect();
        assert!(vectors.contains(&vec![Label(7), Label(8), Label(1), Label(2), Label(3)]));
        assert!(vectors.contains(&vec![Label(8), Label(7), Label(3), Label(2), Label(1)]));

        let wv = weight_vector(&feature, &target, &embs[0]);
        assert_eq!(wv.len(), 5);
        assert!(wv[0] >= 10.0 && wv[1] >= 10.0, "edge slots come first");
    }

    #[test]
    fn automorphic_readouts_differ_but_cover_each_other() {
        // The two readouts of a symmetric site are mutual reversals —
        // exactly why the index inserts every embedding.
        let feature = path_graph(2, Label::ERASED, Label::ERASED);
        let target = labeled_path(&[4, 9], &[1]);
        let vectors: Vec<Vec<Label>> = embeddings(&feature, &target, IsoConfig::STRUCTURE)
            .iter()
            .map(|e| label_vector(&feature, &target, e))
            .collect();
        assert_eq!(vectors.len(), 2);
        assert_ne!(vectors[0], vectors[1]);
        // Layout: [edge, v0, v1]; reversing the vertex pair gives the
        // other automorphic readout.
        let mut rev = vectors[0].clone();
        rev[1..].reverse();
        assert_eq!(rev, vectors[1]);
    }

    #[test]
    fn vector_accessors() {
        let lv = FragmentVector::Labels(vec![Label(1)]);
        assert_eq!(lv.len(), 1);
        assert!(!lv.is_empty());
        assert_eq!(lv.labels(), &[Label(1)]);
        let wv = FragmentVector::Weights(vec![1.0, 2.0]);
        assert_eq!(wv.weights(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "expected a label vector")]
    fn weights_are_not_labels() {
        let wv = FragmentVector::Weights(vec![1.0]);
        let _ = wv.labels();
    }
}
