//! The fragment-based index (Section 4, Figure 5).
//!
//! `FragmentIndex` = hash table over structural equivalence classes +
//! one range-searchable structure per class + structural posting lists.
//! Build enumerates, for every `(feature, graph)` pair, *all* embeddings
//! of the feature into the graph, deduplicates their vectors, and
//! inserts them into the class backend. Range queries then answer
//! Eq. (3) — `d(g, G) = min_{g' ⊑ G, g' ≅ g} d(g, g')` — without
//! touching any database graph.

use std::ops::ControlFlow;

use pis_distance::{LinearDistance, MutationDistance};
use pis_graph::budget::{BudgetState, CheckpointSite};
use pis_graph::iso::{IsoConfig, SubgraphMatcher};
use pis_graph::util::FxHashSet;
use pis_graph::{GraphId, Label, LabeledGraph, ScopedPool};
use pis_mining::{FeatureId, FeatureSet};

use crate::flat_trie::{BatchFrontier, FlatTrie, TrieFrontier};
use crate::fragment::{
    label_vector, label_vector_into, weight_vector, weight_vector_into, FragmentBuffer,
    FragmentVector, FragmentVectorRef, QueryFragment,
};
use crate::pending::PendingSet;
use crate::rtree::RTree;
use crate::vptree::VpTree;

/// Which range-search structure each class uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// Pick the paper's default per distance: trie for the mutation
    /// distance, R-tree for the linear distance.
    #[default]
    Default,
    /// Force the trie (mutation distance only).
    Trie,
    /// Force the R-tree (linear distance only).
    RTree,
    /// Force the VP-tree (either distance; requires the triangle
    /// inequality, which both unit-style mutation matrices and the
    /// linear distance satisfy).
    VpTree,
}

/// The superimposed distance an index is built for.
#[derive(Clone, Debug)]
pub enum IndexDistance {
    /// Categorical mutation distance (label vectors).
    Mutation(MutationDistance),
    /// Linear mutation distance (weight vectors).
    Linear(LinearDistance),
}

impl IndexDistance {
    /// Whether this is the categorical mutation distance.
    pub fn is_mutation(&self) -> bool {
        matches!(self, IndexDistance::Mutation(_))
    }

    /// Distance between two class-canonical vectors of the same class
    /// (`edge_count` = number of edge slots, which lead the layout).
    pub fn vector_cost(&self, edge_count: usize, a: &FragmentVector, b: &FragmentVector) -> f64 {
        match (self, a, b) {
            (IndexDistance::Mutation(md), FragmentVector::Labels(x), FragmentVector::Labels(y)) => {
                md.label_vector_cost(edge_count, x, y)
            }
            (IndexDistance::Linear(ld), FragmentVector::Weights(x), FragmentVector::Weights(y)) => {
                ld.weight_vector_cost(edge_count, x, y)
            }
            _ => panic!("fragment vector kind does not match the index distance"),
        }
    }

    /// Collapses slots that can never contribute cost (a zero score
    /// matrix or a zero scale) to a single canonical value. Distances
    /// are unchanged, but equivalent vectors become identical — under
    /// the paper's edge-only distance this shrinks per-class entry
    /// counts by an order of magnitude and is applied to both stored and
    /// query vectors.
    pub fn normalize(&self, edge_count: usize, vector: &mut FragmentVector) {
        match (self, vector) {
            (IndexDistance::Mutation(_), FragmentVector::Labels(v)) => {
                self.normalize_labels(edge_count, v);
            }
            (IndexDistance::Linear(_), FragmentVector::Weights(v)) => {
                self.normalize_weights(edge_count, v);
            }
            _ => panic!("fragment vector kind does not match the index distance"),
        }
    }

    /// Slice form of [`IndexDistance::normalize`] for label vectors
    /// (arena-backed fragments normalize in place).
    ///
    /// # Panics
    /// Panics on a linear-distance index.
    pub fn normalize_labels(&self, edge_count: usize, v: &mut [Label]) {
        let IndexDistance::Mutation(md) = self else {
            panic!("fragment vector kind does not match the index distance")
        };
        let cut = edge_count.min(v.len());
        if md.edge_scores().max_cost() == 0.0 {
            v[..cut].fill(Label::ERASED);
        }
        if md.vertex_scores().max_cost() == 0.0 {
            v[cut..].fill(Label::ERASED);
        }
    }

    /// Slice form of [`IndexDistance::normalize`] for weight vectors.
    ///
    /// # Panics
    /// Panics on a mutation-distance index.
    pub fn normalize_weights(&self, edge_count: usize, v: &mut [f64]) {
        let IndexDistance::Linear(ld) = self else {
            panic!("fragment vector kind does not match the index distance")
        };
        let cut = edge_count.min(v.len());
        if ld.edge_scale() == 0.0 {
            v[..cut].fill(0.0);
        }
        if ld.vertex_scale() == 0.0 {
            v[cut..].fill(0.0);
        }
    }
}

/// Build-time options.
#[derive(Clone, Debug)]
pub struct IndexConfig {
    /// Backend selection.
    pub backend: Backend,
    /// Cap on embeddings enumerated per `(feature, graph)` pair.
    /// `usize::MAX` (default) guarantees exact range-query minima;
    /// smaller values trade soundness of the lower bound for build time
    /// and are only meant for ablations.
    pub max_embeddings_per_fragment: usize,
    /// Number of build threads (0 = all available cores).
    pub threads: usize,
    /// Pending-buffer merge threshold for
    /// [`FragmentIndex::insert_graph_pending`]: once a class buffers
    /// this many unmerged entries it is merged (re-frozen)
    /// automatically. `0` disables automatic merging — pending entries
    /// then accumulate until an explicit [`FragmentIndex::compact`].
    pub merge_threshold: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            backend: Backend::Default,
            max_embeddings_per_fragment: usize::MAX,
            threads: 0,
            merge_threshold: 64,
        }
    }
}

/// Reusable state for [`FragmentIndex::range_query_normalized_into`]:
/// a generation-stamped dense per-graph minimum, so repeated range
/// queries neither hash nor allocate. One scratch serves any number of
/// sequential queries against indexes of any size (it grows to the
/// largest database seen).
#[derive(Clone, Debug, Default)]
pub struct RangeScratch {
    /// Which generation last wrote each graph's slot.
    stamp: Vec<u64>,
    /// Minimum distance seen this generation (valid iff stamp matches).
    best: Vec<f64>,
    /// Graphs touched this generation — the hits, in visit order.
    touched: Vec<GraphId>,
    /// Monotone query counter.
    generation: u64,
    /// Frontier buffers for the flat trie's level-by-level descent.
    frontier: TrieFrontier,
    /// Multi-probe frontier for the flat trie's batched descent.
    batch: BatchFrontier,
    /// Probe-label flattening buffer for the batched descent.
    probe_labels: Vec<Label>,
    /// Per-probe per-class-graph minimum rows of the trie paths
    /// (∞-initialized; trie postings are class-local slots).
    class_best: Vec<f64>,
}

impl RangeScratch {
    /// An empty scratch; it sizes itself on first use.
    pub fn new() -> Self {
        RangeScratch::default()
    }

    /// Opens a new generation over a universe of `n` graphs.
    fn begin(&mut self, n: usize) {
        self.generation += 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.best.resize(n, 0.0);
        }
        self.touched.clear();
    }
}

/// Per-structure tallies from a full [`FragmentIndex::validate`] pass —
/// what the `pis check` fsck prints per section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexCheckReport {
    /// Equivalence classes checked (= features).
    pub classes: usize,
    /// Classes backed by a [`FlatTrie`] arena.
    pub trie_classes: usize,
    /// Classes backed by an R-tree (pointer tree + frozen CSR arena).
    pub rtree_classes: usize,
    /// Classes backed by a VP-tree (label or weight items).
    pub vptree_classes: usize,
    /// Entries stored in frozen structures.
    pub frozen_entries: usize,
    /// Entries buffered in LSM pending sets.
    pub pending_entries: usize,
    /// R-tree classes whose frozen arena is stale (see
    /// [`FragmentIndex::rtree_stale_classes`]) — valid but serving the
    /// slower pointer path until the next freeze/compact.
    pub rtree_stale_classes: usize,
}

pub(crate) enum ClassImpl {
    Trie(FlatTrie),
    VpLabels(VpTree<Label>),
    RTree(RTree),
    VpWeights(VpTree<f64>),
}

pub(crate) struct ClassIndex {
    pub(crate) imp: ClassImpl,
    /// Sorted distinct graphs containing this structure — the gIndex
    /// posting list used by topoPrune and structure-violation pruning.
    pub(crate) graphs: Vec<GraphId>,
    /// Total stored entries, frozen *and* pending.
    pub(crate) entries: usize,
    /// Unmerged entries inserted since the last freeze (LSM side set).
    pub(crate) pending: PendingSet,
}

impl ClassIndex {
    /// A class with nothing pending — fresh builds and restored saves.
    pub(crate) fn restored(imp: ClassImpl, graphs: Vec<GraphId>, entries: usize) -> Self {
        ClassIndex { imp, graphs, entries, pending: PendingSet::default() }
    }
}

/// The PIS fragment-based index.
pub struct FragmentIndex {
    pub(crate) features: FeatureSet,
    pub(crate) distance: IndexDistance,
    pub(crate) classes: Vec<ClassIndex>,
    pub(crate) graph_count: usize,
    /// Build options, kept for incremental insertion.
    pub(crate) config: IndexConfig,
}

impl FragmentIndex {
    /// Builds the index over `db` for the given features and distance.
    pub fn build(
        db: &[LabeledGraph],
        features: FeatureSet,
        distance: IndexDistance,
        config: &IndexConfig,
    ) -> Self {
        // Validate the backend/distance pairing before spawning workers
        // so the caller sees a direct panic message.
        match (&distance, config.backend) {
            (IndexDistance::Mutation(_), Backend::RTree) => {
                panic!("the R-tree backend indexes weight vectors; use Trie or VpTree for the mutation distance")
            }
            (IndexDistance::Linear(_), Backend::Trie) => {
                panic!("the trie backend indexes label vectors; use RTree or VpTree for the linear distance")
            }
            _ => {}
        }
        // Features are independent: map them across the shared pool and
        // reassemble in feature order.
        let ids: Vec<FeatureId> = features.iter().map(|f| f.id).collect();
        let classes: Vec<ClassIndex> = ScopedPool::new(config.threads)
            .map(&ids, 2, |_, &f| build_class(db, &features, f, &distance, config));
        let index = FragmentIndex {
            features,
            distance,
            classes,
            graph_count: db.len(),
            config: config.clone(),
        };
        index.debug_validate("build");
        index
    }

    /// The feature set (hash-table keys of Figure 5).
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// The distance the index was built for.
    pub fn distance(&self) -> &IndexDistance {
        &self.distance
    }

    /// Number of indexed database graphs.
    pub fn graph_count(&self) -> usize {
        self.graph_count
    }

    /// Total `(vector, graph)` entries across all classes.
    pub fn total_entries(&self) -> usize {
        self.classes.iter().map(|c| c.entries).sum()
    }

    /// Sorted ids of graphs containing the feature's structure (the
    /// gIndex posting list).
    pub fn class_graphs(&self, feature: FeatureId) -> &[GraphId] {
        &self.classes[feature.index()].graphs
    }

    /// Incrementally indexes one more graph, returning its new id; the
    /// caller must append the same graph to its database (the facade's
    /// `PisSystem::insert_graph` keeps both in sync).
    ///
    /// R-tree classes insert in place. Trie classes merge the graph's
    /// sequences into the frozen arena with one O(class) rebuild per
    /// class ([`FlatTrie::insert_batch`]); VP-tree classes are likewise
    /// rebuilt from their items (VP-trees do not take in-place inserts
    /// without losing balance). For insert-heavy workloads, batch
    /// arrivals and rebuild the index periodically.
    pub fn insert_graph(&mut self, g: &LabeledGraph) -> GraphId {
        let gid = GraphId(self.graph_count as u32);
        self.graph_count += 1;
        for class_idx in 0..self.classes.len() {
            let feature = self.features.get(FeatureId(class_idx as u32));
            let structure = &feature.structure;
            let ecount = structure.edge_count();
            let slots = structure.vertex_count() + structure.edge_count();
            let entries = collect_graph_entries(structure, g, &self.distance, &self.config);
            if !entries.any {
                continue;
            }
            let class = &mut self.classes[class_idx];
            // `gid` exceeds every stored id, so appending keeps the
            // posting list sorted.
            class.graphs.push(gid);
            class.entries += entries.labels.len() + entries.weights.len();
            match (&mut class.imp, &self.distance) {
                (ClassImpl::Trie(trie), _) => {
                    // Trie postings are class-local slots; the graph was
                    // just appended, so its slot is the last one.
                    let local = GraphId((class.graphs.len() - 1) as u32);
                    trie.insert_batch(entries.labels.into_iter().map(|v| (v, local)).collect());
                }
                (ClassImpl::RTree(rt), IndexDistance::Linear(ld)) => {
                    for v in &entries.weights {
                        rt.insert(&scale_weights(ld, ecount, v), gid);
                    }
                    // One O(tree) re-flatten per inserted graph, the
                    // R-tree counterpart of the trie's O(class) rebuild.
                    rt.freeze();
                }
                (ClassImpl::VpLabels(_), IndexDistance::Mutation(md)) => {
                    let md = md.clone();
                    let placeholder = ClassImpl::Trie(FlatTrie::from_entries(0, Vec::new()));
                    let imp = std::mem::replace(&mut class.imp, placeholder);
                    let ClassImpl::VpLabels(vp) = imp else { unreachable!() };
                    let mut items = vp.into_items();
                    items.extend(entries.labels.into_iter().map(|v| (v, gid)));
                    class.imp = ClassImpl::VpLabels(VpTree::build(slots, items, move |a, b| {
                        md.label_vector_cost(ecount, a, b)
                    }));
                }
                (ClassImpl::VpWeights(_), IndexDistance::Linear(ld)) => {
                    let ld = *ld;
                    let placeholder = ClassImpl::Trie(FlatTrie::from_entries(0, Vec::new()));
                    let imp = std::mem::replace(&mut class.imp, placeholder);
                    let ClassImpl::VpWeights(vp) = imp else { unreachable!() };
                    let mut items = vp.into_items();
                    items.extend(entries.weights.into_iter().map(|v| (v, gid)));
                    class.imp = ClassImpl::VpWeights(VpTree::build(slots, items, move |a, b| {
                        ld.weight_vector_cost(ecount, a, b)
                    }));
                }
                _ => unreachable!("class backend always matches the index distance"),
            }
        }
        self.debug_validate("insert_graph");
        gid
    }

    /// Incrementally indexes one more graph through the per-class
    /// *pending buffers* — O(entries added) instead of one O(class)
    /// arena rebuild per touched class. Range queries scan pending
    /// entries with the same pricing kernels as the frozen structures,
    /// so answers (f64 bits included) are identical to
    /// [`FragmentIndex::insert_graph`]'s eager rebuild; once a class
    /// accumulates [`IndexConfig::merge_threshold`] pending entries it
    /// is merged and re-frozen automatically, and
    /// [`FragmentIndex::compact`] forces every merge (required before
    /// snapshotting).
    pub fn insert_graph_pending(&mut self, g: &LabeledGraph) -> GraphId {
        let gid = GraphId(self.graph_count as u32);
        self.graph_count += 1;
        let threshold = self.config.merge_threshold;
        for class_idx in 0..self.classes.len() {
            let feature = self.features.get(FeatureId(class_idx as u32));
            let structure = &feature.structure;
            let ecount = structure.edge_count();
            let entries = collect_graph_entries(structure, g, &self.distance, &self.config);
            if !entries.any {
                continue;
            }
            let class = &mut self.classes[class_idx];
            // `gid` exceeds every stored id, so appending keeps the
            // posting list sorted.
            class.graphs.push(gid);
            class.entries += entries.labels.len() + entries.weights.len();
            match (&class.imp, &self.distance) {
                (ClassImpl::Trie(_), _) => {
                    // Trie postings are class-local slots; the graph was
                    // just appended, so its slot is the last one.
                    let local = GraphId((class.graphs.len() - 1) as u32);
                    class.pending.labels.extend(entries.labels.into_iter().map(|v| (v, local)));
                }
                (ClassImpl::RTree(_), IndexDistance::Linear(ld)) => {
                    // Stored R-tree points are scale-transformed so the
                    // weighted L1 becomes a plain L1; pending points get
                    // the same transform and the pending scan prices
                    // with the same plain L1.
                    class.pending.weights.extend(
                        entries.weights.iter().map(|v| (scale_weights(ld, ecount, v), gid)),
                    );
                }
                (ClassImpl::VpLabels(_), _) => {
                    class.pending.labels.extend(entries.labels.into_iter().map(|v| (v, gid)));
                }
                (ClassImpl::VpWeights(_), _) => {
                    class.pending.weights.extend(entries.weights.into_iter().map(|v| (v, gid)));
                }
                _ => unreachable!("class backend always matches the index distance"),
            }
            if threshold > 0 && class.pending.len() >= threshold {
                self.merge_class(class_idx);
            }
        }
        self.debug_validate("insert_graph_pending");
        gid
    }

    /// Merges class `ci`'s pending entries into its frozen structure
    /// (one batch rebuild), leaving the pending buffer empty.
    fn merge_class(&mut self, ci: usize) {
        if self.classes[ci].pending.is_empty() {
            return;
        }
        let feature = self.features.get(FeatureId(ci as u32));
        let structure = &feature.structure;
        let ecount = structure.edge_count();
        let slots = structure.vertex_count() + structure.edge_count();
        let class = &mut self.classes[ci];
        let pending = std::mem::take(&mut class.pending);
        match (&mut class.imp, &self.distance) {
            (ClassImpl::Trie(trie), _) => trie.insert_batch(pending.labels),
            (ClassImpl::RTree(rt), _) => {
                // Pending points were scale-transformed at insert time.
                for (v, gid) in &pending.weights {
                    rt.insert(v, *gid);
                }
                rt.freeze();
            }
            (ClassImpl::VpLabels(_), IndexDistance::Mutation(md)) => {
                let md = md.clone();
                let placeholder = ClassImpl::Trie(FlatTrie::from_entries(0, Vec::new()));
                let imp = std::mem::replace(&mut class.imp, placeholder);
                let ClassImpl::VpLabels(vp) = imp else { unreachable!() };
                let mut items = vp.into_items();
                items.extend(pending.labels);
                class.imp = ClassImpl::VpLabels(VpTree::build(slots, items, move |a, b| {
                    md.label_vector_cost(ecount, a, b)
                }));
            }
            (ClassImpl::VpWeights(_), IndexDistance::Linear(ld)) => {
                let ld = *ld;
                let placeholder = ClassImpl::Trie(FlatTrie::from_entries(0, Vec::new()));
                let imp = std::mem::replace(&mut class.imp, placeholder);
                let ClassImpl::VpWeights(vp) = imp else { unreachable!() };
                let mut items = vp.into_items();
                items.extend(pending.weights);
                class.imp = ClassImpl::VpWeights(VpTree::build(slots, items, move |a, b| {
                    ld.weight_vector_cost(ecount, a, b)
                }));
            }
            _ => unreachable!("class backend always matches the index distance"),
        }
    }

    /// Merges every class's pending buffer into its frozen structure
    /// and re-freezes any stale R-tree. Query answers are unchanged;
    /// compaction only restores the frozen-arena fast paths (and is the
    /// required prelude to snapshotting).
    pub fn compact(&mut self) {
        for ci in 0..self.classes.len() {
            self.merge_class(ci);
        }
        for class in &mut self.classes {
            if let ClassImpl::RTree(rt) = &mut class.imp {
                if !rt.is_frozen() {
                    rt.freeze();
                }
            }
        }
        self.debug_validate("compact");
    }

    /// Total unmerged pending entries across all classes.
    pub fn pending_entries(&self) -> usize {
        self.classes.iter().map(|c| c.pending.len()).sum()
    }

    /// Number of R-tree classes whose frozen arena is stale (in-place
    /// inserts since the last freeze push queries onto the slower
    /// pointer reference path until the next freeze/compact).
    pub fn rtree_stale_classes(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| matches!(&c.imp, ClassImpl::RTree(rt) if !rt.is_frozen()))
            .count()
    }

    /// A zero-copy class-shard view: shard `shard` of `shards` owns
    /// every feature class with `feature.index() % shards == shard`.
    /// Views borrow the frozen arenas immutably — carving N of them
    /// costs nothing and they answer range queries concurrently.
    ///
    /// # Panics
    /// Panics if `shard >= shards` or `shards == 0`.
    pub fn shard_view(&self, shard: usize, shards: usize) -> ShardView<'_> {
        assert!(shards > 0, "a shard view needs at least one shard");
        assert!(shard < shards, "shard {shard} out of range for {shards} shards");
        ShardView { index: self, shard, shards }
    }

    /// Deep structural validation of the whole index: every invariant
    /// the query paths rely on, checked bottom-up, with the first
    /// violation returned as a description — never a panic. An index
    /// produced by any build/insert/merge/load sequence always passes;
    /// debug builds re-run this after every mutating operation, and the
    /// offline `pis check` fsck runs it on loaded stores.
    ///
    /// Per class: the posting list is strictly ascending and bounded by
    /// the database size, the backend matches the distance, the frozen
    /// structure revalidates ([`FlatTrie::validate`] /
    /// [`RTree::validate`]) with the right shape, pending entries have
    /// the class's slot count and in-range ids of the backend's id
    /// convention, the entry count equals frozen + pending, and every
    /// posting-list graph is referenced by at least one entry.
    pub fn validate(&self) -> Result<IndexCheckReport, String> {
        let mut report = IndexCheckReport { classes: self.classes.len(), ..Default::default() };
        if self.classes.len() != self.features.len() {
            return Err(format!(
                "{} classes for {} features",
                self.classes.len(),
                self.features.len()
            ));
        }
        for (ci, class) in self.classes.iter().enumerate() {
            let feature = self.features.get(FeatureId(ci as u32));
            let slots = feature.structure.vertex_count() + feature.structure.edge_count();
            let ctx = |m: String| format!("class {ci}: {m}");
            if class.graphs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(ctx("posting list not strictly ascending".to_string()));
            }
            if class.graphs.last().is_some_and(|g| g.index() >= self.graph_count) {
                return Err(ctx(format!(
                    "posting list names a graph past the {} stored",
                    self.graph_count
                )));
            }
            // Which posting-list graphs are backed by at least one
            // entry (frozen or pending). Trie entries use class-local
            // slots; every other backend stores global graph ids.
            let mut seen = vec![false; class.graphs.len()];
            let see_global = |g: GraphId, seen: &mut [bool]| -> Result<(), String> {
                match class.graphs.binary_search(&g) {
                    Ok(i) => {
                        seen[i] = true;
                        Ok(())
                    }
                    Err(_) => {
                        Err(ctx(format!("entry names graph {g} absent from the posting list")))
                    }
                }
            };
            let frozen_len = match (&class.imp, &self.distance) {
                (ClassImpl::Trie(trie), IndexDistance::Mutation(_)) => {
                    if trie.depth() != slots {
                        return Err(ctx(format!(
                            "trie depth {} != {slots} class slots",
                            trie.depth()
                        )));
                    }
                    trie.validate().map_err(|m| ctx(format!("trie: {m}")))?;
                    let mut bad = None;
                    trie.for_each_entry(|_, slot| {
                        if slot.index() >= seen.len() {
                            bad = Some(slot);
                        } else {
                            seen[slot.index()] = true;
                        }
                    });
                    if let Some(slot) = bad {
                        return Err(ctx(format!(
                            "trie posting slot {slot} exceeds the {}-graph class",
                            seen.len()
                        )));
                    }
                    class.pending.validate(slots, seen.len(), 0).map_err(&ctx)?;
                    for (_, slot) in &class.pending.labels {
                        seen[slot.index()] = true;
                    }
                    if !class.pending.weights.is_empty() {
                        return Err(ctx("trie class buffers weight entries".to_string()));
                    }
                    report.trie_classes += 1;
                    trie.len()
                }
                (ClassImpl::VpLabels(vp), IndexDistance::Mutation(_)) => {
                    for (seq, gid) in vp.items() {
                        if seq.len() != slots {
                            return Err(ctx(format!("vp item has {} of {slots} slots", seq.len())));
                        }
                        see_global(gid, &mut seen)?;
                    }
                    class.pending.validate(slots, self.graph_count, 0).map_err(&ctx)?;
                    for &(_, gid) in &class.pending.labels {
                        see_global(gid, &mut seen)?;
                    }
                    if !class.pending.weights.is_empty() {
                        return Err(ctx("vp-label class buffers weight entries".to_string()));
                    }
                    report.vptree_classes += 1;
                    vp.len()
                }
                (ClassImpl::RTree(rt), IndexDistance::Linear(_)) => {
                    if rt.dim() != slots {
                        return Err(ctx(format!("r-tree dim {} != {slots} class slots", rt.dim())));
                    }
                    rt.validate().map_err(|m| ctx(format!("r-tree: {m}")))?;
                    let mut gids = Vec::with_capacity(rt.len());
                    rt.for_each_entry(|_, gid| gids.push(gid));
                    for gid in gids {
                        see_global(gid, &mut seen)?;
                    }
                    class.pending.validate(slots, 0, self.graph_count).map_err(&ctx)?;
                    for &(_, gid) in &class.pending.weights {
                        see_global(gid, &mut seen)?;
                    }
                    if !class.pending.labels.is_empty() {
                        return Err(ctx("r-tree class buffers label entries".to_string()));
                    }
                    report.rtree_classes += 1;
                    if !rt.is_frozen() {
                        report.rtree_stale_classes += 1;
                    }
                    rt.len()
                }
                (ClassImpl::VpWeights(vp), IndexDistance::Linear(_)) => {
                    for (v, gid) in vp.items() {
                        if v.len() != slots {
                            return Err(ctx(format!("vp item has {} of {slots} slots", v.len())));
                        }
                        if v.iter().any(|x| !x.is_finite()) {
                            return Err(ctx("vp item holds a non-finite weight".to_string()));
                        }
                        see_global(gid, &mut seen)?;
                    }
                    class.pending.validate(slots, 0, self.graph_count).map_err(&ctx)?;
                    for &(_, gid) in &class.pending.weights {
                        see_global(gid, &mut seen)?;
                    }
                    if !class.pending.labels.is_empty() {
                        return Err(ctx("vp-weight class buffers label entries".to_string()));
                    }
                    report.vptree_classes += 1;
                    vp.len()
                }
                _ => {
                    return Err(ctx("class backend does not match the index distance".to_string()))
                }
            };
            if class.entries != frozen_len + class.pending.len() {
                return Err(ctx(format!(
                    "claims {} entries but holds {frozen_len} frozen + {} pending",
                    class.entries,
                    class.pending.len()
                )));
            }
            if let Some(i) = seen.iter().position(|&s| !s) {
                return Err(ctx(format!(
                    "posting list names graph {} but no entry references it",
                    class.graphs[i]
                )));
            }
            report.frozen_entries += frozen_len;
            report.pending_entries += class.pending.len();
        }
        Ok(report)
    }

    /// Debug-build hook: re-validates the whole index after a mutating
    /// operation and panics with the violation when an invariant broke.
    /// Compiled to nothing in release builds — production relies on the
    /// same checks through the offline `pis check` fsck instead.
    pub(crate) fn debug_validate(&self, context: &str) {
        if cfg!(debug_assertions) {
            if let Err(m) = self.validate() {
                panic!("index invariant violated after {context}: {m}");
            }
        }
    }

    /// Answers the range query of Eq. (3): for every graph `G` holding a
    /// fragment `g'` of class `feature` with `d(g, g') ≤ σ`, returns
    /// `(G, d(g, G))` where the distance is minimized over all such
    /// fragments. Sorted by graph id.
    pub fn range_query(
        &self,
        feature: FeatureId,
        vector: &FragmentVector,
        sigma: f64,
    ) -> Vec<(GraphId, f64)> {
        // Stored vectors are normalized; normalize the probe so
        // externally-built vectors compare correctly.
        let ecount = self.features.get(feature).edge_count();
        let mut normalized = vector.clone();
        self.distance.normalize(ecount, &mut normalized);
        let mut scratch = RangeScratch::default();
        let mut out = Vec::new();
        self.range_query_normalized_into(
            feature,
            normalized.as_view(),
            sigma,
            &mut scratch,
            &mut out,
        );
        out
    }

    /// [`FragmentIndex::range_query`] without the per-call allocations:
    /// the probe is a borrowed [`FragmentVectorRef`] (arena-backed
    /// fragments never materialize vectors), the per-graph minimum is
    /// kept in `scratch`'s dense accumulator (no hash map) and hits are
    /// appended to `out` (cleared first), sorted by graph id.
    ///
    /// The probe `vector` must already be normalized for this index —
    /// true of every vector produced by
    /// [`FragmentIndex::enumerate_query_fragments`]. Normalization is
    /// idempotent, so a pre-normalized probe through [`Self::range_query`]
    /// and this method return identical hits.
    pub fn range_query_normalized_into(
        &self,
        feature: FeatureId,
        vector: FragmentVectorRef<'_>,
        sigma: f64,
        scratch: &mut RangeScratch,
        out: &mut Vec<(GraphId, f64)>,
    ) {
        let completed = self.range_query_normalized_budgeted_into(
            feature,
            vector,
            sigma,
            scratch,
            BudgetState::unlimited(),
            out,
        );
        debug_assert!(completed, "the unlimited budget never interrupts a range query");
    }

    /// [`FragmentIndex::range_query_normalized_into`] under a budget.
    /// Returns `false` — with `out` cleared — when the budget trips
    /// before the query finishes: a partial hit list is unusable (its
    /// minima may be wrong and its absences mean nothing), so the
    /// caller must treat the whole probe as unanswered. Trie classes
    /// checkpoint per descent level; the other backends consult one
    /// coarse checkpoint up front.
    pub fn range_query_normalized_budgeted_into(
        &self,
        feature: FeatureId,
        vector: FragmentVectorRef<'_>,
        sigma: f64,
        scratch: &mut RangeScratch,
        budget: &BudgetState,
        out: &mut Vec<(GraphId, f64)>,
    ) -> bool {
        let class = &self.classes[feature.index()];
        let ecount = self.features.get(feature).edge_count();
        if let (
            ClassImpl::Trie(trie),
            FragmentVectorRef::Labels(labels),
            IndexDistance::Mutation(md),
        ) = (&class.imp, vector, &self.distance)
        {
            // Frontier descent with batched per-level costs: every
            // distinct stored label of a level is priced once. Trie
            // postings are *class-local* slots, so the per-graph
            // minimum accumulates in a compact ∞-initialized row (one
            // slot per class graph, no generation stamps) and the
            // readout sweeps the row in slot order — class graphs are
            // sorted ascending, so the hits come out id-sorted without
            // a per-probe sort.
            let c = class.graphs.len();
            let RangeScratch { frontier, class_best, .. } = scratch;
            class_best.clear();
            class_best.resize(c, f64::INFINITY);
            let completed = trie.range_query_budgeted(
                labels,
                sigma,
                |pos, q, stored, costs| md.position_costs_into(pos, ecount, q, stored, costs),
                frontier,
                budget,
                |g, d| {
                    let b = &mut class_best[g.index()];
                    if d < *b {
                        *b = d;
                    }
                },
            );
            if !completed {
                out.clear();
                return false;
            }
            if !class.pending.labels.is_empty() {
                // Pending entries fold into the same per-slot minimum
                // row before readout, priced with the exact positional
                // kernel of the descent — identical bits to post-merge.
                if !budget
                    .checkpoint(CheckpointSite::RangeDescent, class.pending.labels.len() as u64)
                {
                    out.clear();
                    return false;
                }
                class.pending.scan_labels_positional(
                    sigma,
                    |pos, stored| md.position_cost(pos, ecount, labels[pos], stored),
                    |g, d| {
                        let b = &mut class_best[g.index()];
                        if d < *b {
                            *b = d;
                        }
                    },
                );
            }
            emit_class_hits(&class.graphs, class_best, out);
            return true;
        }
        if !budget.checkpoint(CheckpointSite::RangeDescent, 1) {
            out.clear();
            return false;
        }
        scratch.begin(self.graph_count);
        let RangeScratch { stamp, best, touched, generation, .. } = scratch;
        let generation = *generation;
        let mut visit = |g: GraphId, d: f64| {
            let i = g.index();
            if stamp[i] != generation {
                stamp[i] = generation;
                best[i] = d;
                touched.push(g);
            } else if d < best[i] {
                best[i] = d;
            }
        };
        // Each backend arm also scans the class's pending buffer with
        // the same cost function the frozen structure prices with, so a
        // pending entry and its post-merge self emit identical bits.
        let pending_units = class.pending.len() as u64;
        let charge_pending =
            || pending_units == 0 || budget.checkpoint(CheckpointSite::RangeDescent, pending_units);
        match (&class.imp, vector, &self.distance) {
            (
                ClassImpl::VpLabels(vp),
                FragmentVectorRef::Labels(labels),
                IndexDistance::Mutation(md),
            ) => {
                vp.range_query(
                    labels,
                    sigma,
                    |a: &[Label], b: &[Label]| md.label_vector_cost(ecount, a, b),
                    &mut visit,
                );
                if !charge_pending() {
                    out.clear();
                    return false;
                }
                class.pending.scan_labels(
                    sigma,
                    |stored| md.label_vector_cost(ecount, labels, stored),
                    &mut visit,
                );
            }
            (ClassImpl::RTree(rt), FragmentVectorRef::Weights(ws), IndexDistance::Linear(ld)) => {
                // The tree stores *scale-transformed* coordinates (see
                // `scale_weights`), turning the weighted L1 of the
                // linear distance into a plain L1 — so the query vector
                // gets the same transform and distances come out exact.
                let scaled = scale_weights(ld, ecount, ws);
                rt.range_query(&scaled, sigma, &mut visit);
                if !charge_pending() {
                    out.clear();
                    return false;
                }
                // Pending points were scale-transformed at insert time.
                class.pending.scan_weights(
                    sigma,
                    |stored| crate::rtree::l1(&scaled, stored),
                    &mut visit,
                );
            }
            (
                ClassImpl::VpWeights(vp),
                FragmentVectorRef::Weights(ws),
                IndexDistance::Linear(ld),
            ) => {
                let ld = *ld;
                vp.range_query(
                    ws,
                    sigma,
                    move |a: &[f64], b: &[f64]| ld.weight_vector_cost(ecount, a, b),
                    &mut visit,
                );
                if !charge_pending() {
                    out.clear();
                    return false;
                }
                class.pending.scan_weights(
                    sigma,
                    |stored| ld.weight_vector_cost(ecount, ws, stored),
                    &mut visit,
                );
            }
            _ => panic!("fragment vector kind does not match the class backend"),
        }
        out.clear();
        scratch.touched.sort_unstable();
        out.extend(scratch.touched.iter().map(|&g| (g, scratch.best[g.index()])));
        true
    }

    /// Batched form of [`FragmentIndex::range_query_normalized_into`]:
    /// answers `nprobes` sibling probes — distinct normalized vectors of
    /// the *same* class, yielded by `probe(i)` — in one pass,
    /// writing probe `i`'s hits (sorted by graph id, minimum distance
    /// per graph) into `outs[i]`.
    ///
    /// On a trie class this runs [`FlatTrie::range_query_batch`]: each
    /// level's alphabet is priced once per distinct query label across
    /// the whole batch and the arena is descended once with per-probe
    /// cost lanes, instead of one full descent per probe. Every other
    /// backend falls back to per-probe queries. Either way `outs[i]` is
    /// identical — exact f64 distances included — to a per-probe
    /// [`FragmentIndex::range_query_normalized_into`] call.
    ///
    /// # Panics
    /// Panics if `outs.len() != nprobes` or a probe's vector kind does
    /// not match the class backend.
    pub fn range_query_batch_normalized_into<'q>(
        &self,
        feature: FeatureId,
        nprobes: usize,
        probe: impl Fn(usize) -> FragmentVectorRef<'q>,
        sigma: f64,
        scratch: &mut RangeScratch,
        outs: &mut [Vec<(GraphId, f64)>],
    ) {
        let completed = self.range_query_batch_normalized_budgeted_into(
            feature,
            nprobes,
            probe,
            sigma,
            scratch,
            BudgetState::unlimited(),
            outs,
        );
        debug_assert!(completed, "the unlimited budget never interrupts a range query");
    }

    /// [`FragmentIndex::range_query_batch_normalized_into`] under a
    /// budget. Returns `false` — with every probe's `outs[i]` cleared —
    /// when the budget trips mid-batch: emissions interleave across
    /// probes during the shared descent, so a trip invalidates the
    /// whole sibling group, not just one probe.
    #[allow(clippy::too_many_arguments)]
    pub fn range_query_batch_normalized_budgeted_into<'q>(
        &self,
        feature: FeatureId,
        nprobes: usize,
        probe: impl Fn(usize) -> FragmentVectorRef<'q>,
        sigma: f64,
        scratch: &mut RangeScratch,
        budget: &BudgetState,
        outs: &mut [Vec<(GraphId, f64)>],
    ) -> bool {
        assert_eq!(outs.len(), nprobes, "one output buffer per probe");
        let class = &self.classes[feature.index()];
        let ecount = self.features.get(feature).edge_count();
        if let (ClassImpl::Trie(trie), IndexDistance::Mutation(md)) = (&class.imp, &self.distance) {
            scratch.probe_labels.clear();
            for i in 0..nprobes {
                scratch.probe_labels.extend_from_slice(probe(i).labels());
            }
            // One ∞-initialized per-graph minimum row per probe (trie
            // postings are class-local slots); emitted subtree ranges
            // fold straight into their probe's row during the descent.
            let c = class.graphs.len();
            let RangeScratch { batch, probe_labels, class_best, .. } = scratch;
            class_best.clear();
            class_best.resize(nprobes * c, f64::INFINITY);
            let completed = trie.range_query_batch_budgeted(
                nprobes,
                probe_labels,
                sigma,
                |pos, qs, stored, out| md.position_costs_into_multi(pos, ecount, qs, stored, out),
                |pos| md.position_is_zero(pos, ecount),
                batch,
                budget,
                |p, acc, slots| {
                    let row = &mut class_best[p as usize * c..(p as usize + 1) * c];
                    for &s in slots {
                        let b = &mut row[s.index()];
                        if acc < *b {
                            *b = acc;
                        }
                    }
                },
            );
            if !completed {
                for out in outs.iter_mut() {
                    out.clear();
                }
                return false;
            }
            if !class.pending.labels.is_empty() {
                // Same per-probe pending scan as the scalar path (same
                // kernel, same fold into the minimum row), charged as
                // one checkpoint covering the whole sibling group.
                let units = (nprobes * class.pending.labels.len()) as u64;
                if !budget.checkpoint(CheckpointSite::RangeDescent, units) {
                    for out in outs.iter_mut() {
                        out.clear();
                    }
                    return false;
                }
                for p in 0..nprobes {
                    let q = probe(p).labels();
                    let row = &mut class_best[p * c..(p + 1) * c];
                    class.pending.scan_labels_positional(
                        sigma,
                        |pos, stored| md.position_cost(pos, ecount, q[pos], stored),
                        |g, d| {
                            let b = &mut row[g.index()];
                            if d < *b {
                                *b = d;
                            }
                        },
                    );
                }
            }
            for (p, out) in outs.iter_mut().enumerate() {
                emit_class_hits(&class.graphs, &class_best[p * c..(p + 1) * c], out);
            }
        } else {
            for i in 0..nprobes {
                if !self.range_query_normalized_budgeted_into(
                    feature,
                    probe(i),
                    sigma,
                    scratch,
                    budget,
                    &mut outs[i],
                ) {
                    for out in outs.iter_mut() {
                        out.clear();
                    }
                    return false;
                }
            }
        }
        true
    }

    /// Enumerates the indexed fragments of a query graph (Algorithm 2,
    /// lines 3–4), deduplicated by `(feature, vertex image, edge image)`
    /// so automorphic re-readings issue one range query each.
    ///
    /// Materializes owned [`QueryFragment`]s through a throwaway arena;
    /// hot callers hold a [`FragmentBuffer`] and use
    /// [`FragmentIndex::enumerate_query_fragments_into`] instead.
    pub fn enumerate_query_fragments(&self, query: &LabeledGraph) -> Vec<QueryFragment> {
        let mut buf = FragmentBuffer::new();
        self.enumerate_query_fragments_into(query, &mut buf);
        (0..buf.len()).map(|i| buf.to_query_fragment(i)).collect()
    }

    /// [`FragmentIndex::enumerate_query_fragments`] without the per-call
    /// allocations: fragments land in the caller's arena-backed
    /// [`FragmentBuffer`] (cleared first). The dedup key is assembled in
    /// one reusable buffer (`[feature, sorted vertices…, sorted
    /// edges…]`) and checked with a borrowed `contains` first, and key
    /// allocations are recycled across queries — so the steady state of
    /// a reused buffer allocates nothing.
    pub fn enumerate_query_fragments_into(&self, query: &LabeledGraph, buf: &mut FragmentBuffer) {
        buf.reset(self.distance.is_mutation());
        for feature in self.features.iter() {
            let ecount = feature.structure.edge_count();
            let matcher = SubgraphMatcher::new(&feature.structure, query, IsoConfig::STRUCTURE);
            matcher.for_each(|emb| {
                buf.key_buf.clear();
                buf.key_buf.push(feature.id.0);
                let vertex_slots = buf.key_buf.len();
                buf.key_buf.extend(emb.vertex_map().iter().map(|v| v.0));
                buf.key_buf[vertex_slots..].sort_unstable();
                let edge_slots = buf.key_buf.len();
                buf.key_buf.extend(
                    feature
                        .structure
                        .edge_ids()
                        .map(|e| emb.edge_image(&feature.structure, query, e).0),
                );
                buf.key_buf[edge_slots..].sort_unstable();
                if !buf.seen.contains(buf.key_buf.as_slice()) {
                    let mut key = buf.key_pool.pop().unwrap_or_default();
                    key.clear();
                    key.extend_from_slice(&buf.key_buf);
                    buf.seen.insert(key);
                    buf.features.push(feature.id);
                    buf.verts.extend(
                        buf.key_buf[vertex_slots..edge_slots]
                            .iter()
                            .map(|&v| pis_graph::VertexId(v)),
                    );
                    buf.vert_start.push(buf.verts.len() as u32);
                    let start =
                        *buf.vec_start.last().expect("reset seeds the offset table") as usize;
                    match &self.distance {
                        IndexDistance::Mutation(_) => {
                            label_vector_into(&feature.structure, query, emb, &mut buf.labels);
                            self.distance.normalize_labels(ecount, &mut buf.labels[start..]);
                            buf.vec_start.push(buf.labels.len() as u32);
                        }
                        IndexDistance::Linear(_) => {
                            weight_vector_into(&feature.structure, query, emb, &mut buf.weights);
                            self.distance.normalize_weights(ecount, &mut buf.weights[start..]);
                            buf.vec_start.push(buf.weights.len() as u32);
                        }
                    }
                }
                ControlFlow::Continue(())
            });
        }
    }
}

/// One class shard of a [`FragmentIndex`]: an immutable zero-copy view
/// over the subset of feature classes with
/// `feature.index() % shards == shard` (round-robin by class id, so
/// shard loads stay balanced without a placement table). Produced by
/// [`FragmentIndex::shard_view`]; the scatter-gather coordinator in
/// pis-core routes each probe group to the view owning its feature, and
/// the view answers with the *same* budgeted range-query kernels as the
/// whole index — a healthy scatter is byte-identical to the unsharded
/// path by construction.
#[derive(Clone, Copy)]
pub struct ShardView<'a> {
    index: &'a FragmentIndex,
    shard: usize,
    shards: usize,
}

impl<'a> ShardView<'a> {
    /// This view's shard number in `0..shards()`.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The shard count the view was carved with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether this shard owns `feature`'s class.
    pub fn owns(&self, feature: FeatureId) -> bool {
        feature.index() % self.shards == self.shard
    }

    /// [`FragmentIndex::range_query_normalized_budgeted_into`] against
    /// this shard's classes. The probe's feature must be owned by this
    /// shard (debug-asserted): routing is the coordinator's job, and a
    /// silent cross-shard answer would mask a routing bug.
    pub fn range_query_normalized_budgeted_into(
        &self,
        feature: FeatureId,
        vector: FragmentVectorRef<'_>,
        sigma: f64,
        scratch: &mut RangeScratch,
        budget: &BudgetState,
        out: &mut Vec<(GraphId, f64)>,
    ) -> bool {
        debug_assert!(self.owns(feature), "probe routed to the wrong shard");
        self.index
            .range_query_normalized_budgeted_into(feature, vector, sigma, scratch, budget, out)
    }

    /// [`FragmentIndex::range_query_batch_normalized_budgeted_into`]
    /// against this shard's classes (feature ownership debug-asserted).
    #[allow(clippy::too_many_arguments)]
    pub fn range_query_batch_normalized_budgeted_into<'q>(
        &self,
        feature: FeatureId,
        nprobes: usize,
        probe: impl Fn(usize) -> FragmentVectorRef<'q>,
        sigma: f64,
        scratch: &mut RangeScratch,
        budget: &BudgetState,
        outs: &mut [Vec<(GraphId, f64)>],
    ) -> bool {
        debug_assert!(self.owns(feature), "probe routed to the wrong shard");
        self.index.range_query_batch_normalized_budgeted_into(
            feature, nprobes, probe, sigma, scratch, budget, outs,
        )
    }
}

/// Reads an ∞-initialized per-class minimum row back into a hit list:
/// class graphs are sorted ascending, so sweeping slots in order yields
/// id-sorted hits without a per-probe sort. Shared by the scalar and
/// batched trie paths so their outputs stay structurally identical.
fn emit_class_hits(graphs: &[GraphId], row: &[f64], out: &mut Vec<(GraphId, f64)>) {
    out.clear();
    out.extend(graphs.iter().zip(row).filter(|(_, b)| b.is_finite()).map(|(&g, &b)| (g, b)));
}

/// Rewrites trie entries' graph ids as class-local slots — each id's
/// position in the class's sorted posting list. Sorting by local slot
/// equals sorting by graph id, so the trie's layout (and its persisted
/// byte stream after translating back) is unchanged.
fn to_local_entries(
    entries: Vec<(Vec<Label>, GraphId)>,
    graphs: &[GraphId],
) -> Vec<(Vec<Label>, GraphId)> {
    entries
        .into_iter()
        .map(|(v, g)| {
            let slot =
                graphs.binary_search(&g).expect("every trie entry's graph is in the posting list");
            (v, GraphId(slot as u32))
        })
        .collect()
}

/// Applies the linear distance's per-segment scales to a raw weight
/// vector (edge slots first), so `|a' − b'|₁ = LD(a, b)` for
/// transformed vectors `a'`, `b'`. Lets the R-tree answer scaled
/// queries with plain L1 geometry.
fn scale_weights(ld: &LinearDistance, edge_count: usize, v: &[f64]) -> Vec<f64> {
    v.iter()
        .enumerate()
        .map(|(i, &w)| if i < edge_count { w * ld.edge_scale() } else { w * ld.vertex_scale() })
        .collect()
}

/// All deduplicated, normalized vectors of one graph for one feature
/// structure (label or weight vectors depending on the distance).
struct GraphEntries {
    labels: Vec<Vec<Label>>,
    weights: Vec<Vec<f64>>,
    /// Whether the graph contains the structure at all.
    any: bool,
}

/// Enumerates a graph's fragments of one feature and reads out their
/// (normalized, deduplicated) vectors — the unit of work shared by bulk
/// build and incremental insertion.
fn collect_graph_entries(
    structure: &LabeledGraph,
    g: &LabeledGraph,
    distance: &IndexDistance,
    config: &IndexConfig,
) -> GraphEntries {
    let mut out = GraphEntries { labels: Vec::new(), weights: Vec::new(), any: false };
    if g.vertex_count() < structure.vertex_count() || g.edge_count() < structure.edge_count() {
        return out;
    }
    // Zero-cost segments collapse to a canonical value (see
    // `IndexDistance::normalize`), merging equivalent entries up front.
    let (erase_edge_slots, erase_vertex_slots) = match distance {
        IndexDistance::Mutation(md) => {
            (md.edge_scores().max_cost() == 0.0, md.vertex_scores().max_cost() == 0.0)
        }
        IndexDistance::Linear(ld) => (ld.edge_scale() == 0.0, ld.vertex_scale() == 0.0),
    };
    let ecount_slots = structure.edge_count();
    let matcher = SubgraphMatcher::new(structure, g, IsoConfig::STRUCTURE);
    let mut local_labels: FxHashSet<Vec<Label>> = FxHashSet::default();
    let mut local_weights: FxHashSet<Vec<u64>> = FxHashSet::default();
    let mut remaining = config.max_embeddings_per_fragment;
    matcher.for_each(|emb| {
        out.any = true;
        match distance {
            IndexDistance::Mutation(_) => {
                let mut v = label_vector(structure, g, emb);
                if erase_edge_slots {
                    v[..ecount_slots].fill(Label::ERASED);
                }
                if erase_vertex_slots {
                    v[ecount_slots..].fill(Label::ERASED);
                }
                if local_labels.insert(v.clone()) {
                    out.labels.push(v);
                }
            }
            IndexDistance::Linear(_) => {
                let mut v = weight_vector(structure, g, emb);
                if erase_edge_slots {
                    v[..ecount_slots].fill(0.0);
                }
                if erase_vertex_slots {
                    v[ecount_slots..].fill(0.0);
                }
                let key: Vec<u64> = v.iter().map(|w| w.to_bits()).collect();
                if local_weights.insert(key) {
                    out.weights.push(v);
                }
            }
        }
        remaining -= 1;
        if remaining == 0 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    out
}

/// Builds one class: enumerate, dedup, insert.
fn build_class(
    db: &[LabeledGraph],
    features: &FeatureSet,
    feature: FeatureId,
    distance: &IndexDistance,
    config: &IndexConfig,
) -> ClassIndex {
    let f = features.get(feature);
    let structure = &f.structure;
    let slots = structure.vertex_count() + structure.edge_count();
    let mut label_entries: Vec<(Vec<Label>, GraphId)> = Vec::new();
    let mut weight_entries: Vec<(Vec<f64>, GraphId)> = Vec::new();
    let mut graphs: Vec<GraphId> = Vec::new();

    for (gid, g) in db.iter().enumerate() {
        let gid = GraphId(gid as u32);
        let entries = collect_graph_entries(structure, g, distance, config);
        label_entries.extend(entries.labels.into_iter().map(|v| (v, gid)));
        weight_entries.extend(entries.weights.into_iter().map(|v| (v, gid)));
        if entries.any {
            graphs.push(gid);
        }
    }

    let entries = label_entries.len() + weight_entries.len();
    let ecount = structure.edge_count();
    let imp = match (distance, config.backend) {
        (IndexDistance::Mutation(_), Backend::Default | Backend::Trie) => {
            // One-shot freeze into the level-major arena — the build
            // path never constructs pointer nodes at all. Postings are
            // stored as *class-local* slots into the sorted `graphs`
            // posting list, so range readouts sweep a compact per-class
            // row (see `range_query_normalized_into`).
            ClassImpl::Trie(FlatTrie::from_entries(slots, to_local_entries(label_entries, &graphs)))
        }
        (IndexDistance::Mutation(md), Backend::VpTree) => {
            let md = md.clone();
            ClassImpl::VpLabels(VpTree::build(slots, label_entries, move |a, b| {
                md.label_vector_cost(ecount, a, b)
            }))
        }
        (IndexDistance::Linear(ld), Backend::Default | Backend::RTree) => {
            let mut rt = RTree::new(slots);
            for (v, gid) in &weight_entries {
                rt.insert(&scale_weights(ld, ecount, v), *gid);
            }
            // Flatten the built pointer tree into the CSR/SoA query
            // arena (queries descend contiguous bounds and point
            // blocks; the pointer path stays as builder/reference).
            rt.freeze();
            ClassImpl::RTree(rt)
        }
        (IndexDistance::Linear(ld), Backend::VpTree) => {
            let ld = *ld;
            ClassImpl::VpWeights(VpTree::build(slots, weight_entries, move |a, b| {
                ld.weight_vector_cost(ecount, a, b)
            }))
        }
        (IndexDistance::Mutation(_), Backend::RTree) => {
            panic!("the R-tree backend indexes weight vectors; use Trie or VpTree for the mutation distance")
        }
        (IndexDistance::Linear(_), Backend::Trie) => {
            panic!("the trie backend indexes label vectors; use RTree or VpTree for the linear distance")
        }
    };
    ClassIndex::restored(imp, graphs, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_distance::oracle::min_superimposed_distance_brute;
    use pis_distance::SuperimposedDistance;
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::{EdgeAttr, GraphBuilder, VertexAttr};
    use pis_mining::exhaustive::exhaustive_features;

    fn cycle_with_edge_labels(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    fn small_db() -> Vec<LabeledGraph> {
        vec![
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 1]),
            cycle_with_edge_labels(&[1, 1, 1, 1, 1, 2]),
            cycle_with_edge_labels(&[2, 2, 2, 2, 2, 2]),
            path_graph(5, Label(0), Label(1)),
        ]
    }

    fn build_md(db: &[LabeledGraph], max_edges: usize, backend: Backend) -> FragmentIndex {
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, max_edges);
        FragmentIndex::build(
            db,
            features,
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig { backend, ..IndexConfig::default() },
        )
    }

    #[test]
    fn posting_lists_match_structural_containment() {
        let db = small_db();
        let index = build_md(&db, 3, Backend::Default);
        for f in index.features().iter() {
            let expected: Vec<GraphId> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| pis_graph::iso::is_subgraph(&f.structure, g, IsoConfig::STRUCTURE))
                .map(|(i, _)| GraphId(i as u32))
                .collect();
            assert_eq!(index.class_graphs(f.id), expected.as_slice(), "feature {}", f.id);
        }
    }

    #[test]
    fn range_query_matches_brute_force_min_distance() {
        // The index-computed d(g, G) must equal the brute-force minimum
        // superimposed distance for every fragment/graph pair it reports.
        let db = small_db();
        let index = build_md(&db, 4, Backend::Default);
        let md = MutationDistance::edge_hamming();
        let query = cycle_with_edge_labels(&[1, 1, 1, 2, 1, 1]);
        for qf in index.enumerate_query_fragments(&query) {
            let feature = index.features().get(qf.feature);
            // Reconstruct the query fragment as a labeled graph to feed
            // the oracle: its vector layout is exactly the feature's
            // canonical layout.
            let mut b = GraphBuilder::new();
            let labels = qf.vector.labels();
            let ecount = feature.edge_count();
            for (i, _) in feature.structure.vertex_ids().enumerate() {
                b.add_vertex(VertexAttr::labeled(labels[ecount + i]));
            }
            for (j, e) in feature.structure.edges().iter().enumerate() {
                b.add_edge(e.source, e.target, EdgeAttr::labeled(labels[j])).unwrap();
            }
            let fragment_graph = b.build();
            for sigma in [0.0, 1.0, 2.0, 6.0] {
                let hits = index.range_query(qf.feature, &qf.vector, sigma);
                for (gid, d) in &hits {
                    let brute =
                        min_superimposed_distance_brute(&fragment_graph, &db[gid.index()], &md)
                            .expect("reported graphs contain the structure");
                    assert!(
                        (d - brute).abs() < 1e-9,
                        "index distance {d} != brute {brute} for {gid} sigma {sigma}"
                    );
                    assert!(*d <= sigma);
                }
                // Completeness: every graph within sigma is reported.
                for (gi, g) in db.iter().enumerate() {
                    if let Some(brute) = min_superimposed_distance_brute(&fragment_graph, g, &md) {
                        if brute <= sigma {
                            assert!(
                                hits.iter().any(|(hg, _)| hg.index() == gi),
                                "graph {gi} within {sigma} missing from range query"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trie_and_vptree_backends_agree() {
        let db = small_db();
        let trie_index = build_md(&db, 3, Backend::Trie);
        let vp_index = build_md(&db, 3, Backend::VpTree);
        let query = cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]);
        for qf in trie_index.enumerate_query_fragments(&query) {
            for sigma in [0.0, 1.0, 3.0] {
                let a = trie_index.range_query(qf.feature, &qf.vector, sigma);
                let b = vp_index.range_query(qf.feature, &qf.vector, sigma);
                assert_eq!(a.len(), b.len(), "hit counts differ at sigma={sigma}");
                for ((g1, d1), (g2, d2)) in a.iter().zip(&b) {
                    assert_eq!(g1, g2);
                    assert!((d1 - d2).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn linear_distance_rtree_and_vptree_agree() {
        // Weighted 3-cycles with distinct edge weights.
        let mk = |ws: [f64; 3]| {
            let mut b = GraphBuilder::new();
            let vs = b.add_vertices(3, VertexAttr::labeled(Label(0)));
            for (i, w) in ws.into_iter().enumerate() {
                b.add_edge(vs[i], vs[(i + 1) % 3], EdgeAttr { label: Label(0), weight: w })
                    .unwrap();
            }
            b.build()
        };
        let db = vec![mk([1.0, 1.0, 1.0]), mk([1.0, 1.5, 2.0]), mk([4.0, 4.0, 4.0])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let ld = LinearDistance::edges_only();
        let rt = FragmentIndex::build(
            &db,
            features.clone(),
            IndexDistance::Linear(ld),
            &IndexConfig { backend: Backend::RTree, ..IndexConfig::default() },
        );
        let vp = FragmentIndex::build(
            &db,
            features,
            IndexDistance::Linear(ld),
            &IndexConfig { backend: Backend::VpTree, ..IndexConfig::default() },
        );
        let query = mk([1.0, 1.25, 2.0]);
        for qf in rt.enumerate_query_fragments(&query) {
            for sigma in [0.0, 0.5, 2.0] {
                let a = rt.range_query(qf.feature, &qf.vector, sigma);
                let b = vp.range_query(qf.feature, &qf.vector, sigma);
                assert_eq!(a.len(), b.len(), "hit counts differ at sigma {sigma}");
                for ((g1, d1), (g2, d2)) in a.iter().zip(&b) {
                    assert_eq!(g1, g2);
                    assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
                }
            }
        }
    }

    #[test]
    fn linear_rtree_distances_match_oracle() {
        let mk = |ws: [f64; 2]| {
            let mut b = GraphBuilder::new();
            let vs = b.add_vertices(3, VertexAttr::labeled(Label(0)));
            b.add_edge(vs[0], vs[1], EdgeAttr { label: Label(0), weight: ws[0] }).unwrap();
            b.add_edge(vs[1], vs[2], EdgeAttr { label: Label(0), weight: ws[1] }).unwrap();
            b.build()
        };
        let db = vec![mk([1.0, 2.0]), mk([1.1, 2.2]), mk([9.0, 9.0])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 2);
        let ld = LinearDistance::edges_only();
        let index =
            FragmentIndex::build(&db, features, IndexDistance::Linear(ld), &IndexConfig::default());
        let query = mk([1.0, 2.0]);
        for qf in index.enumerate_query_fragments(&query) {
            let f = index.features().get(qf.feature);
            // Query fragment as graph (erased labels, weights from vec).
            let mut b = GraphBuilder::new();
            let ws = qf.vector.weights();
            let ecount = f.edge_count();
            for (i, _) in f.structure.vertex_ids().enumerate() {
                b.add_vertex(VertexAttr { label: Label(0), weight: ws[ecount + i] });
            }
            for (j, e) in f.structure.edges().iter().enumerate() {
                b.add_edge(e.source, e.target, EdgeAttr { label: Label(0), weight: ws[j] })
                    .unwrap();
            }
            let frag = b.build();
            let hits = index.range_query(qf.feature, &qf.vector, 0.5);
            for (gid, d) in hits {
                let brute = min_superimposed_distance_brute(&frag, &db[gid.index()], &ld).unwrap();
                assert!((d - brute).abs() < 1e-9, "index {d} vs brute {brute}");
                let _ = ld.vertex_cost(VertexAttr::default(), VertexAttr::default());
            }
        }
    }

    #[test]
    fn batched_range_queries_equal_per_probe_queries() {
        let db = small_db();
        let index = build_md(&db, 4, Backend::Default);
        let query = cycle_with_edge_labels(&[1, 1, 1, 2, 1, 1]);
        let frags = index.enumerate_query_fragments(&query);
        // Group the fragments per feature (the enumeration order is
        // feature-major already) and answer each group both ways.
        let mut scratch = RangeScratch::new();
        let mut i = 0;
        let mut grouped = 0;
        while i < frags.len() {
            let feature = frags[i].feature;
            let mut j = i + 1;
            while j < frags.len() && frags[j].feature == feature {
                j += 1;
            }
            for sigma in [0.0, 1.0, 2.0, 6.0] {
                let mut outs: Vec<Vec<(GraphId, f64)>> = vec![Vec::new(); j - i];
                index.range_query_batch_normalized_into(
                    feature,
                    j - i,
                    |k| frags[i + k].vector.as_view(),
                    sigma,
                    &mut scratch,
                    &mut outs,
                );
                for (k, out) in outs.iter().enumerate() {
                    let expected = index.range_query(feature, &frags[i + k].vector, sigma);
                    assert_eq!(out, &expected, "sigma {sigma} probe {k}");
                }
            }
            grouped += 1;
            i = j;
        }
        assert!(grouped > 1, "test should cover several classes");
    }

    #[test]
    fn batched_range_queries_fall_back_per_probe_on_linear_backends() {
        let mk = |ws: [f64; 3]| {
            let mut b = GraphBuilder::new();
            let vs = b.add_vertices(3, VertexAttr::labeled(Label(0)));
            for (i, w) in ws.into_iter().enumerate() {
                b.add_edge(vs[i], vs[(i + 1) % 3], EdgeAttr { label: Label(0), weight: w })
                    .unwrap();
            }
            b.build()
        };
        let db = vec![mk([1.0, 1.0, 1.0]), mk([1.0, 1.5, 2.0]), mk([4.0, 4.0, 4.0])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let ld = LinearDistance::edges_only();
        let index =
            FragmentIndex::build(&db, features, IndexDistance::Linear(ld), &IndexConfig::default());
        let query = mk([1.0, 1.25, 2.0]);
        let frags = index.enumerate_query_fragments(&query);
        let mut scratch = RangeScratch::new();
        let mut i = 0;
        while i < frags.len() {
            let feature = frags[i].feature;
            let mut j = i + 1;
            while j < frags.len() && frags[j].feature == feature {
                j += 1;
            }
            let mut outs: Vec<Vec<(GraphId, f64)>> = vec![Vec::new(); j - i];
            index.range_query_batch_normalized_into(
                feature,
                j - i,
                |k| frags[i + k].vector.as_view(),
                0.5,
                &mut scratch,
                &mut outs,
            );
            for (k, out) in outs.iter().enumerate() {
                assert_eq!(out, &index.range_query(feature, &frags[i + k].vector, 0.5));
            }
            i = j;
        }
    }

    #[test]
    fn query_fragments_dedup_automorphisms() {
        let db = vec![cycle_graph(6, Label(0), Label(1))];
        let index = build_md(&db, 2, Backend::Default);
        let query = cycle_graph(6, Label(0), Label(1));
        let frags = index.enumerate_query_fragments(&query);
        // 1-edge fragments: 6 sites; 2-edge path fragments: 6 sites.
        let mut by_feature: pis_graph::util::FxHashMap<u32, usize> = Default::default();
        for f in &frags {
            *by_feature.entry(f.feature.0).or_insert(0) += 1;
        }
        let mut counts: Vec<usize> = by_feature.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![6, 6]);
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let db = small_db();
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let md = IndexDistance::Mutation(MutationDistance::edge_hamming());
        let serial = FragmentIndex::build(
            &db,
            features.clone(),
            md.clone(),
            &IndexConfig { threads: 1, ..IndexConfig::default() },
        );
        let parallel = FragmentIndex::build(
            &db,
            features,
            md,
            &IndexConfig { threads: 4, ..IndexConfig::default() },
        );
        assert_eq!(serial.total_entries(), parallel.total_entries());
        let query = cycle_with_edge_labels(&[1, 1, 2, 1, 1, 1]);
        for qf in serial.enumerate_query_fragments(&query) {
            let a = serial.range_query(qf.feature, &qf.vector, 2.0);
            let b = parallel.range_query(qf.feature, &qf.vector, 2.0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn incremental_insert_equals_bulk_build_trie() {
        let db = small_db();
        // Build on a prefix, insert the rest.
        let mut incremental = build_md(&db[..2], 3, Backend::Default);
        for g in &db[2..] {
            incremental.insert_graph(g);
        }
        let bulk = build_md(&db, 3, Backend::Default);
        assert_eq!(incremental.graph_count(), bulk.graph_count());
        assert_eq!(incremental.total_entries(), bulk.total_entries());
        for f in bulk.features().iter() {
            assert_eq!(incremental.class_graphs(f.id), bulk.class_graphs(f.id));
        }
        let query = cycle_with_edge_labels(&[1, 1, 2, 1, 1, 1]);
        for qf in bulk.enumerate_query_fragments(&query) {
            for sigma in [0.0, 1.0, 3.0] {
                assert_eq!(
                    incremental.range_query(qf.feature, &qf.vector, sigma),
                    bulk.range_query(qf.feature, &qf.vector, sigma),
                    "sigma {sigma}"
                );
            }
        }
    }

    #[test]
    fn incremental_insert_equals_bulk_build_vptree() {
        let db = small_db();
        let mut incremental = build_md(&db[..2], 3, Backend::VpTree);
        for g in &db[2..] {
            incremental.insert_graph(g);
        }
        let bulk = build_md(&db, 3, Backend::VpTree);
        let query = cycle_with_edge_labels(&[1, 2, 1, 2, 1, 2]);
        for qf in bulk.enumerate_query_fragments(&query) {
            for sigma in [0.0, 2.0, 6.0] {
                assert_eq!(
                    incremental.range_query(qf.feature, &qf.vector, sigma),
                    bulk.range_query(qf.feature, &qf.vector, sigma),
                    "sigma {sigma}"
                );
            }
        }
    }

    #[test]
    fn incremental_insert_equals_bulk_build_rtree() {
        let mk = |ws: [f64; 3]| {
            let mut b = GraphBuilder::new();
            let vs = b.add_vertices(3, VertexAttr::labeled(Label(0)));
            for (i, w) in ws.into_iter().enumerate() {
                b.add_edge(vs[i], vs[(i + 1) % 3], EdgeAttr { label: Label(0), weight: w })
                    .unwrap();
            }
            b.build()
        };
        let db = vec![mk([1.0, 1.0, 1.0]), mk([1.0, 1.5, 2.0]), mk([4.0, 4.0, 4.0])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let ld = LinearDistance::edges_only();
        let mut incremental = FragmentIndex::build(
            &db[..1],
            features.clone(),
            IndexDistance::Linear(ld),
            &IndexConfig::default(),
        );
        for g in &db[1..] {
            incremental.insert_graph(g);
        }
        let bulk =
            FragmentIndex::build(&db, features, IndexDistance::Linear(ld), &IndexConfig::default());
        let query = mk([1.0, 1.25, 2.0]);
        for qf in bulk.enumerate_query_fragments(&query) {
            for sigma in [0.0, 0.5, 2.0] {
                let a = incremental.range_query(qf.feature, &qf.vector, sigma);
                let b = bulk.range_query(qf.feature, &qf.vector, sigma);
                assert_eq!(a.len(), b.len(), "sigma {sigma}");
                for ((g1, d1), (g2, d2)) in a.iter().zip(&b) {
                    assert_eq!(g1, g2);
                    assert!((d1 - d2).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn inserted_graph_without_features_only_bumps_count() {
        // A graph too small to hold any feature: no postings change.
        let db = small_db();
        let mut index = build_md(&db, 3, Backend::Default);
        let before = index.total_entries();
        let tiny = {
            let mut b = GraphBuilder::new();
            b.add_vertex(VertexAttr::labeled(Label(0)));
            b.build()
        };
        let gid = index.insert_graph(&tiny);
        assert_eq!(gid.index(), db.len());
        assert_eq!(index.total_entries(), before);
        assert_eq!(index.graph_count(), db.len() + 1);
    }

    #[test]
    #[should_panic(expected = "R-tree backend indexes weight vectors")]
    fn mutation_plus_rtree_rejected() {
        let db = small_db();
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 2);
        let _ = FragmentIndex::build(
            &db,
            features,
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig { backend: Backend::RTree, ..IndexConfig::default() },
        );
    }

    /// A populated class for corruption below (the build itself already
    /// re-validated through the debug hook).
    fn full_class(index: &FragmentIndex) -> usize {
        (0..index.classes.len())
            .find(|&ci| !index.classes[ci].graphs.is_empty())
            .expect("small_db populates at least one class")
    }

    #[test]
    fn validate_reports_per_backend_tallies() {
        let db = small_db();
        let index = build_md(&db, 3, Backend::Trie);
        let report = index.validate().unwrap();
        assert_eq!(report.classes, index.features().len());
        assert_eq!(report.trie_classes, report.classes);
        assert_eq!(report.rtree_classes + report.vptree_classes, 0);
        assert_eq!(report.frozen_entries, index.total_entries());
        assert_eq!(report.pending_entries, 0);
    }

    #[test]
    fn validate_rejects_index_corruption() {
        let db = small_db();

        // Entry-count drift.
        let mut bad = build_md(&db, 3, Backend::Trie);
        let ci = full_class(&bad);
        bad.classes[ci].entries += 1;
        assert!(bad.validate().unwrap_err().contains("entries"));

        // Posting list out of order.
        let mut bad = build_md(&db, 3, Backend::Trie);
        let ci = full_class(&bad);
        if bad.classes[ci].graphs.len() > 1 {
            bad.classes[ci].graphs.reverse();
            assert!(bad.validate().unwrap_err().contains("ascending"));
        }

        // Posting list past the database.
        let mut bad = build_md(&db, 3, Backend::Trie);
        let ci = full_class(&bad);
        bad.classes[ci].graphs.push(GraphId(bad.graph_count as u32));
        assert!(bad.validate().unwrap_err().contains("past the"));

        // A pending entry whose vector has the wrong arity.
        let mut bad = build_md(&db, 3, Backend::Trie);
        let ci = full_class(&bad);
        bad.classes[ci].pending.labels.push((vec![Label(1)], GraphId(0)));
        assert!(bad.validate().unwrap_err().contains("slots"));

        // A weight entry buffered into a label-backed class.
        let mut bad = build_md(&db, 3, Backend::Trie);
        let ci = full_class(&bad);
        bad.classes[ci].entries += 1;
        let feature = bad.features.get(FeatureId(ci as u32));
        let slots = feature.structure.vertex_count() + feature.structure.edge_count();
        bad.classes[ci].pending.weights.push((vec![0.0; slots], GraphId(0)));
        assert!(bad.validate().unwrap_err().contains("weight entry"));
    }

    #[test]
    fn validate_rejects_mismatched_backend() {
        let db = small_db();
        let mut bad = build_md(&db, 3, Backend::Trie);
        // Swap the distance out from under trie-backed classes.
        bad.distance = IndexDistance::Linear(LinearDistance::edges_only());
        assert!(bad.validate().unwrap_err().contains("backend"));
    }
}
