//! The fragment-based index of PIS (Section 4, Figure 5).
//!
//! Database graphs are decomposed into fragments — embeddings of the
//! selected feature structures — and every fragment's *label vector*
//! (categorical labels or numeric weights read in the feature's
//! canonical order) is stored in a per-equivalence-class index that
//! answers range queries `d(g, g') ≤ σ`:
//!
//! * [`flat_trie::FlatTrie`] — categorical labels under the mutation
//!   distance: a cache-resident level-major arena descended level by
//!   level with batched per-label costs (the insert-friendly pointer
//!   [`trie::LabelTrie`] is retained as the builder and executable
//!   reference);
//! * [`rtree::RTree`] — numeric weights under the linear distance (L1
//!   ball queries, the paper's Example 3);
//! * [`vptree::VpTree`] — any metric distance (the "metric-based index
//!   \[6\]" option), used in ablations A2/A3.
//!
//! The hash table of Figure 5 maps a structure's canonical DFS-code
//! sequence to its class; [`index::FragmentIndex`] ties everything
//! together and also owns the structural posting lists used by
//! topoPrune.
//!
//! Soundness note: *every* embedding of a feature into a database graph
//! is read out and inserted (deduplicated), including automorphic
//! re-readings. This is what lets a query-side fragment issue a single
//! range query and still minimize over all superpositions (Eq. 3).

#![forbid(unsafe_code)]

pub mod codec;
pub mod flat_trie;
pub mod fragment;
pub mod index;
pub mod pending;
pub mod persist;
pub mod rtree;
pub mod snapshot;
pub mod trie;
pub mod vptree;
pub mod wal;

pub use flat_trie::{BatchFrontier, FlatTrie, TrieFrontier};
pub use fragment::{FragmentBuffer, FragmentVector, FragmentVectorRef, QueryFragment};
pub use index::{
    Backend, FragmentIndex, IndexCheckReport, IndexConfig, IndexDistance, RangeScratch, ShardView,
};
pub use persist::{load_index, save_index, PersistError};
pub use snapshot::{decode_snapshot, encode_snapshot, load_snapshot, write_snapshot};
pub use trie::LabelTrie;
pub use wal::{Wal, WalReplay};
