//! LSM-style per-class pending buffers.
//!
//! The frozen arenas ([`crate::flat_trie::FlatTrie`], the packed
//! R-tree) buy query speed with immutability: one inserted graph costs
//! an O(class) rebuild per touched class. A [`PendingSet`] restores
//! cheap inserts without giving the layouts up — new entries append to
//! a small unfrozen side list, range queries scan it linearly with the
//! *same* pricing kernels as the frozen structure (so answers stay
//! bit-identical to a fully merged class), and once the buffer reaches
//! [`crate::IndexConfig::merge_threshold`] entries the class is merged
//! and re-frozen in one batch.

use pis_graph::{GraphId, Label};

/// Entries inserted into a class since it was last frozen or merged.
///
/// Graph-id convention follows the owning backend: trie classes store
/// class-local posting slots, every other backend stores global graph
/// ids, and R-tree classes additionally store the points
/// scale-transformed (exactly as the frozen structures do).
#[derive(Clone, Debug, Default)]
pub struct PendingSet {
    /// Label-vector entries (trie / vp-label classes).
    pub(crate) labels: Vec<(Vec<Label>, GraphId)>,
    /// Weight-vector entries (R-tree / vp-weight classes).
    pub(crate) weights: Vec<(Vec<f64>, GraphId)>,
}

impl PendingSet {
    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.labels.len() + self.weights.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() && self.weights.is_empty()
    }

    /// Checks every buffered entry against the owning class's shape:
    /// vectors carry exactly `slots` positions, label-entry graph ids
    /// stay below `label_bound`, weight-entry ids below `weight_bound`,
    /// and weights are finite. Returns the first violation as a
    /// description; the owning [`crate::index::FragmentIndex`] supplies
    /// the bounds (class-local slots for trie classes, global graph ids
    /// everywhere else) and separately rejects entries of the wrong
    /// kind for the backend.
    pub fn validate(
        &self,
        slots: usize,
        label_bound: usize,
        weight_bound: usize,
    ) -> Result<(), String> {
        for (seq, gid) in &self.labels {
            if seq.len() != slots {
                return Err(format!("pending label entry has {} of {slots} slots", seq.len()));
            }
            if gid.index() >= label_bound {
                return Err(format!("pending label entry names graph {gid} of {label_bound}"));
            }
        }
        for (v, gid) in &self.weights {
            if v.len() != slots {
                return Err(format!("pending weight entry has {} of {slots} slots", v.len()));
            }
            if v.iter().any(|x| !x.is_finite()) {
                return Err("pending weight entry holds a non-finite weight".to_string());
            }
            if gid.index() >= weight_bound {
                return Err(format!("pending weight entry names graph {gid} of {weight_bound}"));
            }
        }
        Ok(())
    }

    /// Scans label entries with sequential position pricing — the exact
    /// accumulation order of the trie descent (left-to-right sum of
    /// per-position costs starting from the first position's cost), so
    /// emitted distances are bit-identical to a post-merge descent.
    /// Costs are non-negative, so the partial sum is monotone and the
    /// scan abandons an entry as soon as it exceeds `sigma`.
    pub(crate) fn scan_labels_positional(
        &self,
        sigma: f64,
        mut position_cost: impl FnMut(usize, Label) -> f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        for (seq, gid) in &self.labels {
            let mut acc = 0.0;
            let mut live = true;
            for (pos, &stored) in seq.iter().enumerate() {
                acc += position_cost(pos, stored);
                if acc > sigma {
                    live = false;
                    break;
                }
            }
            if live {
                visit(*gid, acc);
            }
        }
    }

    /// Scans label entries with a whole-vector metric (vp-label
    /// classes), emitting entries within `sigma`.
    pub(crate) fn scan_labels(
        &self,
        sigma: f64,
        mut cost: impl FnMut(&[Label]) -> f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        for (seq, gid) in &self.labels {
            let d = cost(seq);
            if d <= sigma {
                visit(*gid, d);
            }
        }
    }

    /// Scans weight entries with a whole-vector metric (R-tree /
    /// vp-weight classes), emitting entries within `sigma`.
    pub(crate) fn scan_weights(
        &self,
        sigma: f64,
        mut cost: impl FnMut(&[f64]) -> f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        for (v, gid) in &self.weights {
            let d = cost(v);
            if d <= sigma {
                visit(*gid, d);
            }
        }
    }
}
