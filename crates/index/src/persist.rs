//! Index persistence.
//!
//! Building a fragment index over a large database costs minutes of
//! embedding enumeration; a production deployment builds once and
//! serves many sessions. This module serializes a [`FragmentIndex`] to
//! a versioned, line-oriented text format and restores it exactly:
//! stored vectors round-trip bit-for-bit (floats travel as hex bit
//! patterns), so a loaded index answers every range query identically
//! to the original.
//!
//! The database graphs themselves are *not* stored here — the paper's
//! index never holds real graphs (Section 6), only identifiers. Persist
//! graphs separately with `pis_graph::io` and hand both to
//! `PisSearcher`.

use std::fmt;
use std::io::{self, BufRead, Write};

use pis_distance::{LinearDistance, MutationDistance, ScoreMatrix};
use pis_graph::canonical::min_dfs_code;
use pis_graph::{GraphId, Label};
use pis_mining::FeatureSet;

use crate::codec::{idx, u32_idx};
use crate::flat_trie::FlatTrie;
use crate::index::{Backend, ClassImpl, ClassIndex, FragmentIndex, IndexConfig, IndexDistance};
use crate::rtree::RTree;
use crate::vptree::VpTree;

/// Format magic + version.
const MAGIC: &str = "PISIDX 1";

/// Pre-allocation ceiling for counts parsed from untrusted input. The
/// vectors still grow to whatever the stream actually contains; the cap
/// only stops a corrupt count from reserving gigabytes up front.
const PREALLOC_CAP: usize = 1 << 12;

/// Largest accepted score-matrix size. Label alphabets in this system
/// are tiny; the cap keeps `size * size` cells from overflowing or
/// allocating unboundedly on corrupt input.
const MAX_MATRIX_SIZE: usize = 1 << 12;

/// Errors raised while loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or lexical problem in the input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Corruption detected in a binary artifact (snapshot or WAL):
    /// checksum mismatch, truncation, or an out-of-range structural
    /// value.
    Corrupt {
        /// Byte offset the corruption was detected at.
        offset: u64,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index load I/O error: {e}"),
            PersistError::Parse { line, message } => {
                write!(f, "index load parse error at line {line}: {message}")
            }
            PersistError::Corrupt { offset, message } => {
                write!(f, "corrupt binary artifact at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serializes an index.
pub fn save_index<W: Write>(index: &FragmentIndex, mut w: W) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "graphs {}", index.graph_count)?;
    writeln!(w, "max_embeddings {}", index.config.max_embeddings_per_fragment)?;
    match &index.distance {
        IndexDistance::Mutation(md) => {
            writeln!(w, "distance mutation")?;
            save_matrix(&mut w, "vertex_matrix", md.vertex_scores())?;
            save_matrix(&mut w, "edge_matrix", md.edge_scores())?;
        }
        IndexDistance::Linear(ld) => {
            writeln!(
                w,
                "distance linear {} {}",
                hex_f64(ld.vertex_scale()),
                hex_f64(ld.edge_scale())
            )?;
        }
    }
    writeln!(w, "features {}", index.features.len())?;
    for feature in index.features.iter() {
        let seq = feature.code.to_sequence();
        write!(w, "feature {} ", feature.support)?;
        for x in &seq {
            write!(w, "{x} ")?;
        }
        writeln!(w)?;
    }
    for (ci, class) in index.classes.iter().enumerate() {
        write!(w, "class {ci} backend ")?;
        match &class.imp {
            ClassImpl::Trie(_) => writeln!(w, "trie")?,
            ClassImpl::VpLabels(_) => writeln!(w, "vplabels")?,
            ClassImpl::RTree(_) => writeln!(w, "rtree")?,
            ClassImpl::VpWeights(_) => writeln!(w, "vpweights")?,
        }
        write!(w, "posting {} ", class.graphs.len())?;
        for g in &class.graphs {
            write!(w, "{} ", g.0)?;
        }
        writeln!(w)?;
        writeln!(w, "entries {}", class.entries)?;
        // Entries exactly as stored (R-tree points are already
        // scale-transformed; the loader re-inserts them raw).
        match &class.imp {
            ClassImpl::Trie(trie) => {
                // Trie postings are class-local slots; persist the
                // global graph ids so the on-disk format is unchanged.
                let mut err = None;
                trie.for_each_entry(|seq, local| {
                    if err.is_some() {
                        return;
                    }
                    err = write_label_entry(&mut w, seq, class.graphs[local.index()]).err();
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            ClassImpl::VpLabels(vp) => {
                for (seq, gid) in vp.items() {
                    write_label_entry(&mut w, seq, gid)?;
                }
            }
            ClassImpl::RTree(rt) => {
                let mut err = None;
                rt.for_each_entry(|p, gid| {
                    if err.is_some() {
                        return;
                    }
                    err = write_weight_entry(&mut w, p, gid).err();
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            ClassImpl::VpWeights(vp) => {
                for (p, gid) in vp.items() {
                    write_weight_entry(&mut w, p, gid)?;
                }
            }
        }
        // Pending (unmerged) entries ride along after the frozen ones —
        // `entries` already counts them — so saving mid-stream loses
        // nothing; they load back merged into the frozen structure.
        for (seq, gid) in &class.pending.labels {
            let global = if matches!(class.imp, ClassImpl::Trie(_)) {
                // Trie pending ids are class-local slots.
                class.graphs[gid.index()]
            } else {
                *gid
            };
            write_label_entry(&mut w, seq, global)?;
        }
        for (p, gid) in &class.pending.weights {
            write_weight_entry(&mut w, p, *gid)?;
        }
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Restores an index saved with [`save_index`].
pub fn load_index<R: BufRead>(r: R) -> Result<FragmentIndex, PersistError> {
    let mut lines = Lines::new(r);
    lines.expect_line(MAGIC)?;
    let graph_count: usize = lines.field("graphs")?;
    let max_embeddings: usize = lines.field("max_embeddings")?;

    // Distance.
    let (distance, line_no) = {
        let (line, no) = lines.next_line()?;
        let mut toks = line.split_whitespace();
        match (toks.next(), toks.next()) {
            (Some("distance"), Some("mutation")) => {
                let vertex = load_matrix(&mut lines, "vertex_matrix")?;
                let edge = load_matrix(&mut lines, "edge_matrix")?;
                (IndexDistance::Mutation(MutationDistance::new(vertex, edge)), no)
            }
            (Some("distance"), Some("linear")) => {
                let vs = parse_hex_f64(toks.next(), no)?;
                let es = parse_hex_f64(toks.next(), no)?;
                (IndexDistance::Linear(LinearDistance::scaled(vs, es)), no)
            }
            _ => return Err(parse_err(no, "expected 'distance mutation|linear'")),
        }
    };
    let _ = line_no;

    // Features.
    let feature_count: usize = lines.field("features")?;
    let mut features = FeatureSet::new();
    let mut edge_counts = Vec::with_capacity(feature_count.min(PREALLOC_CAP));
    for _ in 0..feature_count {
        let (line, no) = lines.next_line()?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("feature") {
            return Err(parse_err(no, "expected 'feature'"));
        }
        let support: usize = parse_num(toks.next(), no, "feature support")?;
        let seq: Vec<u32> = toks
            .map(|t| t.parse().map_err(|_| parse_err(no, "invalid feature sequence")))
            .collect::<Result<_, _>>()?;
        let code = sequence_to_code(&seq, no)?;
        edge_counts.push(code.edge_count());
        let (_, fresh) = features.insert(code, support);
        // The class loop below addresses features by position; a
        // duplicated feature line would silently shift every later
        // class onto the wrong feature (or index out of bounds).
        if !fresh {
            return Err(parse_err(no, "duplicate feature"));
        }
    }

    // Classes.
    let mut classes = Vec::with_capacity(edge_counts.len());
    for (ci, &ecount) in edge_counts.iter().enumerate() {
        let (line, no) = lines.next_line()?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("class") {
            return Err(parse_err(no, "expected 'class'"));
        }
        let idx: usize = parse_num(toks.next(), no, "class index")?;
        if idx != ci {
            return Err(parse_err(no, &format!("class {idx} out of order (expected {ci})")));
        }
        if toks.next() != Some("backend") {
            return Err(parse_err(no, "expected 'backend'"));
        }
        let backend = toks.next().unwrap_or("").to_string();

        let (line, no) = lines.next_line()?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("posting") {
            return Err(parse_err(no, "expected 'posting'"));
        }
        let count: usize = parse_num(toks.next(), no, "posting length")?;
        let graphs: Vec<GraphId> = toks
            .map(|t| t.parse::<u32>().map(GraphId).map_err(|_| parse_err(no, "invalid graph id")))
            .collect::<Result<_, _>>()?;
        if graphs.len() != count {
            return Err(parse_err(no, "posting length mismatch"));
        }
        // Postings are saved ascending; the trie entry translation
        // below binary-searches them, and every id must name a graph
        // that actually exists in the database this index claims.
        if graphs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(parse_err(no, "posting list not strictly ascending"));
        }
        if graphs.last().is_some_and(|g| g.index() >= graph_count) {
            return Err(parse_err(no, "posting graph id out of range"));
        }

        let entry_count: usize = lines.field("entries")?;
        let feature = features.get(pis_mining::FeatureId(u32_idx(ci)));
        let slots = feature.structure.vertex_count() + feature.structure.edge_count();

        let mut label_entries: Vec<(Vec<Label>, GraphId)> = Vec::new();
        let mut weight_entries: Vec<(Vec<f64>, GraphId)> = Vec::new();
        for _ in 0..entry_count {
            let (line, no) = lines.next_line()?;
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some("L") => {
                    let mut v: Vec<Label> = Vec::with_capacity(slots);
                    for _ in 0..slots {
                        v.push(Label(parse_num(toks.next(), no, "label slot")?));
                    }
                    let gid = GraphId(parse_num(toks.next(), no, "entry graph id")?);
                    if gid.index() >= graph_count {
                        return Err(parse_err(no, "entry graph id out of range"));
                    }
                    // Saved trie entries carry global graph ids; the
                    // in-memory trie stores class-local slots into the
                    // (already parsed) posting list — translate here,
                    // where the offending line is known.
                    let gid = if backend == "trie" {
                        let slot = graphs.binary_search(&gid).map_err(|_| {
                            parse_err(no, "trie entry graph id missing from the class posting list")
                        })?;
                        GraphId(u32_idx(slot))
                    } else {
                        gid
                    };
                    label_entries.push((v, gid));
                }
                Some("W") => {
                    let mut v: Vec<f64> = Vec::with_capacity(slots);
                    for _ in 0..slots {
                        v.push(parse_hex_f64(toks.next(), no)?);
                    }
                    let gid = GraphId(parse_num(toks.next(), no, "entry graph id")?);
                    if gid.index() >= graph_count {
                        return Err(parse_err(no, "entry graph id out of range"));
                    }
                    weight_entries.push((v, gid));
                }
                _ => return Err(parse_err(no, "expected entry 'L' or 'W'")),
            }
        }

        let imp =
            build_class_impl(&backend, &distance, slots, ecount, label_entries, weight_entries)
                .map_err(|m| parse_err(0, &m))?;
        classes.push(ClassIndex::restored(imp, graphs, entry_count));
    }
    lines.expect_line("end")?;

    // Infer the backend flag from the first class (all classes share it).
    let backend = classes
        .first()
        .map(|c| match c.imp {
            ClassImpl::Trie(_) => Backend::Trie,
            ClassImpl::RTree(_) => Backend::RTree,
            ClassImpl::VpLabels(_) | ClassImpl::VpWeights(_) => Backend::VpTree,
        })
        .unwrap_or_default();
    Ok(FragmentIndex {
        features,
        distance,
        classes,
        graph_count,
        config: IndexConfig {
            backend,
            max_embeddings_per_fragment: max_embeddings,
            threads: 0,
            // The text format predates the pending buffer and does not
            // store the threshold; loaded indexes get the default.
            merge_threshold: IndexConfig::default().merge_threshold,
        },
    })
}

/// Builds a class backend from parsed entry lists — shared by this text
/// loader and the binary snapshot loader so both restore classes
/// through identical code paths (and therefore answer queries
/// identically). Trie entries must already carry class-local slots.
pub(crate) fn build_class_impl(
    backend: &str,
    distance: &IndexDistance,
    slots: usize,
    ecount: usize,
    label_entries: Vec<(Vec<Label>, GraphId)>,
    weight_entries: Vec<(Vec<f64>, GraphId)>,
) -> Result<ClassImpl, String> {
    Ok(match (backend, distance) {
        ("trie", _) => {
            // Saved entries are lexicographic (ids already translated
            // to class-local slots); the arena builder re-sorts
            // defensively and freezes in one shot.
            ClassImpl::Trie(FlatTrie::from_entries(slots, label_entries))
        }
        ("vplabels", IndexDistance::Mutation(md)) => {
            let md = md.clone();
            ClassImpl::VpLabels(VpTree::build(slots, label_entries, move |a, b| {
                md.label_vector_cost(ecount, a, b)
            }))
        }
        ("rtree", _) => {
            // Stored points are already scale-transformed; freeze the
            // rebuilt tree into its query arena.
            let mut rt = RTree::new(slots);
            for (v, gid) in &weight_entries {
                rt.insert(v, *gid);
            }
            rt.freeze();
            ClassImpl::RTree(rt)
        }
        ("vpweights", IndexDistance::Linear(ld)) => {
            let ld = *ld;
            ClassImpl::VpWeights(VpTree::build(slots, weight_entries, move |a, b| {
                ld.weight_vector_cost(ecount, a, b)
            }))
        }
        (other, _) => return Err(format!("backend '{other}' incompatible with distance")),
    })
}

fn save_matrix<W: Write>(w: &mut W, tag: &str, m: &ScoreMatrix) -> io::Result<()> {
    write!(w, "{tag} {} {} ", m.size(), hex_f64(m.default_mismatch()))?;
    for i in 0..m.size() {
        for j in 0..m.size() {
            write!(w, "{} ", hex_f64(m.cost(Label(u32_idx(i)), Label(u32_idx(j)))))?;
        }
    }
    writeln!(w)
}

fn load_matrix<R: BufRead>(lines: &mut Lines<R>, tag: &str) -> Result<ScoreMatrix, PersistError> {
    let (line, no) = lines.next_line()?;
    let mut toks = line.split_whitespace();
    if toks.next() != Some(tag) {
        return Err(parse_err(no, &format!("expected '{tag}'")));
    }
    let size: usize = parse_num(toks.next(), no, "matrix size")?;
    if size > MAX_MATRIX_SIZE {
        return Err(parse_err(
            no,
            &format!("matrix size {size} exceeds the {MAX_MATRIX_SIZE} cap"),
        ));
    }
    let default = parse_hex_f64(toks.next(), no)?;
    let mut costs = vec![0.0; size * size];
    for cell in costs.iter_mut() {
        *cell = parse_hex_f64(toks.next(), no)?;
    }
    ScoreMatrix::from_fn(size, default, |a, b| costs[a.index() * size + b.index()])
        .map_err(|e| parse_err(no, &e.to_string()))
}

fn write_label_entry<W: Write>(w: &mut W, seq: &[Label], gid: GraphId) -> io::Result<()> {
    write!(w, "L ")?;
    for l in seq {
        write!(w, "{} ", l.0)?;
    }
    writeln!(w, "{}", gid.0)
}

fn write_weight_entry<W: Write>(w: &mut W, p: &[f64], gid: GraphId) -> io::Result<()> {
    write!(w, "W ")?;
    for x in p {
        write!(w, "{} ", hex_f64(*x))?;
    }
    writeln!(w, "{}", gid.0)
}

/// Bit-exact float serialization.
fn hex_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_hex_f64(tok: Option<&str>, line: usize) -> Result<f64, PersistError> {
    let tok = tok.ok_or_else(|| parse_err(line, "missing float field"))?;
    let x = u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| parse_err(line, &format!("invalid float bits '{tok}'")))?;
    // NaN or infinite stored floats would poison every superimposed
    // distance downstream (and break the vp-tree's total order); no
    // honest save ever writes them.
    if !x.is_finite() {
        return Err(parse_err(line, &format!("non-finite float '{tok}'")));
    }
    Ok(x)
}

fn parse_num<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, PersistError> {
    let tok = tok.ok_or_else(|| parse_err(line, &format!("missing {what}")))?;
    tok.parse().map_err(|_| parse_err(line, &format!("invalid {what}: '{tok}'")))
}

fn parse_err(line: usize, message: &str) -> PersistError {
    PersistError::Parse { line, message: message.to_string() }
}

/// Rebuilds a DFS code from its `to_sequence` serialization (shared
/// with the binary snapshot loader, which passes `line = 0` and maps
/// the message into its own offset-tagged error).
pub(crate) fn sequence_to_code(
    seq: &[u32],
    line: usize,
) -> Result<pis_graph::canonical::DfsCode, PersistError> {
    use pis_graph::canonical::{DfsCode, DfsEdge};
    if seq.len() < 3 {
        return Err(parse_err(line, "feature sequence too short"));
    }
    let edge_count = idx(seq[1]);
    // Checked arithmetic: a crafted count near usize::MAX must not wrap
    // into a passing length check on 32-bit targets.
    if edge_count.checked_mul(5).and_then(|x| x.checked_add(3)) != Some(seq.len()) {
        return Err(parse_err(line, "feature sequence length mismatch"));
    }
    // `DfsCode::to_graph` trusts its indices (miner-produced codes are
    // valid by construction); a persisted code is untrusted, so check
    // here everything that would otherwise panic inside it: vertex ids
    // beyond the connected bound V <= E + 1, self-loops, repeated
    // edges, and index gaps that leave a vertex with no label.
    let mut edges = Vec::with_capacity(edge_count);
    let vertex_cap = seq[1] + 1;
    for k in 0..edge_count {
        let base = 3 + k * 5;
        let (from, to) = (seq[base], seq[base + 1]);
        if from >= vertex_cap || to >= vertex_cap {
            return Err(parse_err(line, "feature vertex id out of range"));
        }
        if from == to {
            return Err(parse_err(line, "feature edge is a self-loop"));
        }
        if edges
            .iter()
            .any(|e: &DfsEdge| (e.from, e.to) == (from, to) || (e.from, e.to) == (to, from))
        {
            return Err(parse_err(line, "feature edge repeated"));
        }
        edges.push(DfsEdge {
            from,
            to,
            from_label: Label(seq[base + 2]),
            edge_label: Label(seq[base + 3]),
            to_label: Label(seq[base + 4]),
        });
    }
    if let Some(max_id) = edges.iter().map(|e| e.from.max(e.to)).max() {
        let mut seen = vec![false; idx(max_id) + 1];
        for e in &edges {
            seen[idx(e.from)] = true;
            seen[idx(e.to)] = true;
        }
        if seen.iter().any(|&s| !s) {
            return Err(parse_err(line, "feature vertex ids have gaps"));
        }
    }
    let code = DfsCode { edges, root_label: Label(seq[2]) };
    if idx(seq[0]) != code.vertex_count() {
        return Err(parse_err(line, "feature vertex count mismatch"));
    }
    // Defensive: the representative must be canonical, else lookups on
    // the loaded index would mis-hash.
    let canon = min_dfs_code(&code.to_graph())
        .ok_or_else(|| parse_err(line, "feature code is not connected"))?;
    if canon.code != code {
        return Err(parse_err(line, "feature code is not canonical"));
    }
    Ok(code)
}

/// Line reader with 1-based positions.
struct Lines<R: BufRead> {
    reader: R,
    line_no: usize,
}

impl<R: BufRead> Lines<R> {
    fn new(reader: R) -> Self {
        Lines { reader, line_no: 0 }
    }

    fn next_line(&mut self) -> Result<(String, usize), PersistError> {
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = self.reader.read_line(&mut buf)?;
            self.line_no += 1;
            if n == 0 {
                return Err(parse_err(self.line_no, "unexpected end of input"));
            }
            let trimmed = buf.trim();
            if !trimmed.is_empty() {
                return Ok((trimmed.to_string(), self.line_no));
            }
        }
    }

    fn expect_line(&mut self, expected: &str) -> Result<(), PersistError> {
        let (line, no) = self.next_line()?;
        if line == expected {
            Ok(())
        } else {
            Err(parse_err(no, &format!("expected '{expected}', found '{line}'")))
        }
    }

    fn field<T: std::str::FromStr>(&mut self, tag: &str) -> Result<T, PersistError> {
        let (line, no) = self.next_line()?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some(tag) {
            return Err(parse_err(no, &format!("expected '{tag}'")));
        }
        parse_num(toks.next(), no, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_distance::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, LabeledGraph, VertexAttr};
    use pis_mining::exhaustive::exhaustive_features;

    fn ring(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
        }
        b.build()
    }

    fn weighted_ring(ws: &[f64]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = ws.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &w) in ws.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr { label: Label(0), weight: w }).unwrap();
        }
        b.build()
    }

    fn round_trip(index: &FragmentIndex) -> FragmentIndex {
        let mut buf = Vec::new();
        save_index(index, &mut buf).expect("in-memory save cannot fail");
        load_index(buf.as_slice()).expect("round trip must load")
    }

    fn assert_same_answers(a: &FragmentIndex, b: &FragmentIndex, query: &LabeledGraph) {
        assert_eq!(a.graph_count(), b.graph_count());
        assert_eq!(a.total_entries(), b.total_entries());
        assert_eq!(a.features().len(), b.features().len());
        for qf in a.enumerate_query_fragments(query) {
            for sigma in [0.0, 1.0, 3.0] {
                let ra = a.range_query(qf.feature, &qf.vector, sigma);
                let rb = b.range_query(qf.feature, &qf.vector, sigma);
                assert_eq!(ra.len(), rb.len(), "sigma {sigma}");
                for ((g1, d1), (g2, d2)) in ra.iter().zip(&rb) {
                    assert_eq!(g1, g2);
                    assert!((d1 - d2).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn mutation_trie_round_trip() {
        let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 1, 2, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let loaded = round_trip(&index);
        assert_same_answers(&index, &loaded, &ring(&[1, 2, 1, 2]));
        for f in index.features().iter() {
            assert_eq!(index.class_graphs(f.id), loaded.class_graphs(f.id));
        }
    }

    #[test]
    fn mutation_vptree_round_trip() {
        let db = vec![ring(&[1, 1, 1]), ring(&[1, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 2),
            IndexDistance::Mutation(MutationDistance::unit()),
            &IndexConfig { backend: Backend::VpTree, ..IndexConfig::default() },
        );
        let loaded = round_trip(&index);
        assert_same_answers(&index, &loaded, &ring(&[1, 1, 2]));
    }

    #[test]
    fn linear_rtree_round_trip_is_bit_exact() {
        let db = vec![
            weighted_ring(&[1.0, 1.5, std::f64::consts::PI]),
            weighted_ring(&[0.1, 0.2, 0.30000000000000004]),
        ];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Linear(LinearDistance::edges_only()),
            &IndexConfig::default(),
        );
        let loaded = round_trip(&index);
        assert_same_answers(&index, &loaded, &weighted_ring(&[1.0, 1.5, 3.25]));
    }

    #[test]
    fn loaded_index_accepts_incremental_inserts() {
        let db = vec![ring(&[1, 1, 1, 1]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let mut loaded = round_trip(&index);
        let gid = loaded.insert_graph(&ring(&[1, 2, 1, 2]));
        assert_eq!(gid.index(), 2);
        let q = loaded
            .enumerate_query_fragments(&ring(&[1, 2, 1, 2]))
            .into_iter()
            .next()
            .expect("query has fragments");
        let hits = loaded.range_query(q.feature, &q.vector, 0.0);
        assert!(hits.iter().any(|(g, _)| g.index() == 2), "inserted graph must be findable");
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        // The frozen arena must persist exactly like the pointer trie
        // did: lexicographic entries, ascending graph ids — so a second
        // save of the loaded index reproduces the bytes.
        let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let mut first = Vec::new();
        save_index(&index, &mut first).unwrap();
        let loaded = load_index(first.as_slice()).unwrap();
        let mut second = Vec::new();
        save_index(&loaded, &mut second).unwrap();
        assert_eq!(first, second, "save → load → save must be the identity");
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(load_index("garbage".as_bytes()).is_err());
        assert!(load_index("PISIDX 1\ngraphs notanumber\n".as_bytes()).is_err());
        // Truncated stream.
        let db = vec![ring(&[1, 1, 1])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 2),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig::default(),
        );
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(load_index(truncated).is_err());
    }

    #[test]
    fn non_canonical_feature_code_rejected() {
        // Hand-craft a stream with a non-canonical feature code: swap
        // the 3-path's code for a deliberately wrong one.
        let text = "PISIDX 1\ngraphs 0\nmax_embeddings 18446744073709551615\n\
                    distance linear 3ff0000000000000 3ff0000000000000\n\
                    features 1\nfeature 0 3 2 0 1 2 0 0 0 2 0 0 0\n";
        // (from=1,to=2) as second edge with from=1 is fine, but the code
        // must match min_dfs_code of its own graph; a path coded from an
        // endpoint is canonical, so corrupt the labels ordering instead.
        let bad = text
            .replace("feature 0 3 2 0 1 2 0 0 0 2 0 0 0", "feature 0 3 2 9 0 1 9 0 0 1 2 0 0 0");
        assert!(load_index(bad.as_bytes()).is_err());
    }
}
