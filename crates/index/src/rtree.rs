//! An R-tree over fragment weight vectors (references \[4, 11\]).
//!
//! Each equivalence class of a weighted dataset maps its fragments to
//! points in `R^(V+E)` (vertex weights then edge weights, in canonical
//! order); a linear-distance range query `LD ≤ σ` is an L1 ball query
//! (the paper's Example 3). The tree is a classic Guttman R-tree:
//! least-enlargement insertion with longest-axis median splits. The L1
//! distance from a query point to a rectangle lower-bounds the distance
//! to every point inside, which makes subtree pruning exact.
//!
//! Like the trie (`DESIGN.md` §6.5), the pointer tree is kept as the
//! *build* structure only: [`RTree::freeze`] flattens it into a
//! level-major arena — CSR `child_start`/`child_len` child runs, SoA
//! `bounds_min`/`bounds_max` rectangle blocks, and every leaf's points
//! concatenated row-major — and [`RTree::range_query`] then descends
//! the arena, scanning each node's child rectangles and each leaf's
//! point block contiguously through the batched L1 kernels
//! (`pis_distance::mbr_l1_costs_into` / `l1_costs_into`) instead of
//! chasing per-node `Vec` allocations. Inserting marks the arena stale
//! and queries fall back to the identical pointer descent until the
//! next freeze, so the pointer path doubles as the executable
//! reference ([`RTree::range_query_reference`]).

use pis_distance::{l1_costs_into, mbr_l1_costs_into};
use pis_graph::GraphId;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node after a split.
const MIN_ENTRIES: usize = 3;

/// Minimum bounding rectangle in `dim` dimensions.
#[derive(Clone, Debug, PartialEq)]
struct Mbr {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Mbr {
    fn of_point(p: &[f64]) -> Self {
        Mbr { min: p.to_vec(), max: p.to_vec() }
    }

    fn merge(&mut self, other: &Mbr) {
        for d in 0..self.min.len() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    fn merged(&self, other: &Mbr) -> Mbr {
        let mut m = self.clone();
        m.merge(other);
        m
    }

    /// Half-perimeter ("margin") used as the enlargement measure; in
    /// high dimensions volume degenerates to 0/∞, margins stay stable.
    fn margin(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(lo, hi)| hi - lo).sum()
    }

    /// L1 distance from a point to this rectangle (0 if inside); a
    /// lower bound on the L1 distance to any contained point.
    fn l1_distance(&self, p: &[f64]) -> f64 {
        let mut d = 0.0;
        for ((&x, &lo), &hi) in p.iter().zip(&self.min).zip(&self.max) {
            if x < lo {
                d += lo - x;
            } else if x > hi {
                d += x - hi;
            }
        }
        d
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(Vec<(Vec<f64>, GraphId)>),
    Inner(Vec<(Mbr, Node)>),
}

/// The frozen query layout: the pointer tree flattened breadth-first
/// into one arena. A node is inner iff `child_len > 0`; children are a
/// contiguous CSR run of arena slots, bounding rectangles live in SoA
/// blocks (`dim` coordinates per node), and every leaf's points sit
/// row-major in one `points` block so the batched L1 kernels stream
/// them without pointer chasing.
#[derive(Clone, Debug, Default, PartialEq)]
struct FlatRTree {
    child_start: Vec<u32>,
    child_len: Vec<u32>,
    bounds_min: Vec<f64>,
    bounds_max: Vec<f64>,
    /// Leaf point run (`pt_start[n] * dim` indexes `points`).
    pt_start: Vec<u32>,
    pt_len: Vec<u32>,
    points: Vec<f64>,
    graphs: Vec<GraphId>,
}

impl FlatRTree {
    /// Appends one (still child-less) arena slot bounded by `mbr`.
    fn push_node(&mut self, mbr: &Mbr) -> usize {
        self.child_start.push(0);
        self.child_len.push(0);
        self.pt_start.push(0);
        self.pt_len.push(0);
        self.bounds_min.extend_from_slice(&mbr.min);
        self.bounds_max.extend_from_slice(&mbr.max);
        self.child_start.len() - 1
    }
}

/// An R-tree over fixed-dimension points with L1 range queries.
#[derive(Clone, Debug)]
pub struct RTree {
    dim: usize,
    root: Node,
    entries: usize,
    /// The frozen arena; `None` while inserts have outdated it.
    flat: Option<FlatRTree>,
}

impl RTree {
    /// An empty tree over `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        RTree { dim, root: Node::Leaf(Vec::new()), entries: 0, flat: None }
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts a point for a graph (duplicates allowed; the fragment
    /// index dedups upstream).
    ///
    /// # Panics
    /// Panics if `point.len() != dim`.
    pub fn insert(&mut self, point: &[f64], graph: GraphId) {
        assert_eq!(point.len(), self.dim, "point dimensionality must equal tree dim");
        self.entries += 1;
        self.flat = None;
        if let Some((right_mbr, right)) = insert_rec(&mut self.root, point, graph) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Inner(Vec::new()));
            let left_mbr = node_mbr(&old_root).expect("split nodes are non-empty");
            self.root = Node::Inner(vec![(left_mbr, old_root), (right_mbr, right)]);
        }
    }

    /// Flattens the pointer tree into the level-major query arena
    /// (breadth-first; O(tree)). Call once after a batch of inserts —
    /// the fragment index freezes after its build loop and after each
    /// inserted graph, mirroring the trie's one-rebuild-per-graph
    /// contract. Queries on an unfrozen tree fall back to the pointer
    /// descent, so freezing is a pure optimization, never a soundness
    /// requirement.
    pub fn freeze(&mut self) {
        self.flat = Some(self.flatten());
    }

    /// The breadth-first flattening itself, shared by [`RTree::freeze`]
    /// and [`RTree::validate`] (which re-flattens and demands the
    /// stored arena match column for column).
    fn flatten(&self) -> FlatRTree {
        let mut flat = FlatRTree::default();
        let root_mbr = node_mbr(&self.root)
            .unwrap_or(Mbr { min: vec![0.0; self.dim], max: vec![0.0; self.dim] });
        flat.push_node(&root_mbr);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(&self.root);
        let mut idx = 0usize;
        while let Some(node) = queue.pop_front() {
            match node {
                Node::Leaf(points) => {
                    flat.pt_start[idx] = flat.graphs.len() as u32;
                    flat.pt_len[idx] = points.len() as u32;
                    for (p, g) in points {
                        flat.points.extend_from_slice(p);
                        flat.graphs.push(*g);
                    }
                }
                Node::Inner(children) => {
                    flat.child_start[idx] = flat.child_start.len() as u32;
                    flat.child_len[idx] = children.len() as u32;
                    for (mbr, child) in children {
                        flat.push_node(mbr);
                        queue.push_back(child);
                    }
                }
            }
            idx += 1;
        }
        flat
    }

    /// Checks every structural invariant of the tree — and, when
    /// frozen, of the CSR arena — returning the first violation as a
    /// description, never a panic. A tree produced by any insert/freeze
    /// sequence always passes; the checks exist for debug re-validation
    /// after mutation and the offline `pis check` fsck.
    ///
    /// Pointer tree: Guttman fanout bounds (`≤ MAX_ENTRIES` everywhere,
    /// `≥ MIN_ENTRIES` off the root), uniform leaf depth, finite
    /// coordinates of the right dimensionality, and every stored MBR
    /// exactly equal (f64 `==`) to its subtree's recomputed bounding
    /// rectangle — inserts maintain them exactly, so any drift is
    /// corruption. Frozen arena: re-flattens the pointer tree and
    /// demands equality column for column, which pins the CSR child
    /// runs, the leaf point runs, and every bound.
    pub fn validate(&self) -> Result<(), String> {
        fn walk(
            node: &Node,
            dim: usize,
            depth: usize,
            is_root: bool,
            leaf_depth: &mut Option<usize>,
            points: &mut usize,
        ) -> Result<(), String> {
            match node {
                Node::Leaf(entries) => {
                    if entries.len() > MAX_ENTRIES {
                        return Err(format!(
                            "leaf holds {} > {MAX_ENTRIES} entries",
                            entries.len()
                        ));
                    }
                    if !is_root && entries.len() < MIN_ENTRIES {
                        return Err(format!(
                            "leaf holds {} < {MIN_ENTRIES} entries",
                            entries.len()
                        ));
                    }
                    match *leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) if d != depth => {
                            return Err(format!("leaf depth {depth} differs from {d}"));
                        }
                        Some(_) => {}
                    }
                    for (p, _) in entries {
                        if p.len() != dim {
                            return Err(format!("point of {} coords in a {dim}-d tree", p.len()));
                        }
                        if p.iter().any(|x| !x.is_finite()) {
                            return Err("non-finite point coordinate".to_string());
                        }
                    }
                    *points += entries.len();
                    Ok(())
                }
                Node::Inner(children) => {
                    if children.len() > MAX_ENTRIES {
                        return Err(format!(
                            "inner node holds {} > {MAX_ENTRIES} children",
                            children.len()
                        ));
                    }
                    let floor = if is_root { 2 } else { MIN_ENTRIES };
                    if children.len() < floor {
                        return Err(format!(
                            "inner node holds {} < {floor} children",
                            children.len()
                        ));
                    }
                    for (mbr, child) in children {
                        if mbr.min.len() != dim || mbr.max.len() != dim {
                            return Err("MBR dimensionality mismatch".to_string());
                        }
                        if mbr.min.iter().chain(&mbr.max).any(|x| !x.is_finite()) {
                            return Err("non-finite MBR coordinate".to_string());
                        }
                        walk(child, dim, depth + 1, false, leaf_depth, points)?;
                        // Inserts recompute stored MBRs through the
                        // same `node_mbr`, so equality is exact.
                        match node_mbr(child) {
                            Some(actual) if actual == *mbr => {}
                            Some(_) => {
                                return Err("stored MBR differs from its subtree".to_string())
                            }
                            None => return Err("MBR over an empty subtree".to_string()),
                        }
                    }
                    Ok(())
                }
            }
        }
        let mut leaf_depth = None;
        let mut points = 0usize;
        walk(&self.root, self.dim, 0, true, &mut leaf_depth, &mut points)?;
        if points != self.entries {
            return Err(format!("{points} stored points but the tree claims {}", self.entries));
        }
        if let Some(flat) = &self.flat {
            if *flat != self.flatten() {
                return Err("frozen arena disagrees with the pointer tree".to_string());
            }
        }
        Ok(())
    }

    /// Whether the frozen arena is current (queries take the flat path).
    pub fn is_frozen(&self) -> bool {
        self.flat.is_some()
    }

    /// Visits every `(graph, L1 distance)` within `sigma` of `query` —
    /// through the frozen arena when current, else through the pointer
    /// tree. Both paths visit the same points in the same order with
    /// identical f64 distances (the batched kernels sum coordinates in
    /// the same order as the scalar loops).
    ///
    /// # Panics
    /// Panics if `query.len() != dim`.
    pub fn range_query(&self, query: &[f64], sigma: f64, mut visit: impl FnMut(GraphId, f64)) {
        assert_eq!(query.len(), self.dim, "query dimensionality must equal tree dim");
        match &self.flat {
            Some(flat) => search_flat(flat, self.dim, query, sigma, &mut visit),
            None => search(&self.root, query, sigma, &mut visit),
        }
    }

    /// The pointer-tree descent, kept as the executable reference for
    /// the arena path (and the fallback for unfrozen trees).
    ///
    /// # Panics
    /// Panics if `query.len() != dim`.
    pub fn range_query_reference(
        &self,
        query: &[f64],
        sigma: f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        assert_eq!(query.len(), self.dim, "query dimensionality must equal tree dim");
        search(&self.root, query, sigma, &mut visit);
    }

    /// Visits every stored `(point, graph)` pair (persistence and
    /// diagnostics). Points come back exactly as inserted.
    pub fn for_each_entry(&self, mut visit: impl FnMut(&[f64], GraphId)) {
        fn walk(node: &Node, visit: &mut impl FnMut(&[f64], GraphId)) {
            match node {
                Node::Leaf(points) => {
                    for (p, g) in points {
                        visit(p, *g);
                    }
                }
                Node::Inner(children) => {
                    for (_, child) in children {
                        walk(child, visit);
                    }
                }
            }
        }
        walk(&self.root, &mut visit);
    }

    /// Tree height (1 for a lone leaf); exposed for tests/benches.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(children) = node {
            h += 1;
            node = &children[0].1;
        }
        h
    }
}

pub(crate) fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn node_mbr(node: &Node) -> Option<Mbr> {
    match node {
        Node::Leaf(points) => {
            let mut it = points.iter();
            let mut mbr = Mbr::of_point(&it.next()?.0);
            for (p, _) in it {
                mbr.merge(&Mbr::of_point(p));
            }
            Some(mbr)
        }
        Node::Inner(children) => {
            let mut it = children.iter();
            let mut mbr = it.next()?.0.clone();
            for (m, _) in it {
                mbr.merge(m);
            }
            Some(mbr)
        }
    }
}

/// Recursive insert; returns a new right sibling when the child split.
fn insert_rec(node: &mut Node, point: &[f64], graph: GraphId) -> Option<(Mbr, Node)> {
    match node {
        Node::Leaf(points) => {
            points.push((point.to_vec(), graph));
            if points.len() <= MAX_ENTRIES {
                return None;
            }
            // Split along the axis with the largest spread, at the
            // median.
            let dim = point.len();
            let axis = (0..dim)
                .max_by(|&a, &b| {
                    spread(points, a).partial_cmp(&spread(points, b)).expect("finite spreads")
                })
                .expect("dim >= 1");
            points.sort_by(|x, y| x.0[axis].partial_cmp(&y.0[axis]).expect("finite weights"));
            let right_points = points.split_off(points.len() / 2);
            debug_assert!(points.len() >= MIN_ENTRIES && right_points.len() >= MIN_ENTRIES);
            let right = Node::Leaf(right_points);
            let right_mbr = node_mbr(&right).expect("non-empty split");
            Some((right_mbr, right))
        }
        Node::Inner(children) => {
            // ChooseLeaf: least margin enlargement, ties by smaller
            // margin.
            let point_mbr = Mbr::of_point(point);
            let best = (0..children.len())
                .min_by(|&i, &j| {
                    let key = |k: usize| {
                        let enlarged = children[k].0.merged(&point_mbr);
                        (enlarged.margin() - children[k].0.margin(), children[k].0.margin())
                    };
                    key(i).partial_cmp(&key(j)).expect("finite margins")
                })
                .expect("inner nodes are non-empty");
            let split = insert_rec(&mut children[best].1, point, graph);
            children[best].0 = node_mbr(&children[best].1).expect("child is non-empty");
            if let Some((mbr, sibling)) = split {
                children.push((mbr, sibling));
            }
            if children.len() <= MAX_ENTRIES {
                return None;
            }
            // Split inner node by center along the largest-spread axis.
            let dim = point.len();
            let axis = (0..dim)
                .max_by(|&a, &b| {
                    let s = |ax: usize| {
                        let lo =
                            children.iter().map(|(m, _)| m.min[ax]).fold(f64::INFINITY, f64::min);
                        let hi = children
                            .iter()
                            .map(|(m, _)| m.max[ax])
                            .fold(f64::NEG_INFINITY, f64::max);
                        hi - lo
                    };
                    s(a).partial_cmp(&s(b)).expect("finite spreads")
                })
                .expect("dim >= 1");
            children.sort_by(|x, y| {
                (x.0.min[axis] + x.0.max[axis])
                    .partial_cmp(&(y.0.min[axis] + y.0.max[axis]))
                    .expect("finite centers")
            });
            let right_children = children.split_off(children.len() / 2);
            let right = Node::Inner(right_children);
            let right_mbr = node_mbr(&right).expect("non-empty split");
            Some((right_mbr, right))
        }
    }
}

fn spread(points: &[(Vec<f64>, GraphId)], axis: usize) -> f64 {
    let lo = points.iter().map(|(p, _)| p[axis]).fold(f64::INFINITY, f64::min);
    let hi = points.iter().map(|(p, _)| p[axis]).fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// Iterative arena descent: one batched rectangle scan per inner node,
/// one batched point scan per leaf, children visited in the same
/// depth-first order as the recursive pointer [`search`].
fn search_flat(
    flat: &FlatRTree,
    dim: usize,
    query: &[f64],
    sigma: f64,
    visit: &mut impl FnMut(GraphId, f64),
) {
    let mut stack: Vec<u32> = vec![0];
    let mut dists: Vec<f64> = Vec::new();
    while let Some(n) = stack.pop() {
        let n = n as usize;
        let cl = flat.child_len[n] as usize;
        if cl > 0 {
            let cs = flat.child_start[n] as usize;
            dists.clear();
            dists.resize(cl, 0.0);
            mbr_l1_costs_into(
                query,
                &flat.bounds_min[cs * dim..(cs + cl) * dim],
                &flat.bounds_max[cs * dim..(cs + cl) * dim],
                &mut dists,
            );
            // Reverse push so the leftmost qualifying child pops first.
            for i in (0..cl).rev() {
                if dists[i] <= sigma {
                    stack.push((cs + i) as u32);
                }
            }
        } else {
            let (ps, pl) = (flat.pt_start[n] as usize, flat.pt_len[n] as usize);
            dists.clear();
            dists.resize(pl, 0.0);
            l1_costs_into(query, &flat.points[ps * dim..(ps + pl) * dim], &mut dists);
            for (i, &d) in dists.iter().enumerate() {
                if d <= sigma {
                    visit(flat.graphs[ps + i], d);
                }
            }
        }
    }
}

fn search(node: &Node, query: &[f64], sigma: f64, visit: &mut impl FnMut(GraphId, f64)) {
    match node {
        Node::Leaf(points) => {
            for (p, g) in points {
                let d = l1(p, query);
                if d <= sigma {
                    visit(*g, d);
                }
            }
        }
        Node::Inner(children) => {
            for (mbr, child) in children {
                if mbr.l1_distance(query) <= sigma {
                    search(child, query, sigma, visit);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(t: &RTree, q: &[f64], sigma: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        t.range_query(q, sigma, |g, d| out.push((g.0, d)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn small_range_queries() {
        let mut t = RTree::new(2);
        t.insert(&[0.0, 0.0], GraphId(0));
        t.insert(&[1.0, 0.0], GraphId(1));
        t.insert(&[5.0, 5.0], GraphId(2));
        assert_eq!(collect(&t, &[0.0, 0.0], 0.0), vec![(0, 0.0)]);
        assert_eq!(collect(&t, &[0.0, 0.0], 1.0), vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(collect(&t, &[0.0, 0.0], 10.0).len(), 3);
    }

    #[test]
    fn agrees_with_linear_scan_after_splits() {
        // Enough points to force several levels.
        let mut t = RTree::new(3);
        let mut points = Vec::new();
        let mut x = 42u64;
        for g in 0..500u32 {
            let mut p = Vec::with_capacity(3);
            for _ in 0..3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                p.push(((x >> 33) % 1000) as f64 / 100.0);
            }
            t.insert(&p, GraphId(g));
            points.push(p);
        }
        assert!(t.height() >= 3, "height {}", t.height());
        assert_eq!(t.len(), 500);
        let query = [5.0, 5.0, 5.0];
        for sigma in [0.5, 2.0, 7.5] {
            let mut expected: Vec<(u32, f64)> = points
                .iter()
                .enumerate()
                .map(|(g, p)| (g as u32, l1(p, &query)))
                .filter(|&(_, d)| d <= sigma)
                .collect();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(collect(&t, &query, sigma), expected, "sigma={sigma}");
        }
    }

    /// Deterministic point cloud shared by the arena tests.
    fn random_tree(n: u32, dim: usize) -> (RTree, Vec<Vec<f64>>) {
        let mut t = RTree::new(dim);
        let mut points = Vec::new();
        let mut x = 42u64;
        for g in 0..n {
            let mut p = Vec::with_capacity(dim);
            for _ in 0..dim {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                p.push(((x >> 33) % 1000) as f64 / 100.0);
            }
            t.insert(&p, GraphId(g));
            points.push(p);
        }
        (t, points)
    }

    #[test]
    fn frozen_arena_matches_pointer_reference() {
        // Same visits, same order, bit-identical distances — across
        // splits, several sigmas, and ragged leaf/child counts.
        for n in [1u32, 7, 8, 9, 60, 500] {
            let (mut t, _) = random_tree(n, 3);
            assert!(!t.is_frozen());
            t.freeze();
            assert!(t.is_frozen());
            for sigma in [0.0, 0.5, 2.0, 7.5, 100.0] {
                let query = [5.0, 5.0, 5.0];
                let mut arena = Vec::new();
                t.range_query(&query, sigma, |g, d| arena.push((g.0, d.to_bits())));
                let mut reference = Vec::new();
                t.range_query_reference(&query, sigma, |g, d| reference.push((g.0, d.to_bits())));
                assert_eq!(arena, reference, "n={n} sigma={sigma}");
            }
        }
    }

    #[test]
    fn insert_invalidates_the_arena_and_queries_stay_correct() {
        let (mut t, _) = random_tree(50, 2);
        t.freeze();
        assert!(t.is_frozen());
        t.insert(&[1.0, 1.0], GraphId(999));
        assert!(!t.is_frozen(), "insert must mark the arena stale");
        // Unfrozen queries fall back to the pointer path and see the
        // new point.
        let mut found = false;
        t.range_query(&[1.0, 1.0], 0.0, |g, _| found |= g.0 == 999);
        assert!(found);
        // Re-freezing restores the arena with the new point included.
        t.freeze();
        let mut found = false;
        t.range_query(&[1.0, 1.0], 0.0, |g, _| found |= g.0 == 999);
        assert!(found);
    }

    #[test]
    fn frozen_empty_and_zero_dim_trees() {
        let mut t = RTree::new(4);
        t.freeze();
        let mut any = false;
        t.range_query(&[0.0; 4], 100.0, |_, _| any = true);
        assert!(!any);
        // Zero-dimensional points are all at distance zero.
        let mut z = RTree::new(0);
        z.insert(&[], GraphId(3));
        z.freeze();
        let mut got = Vec::new();
        z.range_query(&[], 0.0, |g, d| got.push((g.0, d)));
        assert_eq!(got, vec![(3, 0.0)]);
    }

    #[test]
    fn mbr_l1_distance() {
        let m = Mbr { min: vec![1.0, 1.0], max: vec![2.0, 3.0] };
        assert_eq!(m.l1_distance(&[1.5, 2.0]), 0.0); // inside
        assert_eq!(m.l1_distance(&[0.0, 2.0]), 1.0);
        assert_eq!(m.l1_distance(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = RTree::new(1);
        t.insert(&[1.0], GraphId(0));
        t.insert(&[1.0], GraphId(0));
        assert_eq!(t.len(), 2);
        assert_eq!(collect(&t, &[1.0], 0.0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dim_rejected() {
        let mut t = RTree::new(2);
        t.insert(&[1.0], GraphId(0));
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(4);
        assert!(t.is_empty());
        assert!(collect(&t, &[0.0; 4], 100.0).is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn validate_accepts_every_built_tree() {
        for n in [0u32, 1, 7, 8, 9, 60, 500] {
            let (mut t, _) = random_tree(n, 3);
            t.validate().unwrap_or_else(|m| panic!("pointer tree of {n}: {m}"));
            t.freeze();
            t.validate().unwrap_or_else(|m| panic!("frozen tree of {n}: {m}"));
            t.insert(&[1.0, 2.0, 3.0], GraphId(n));
            t.validate().unwrap_or_else(|m| panic!("post-insert tree of {n}: {m}"));
        }
    }

    #[test]
    fn validate_rejects_corruption() {
        let (mut t, _) = random_tree(200, 3);
        t.freeze();
        t.validate().unwrap();

        // Entry-count drift.
        let mut bad = t.clone();
        bad.entries += 1;
        assert!(bad.validate().unwrap_err().contains("claims"));

        // A stored MBR that no longer equals its subtree's bound.
        let mut bad = t.clone();
        let Node::Inner(children) = &mut bad.root else { panic!("200 points must split the root") };
        children[0].0.min[0] += 0.25;
        assert!(bad.validate().unwrap_err().contains("MBR"));

        // Frozen-arena drift: a flipped point coordinate, a rewired
        // graph id, and a perturbed bound must all be caught by the
        // re-flatten comparison.
        for mutate in [
            (|f: &mut FlatRTree| f.points[0] += 1.0) as fn(&mut FlatRTree),
            |f| f.graphs[0] = GraphId(u32::MAX),
            |f| f.bounds_max[1] += 0.5,
            |f| f.child_len[0] = f.child_len[0].wrapping_sub(1),
        ] {
            let mut bad = t.clone();
            mutate(bad.flat.as_mut().unwrap());
            assert_eq!(bad.validate().unwrap_err(), "frozen arena disagrees with the pointer tree");
        }
    }
}
