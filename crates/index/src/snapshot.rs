//! Versioned binary snapshots of a [`FragmentIndex`] + its database.
//!
//! The text format ([`crate::persist`]) re-parses and rebuilds every
//! class on load; a snapshot instead stores the frozen FlatTrie arena
//! columns verbatim, so loading validates and bulk-copies them back
//! with no re-sort, no re-canonicalization and no per-entry parsing.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic "PISSNAP1"  (8 bytes)
//! u32 version (= 1)
//! u32 section_count (= 4)
//! section table: per section { u32 kind, u64 offset, u64 len, u32 crc32 }
//! section payloads (META, FEATURES, DATABASE, CLASSES — in kind order)
//! u32 footer crc32 over every preceding byte
//! ```
//!
//! Every structural count is bounds-checked against the bytes actually
//! present, every float is rejected when non-finite, trie arenas are
//! revalidated by `FlatTrie::from_parts`, and non-trie classes are
//! rebuilt through the same `build_class_impl` as the text loader — so
//! a loaded snapshot answers queries bit-identically and corrupt input
//! of any shape surfaces as [`PersistError::Corrupt`], never a panic.
//!
//! The database graphs ride in the snapshot (one atomic rename covers
//! index *and* database); the write-ahead log ([`crate::wal`]) replays
//! on top of it.

use std::path::Path;

use pis_distance::{LinearDistance, MutationDistance, ScoreMatrix};
use pis_graph::io::{parse_database, write_database};
use pis_graph::{GraphId, Label, LabeledGraph};
use pis_mining::FeatureSet;

use crate::codec::{atomic_write, crc32, idx, len64, u32_idx, u32_of, ByteReader, ByteWriter};
use crate::flat_trie::{FlatTrie, TriePartsOwned};
use crate::index::{Backend, ClassImpl, ClassIndex, FragmentIndex, IndexConfig, IndexDistance};
use crate::persist::{build_class_impl, sequence_to_code, PersistError};

const MAGIC: &[u8; 8] = b"PISSNAP1";
const VERSION: u32 = 1;
const SECTION_COUNT: u32 = 4;
/// Bytes per section-table entry: kind + offset + len + crc.
const TABLE_ENTRY: usize = 24;

const KIND_META: u32 = 1;
const KIND_FEATURES: u32 = 2;
const KIND_DATABASE: u32 = 3;
const KIND_CLASSES: u32 = 4;

/// Serializes the index and its database into snapshot bytes.
///
/// # Panics
/// Panics if the index has unmerged pending entries — snapshots capture
/// only frozen structures; call [`FragmentIndex::compact`] first (the
/// path-level [`write_snapshot`] does).
pub fn encode_snapshot(
    index: &FragmentIndex,
    database: &[LabeledGraph],
) -> Result<Vec<u8>, PersistError> {
    assert_eq!(index.pending_entries(), 0, "compact the index before snapshotting");
    assert_eq!(index.graph_count, database.len(), "index and database out of sync");
    let mut w = ByteWriter::new();
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u32(SECTION_COUNT);
    let table_at = w.len();
    for _ in 0..idx(SECTION_COUNT) * TABLE_ENTRY {
        w.u8(0);
    }
    type SectionEncoder =
        fn(&FragmentIndex, &[LabeledGraph], &mut ByteWriter) -> Result<(), PersistError>;
    let sections: [(u32, SectionEncoder); 4] = [
        (KIND_META, encode_meta),
        (KIND_FEATURES, encode_features),
        (KIND_DATABASE, encode_database),
        (KIND_CLASSES, encode_classes),
    ];
    for (i, (kind, encode)) in sections.iter().enumerate() {
        let offset = w.len();
        encode(index, database, &mut w)?;
        let crc = crc32(&w.as_slice()[offset..]);
        let len = w.len() - offset;
        let at = table_at + i * TABLE_ENTRY;
        w.patch_u32(at, *kind);
        w.patch_u64(at + 4, len64(offset));
        w.patch_u64(at + 12, len64(len));
        w.patch_u32(at + 20, crc);
    }
    let footer = crc32(w.as_slice());
    w.u32(footer);
    Ok(w.into_bytes())
}

fn encode_meta(
    index: &FragmentIndex,
    _db: &[LabeledGraph],
    w: &mut ByteWriter,
) -> Result<(), PersistError> {
    w.u64(len64(index.graph_count));
    w.u64(len64(index.config.max_embeddings_per_fragment));
    w.u8(match index.config.backend {
        Backend::Default => 0,
        Backend::Trie => 1,
        Backend::RTree => 2,
        Backend::VpTree => 3,
    });
    w.u64(len64(index.config.merge_threshold));
    match &index.distance {
        IndexDistance::Mutation(md) => {
            w.u8(0);
            encode_matrix(md.vertex_scores(), w)?;
            encode_matrix(md.edge_scores(), w)?;
        }
        IndexDistance::Linear(ld) => {
            w.u8(1);
            w.f64_bits(ld.vertex_scale());
            w.f64_bits(ld.edge_scale());
        }
    }
    Ok(())
}

fn encode_matrix(m: &ScoreMatrix, w: &mut ByteWriter) -> Result<(), PersistError> {
    w.u32(u32_of(m.size(), "matrix size")?);
    w.f64_bits(m.default_mismatch());
    for i in 0..m.size() {
        for j in 0..m.size() {
            // In-bounds by the size check above.
            w.f64_bits(m.cost(Label(u32_idx(i)), Label(u32_idx(j))));
        }
    }
    Ok(())
}

fn encode_features(
    index: &FragmentIndex,
    _db: &[LabeledGraph],
    w: &mut ByteWriter,
) -> Result<(), PersistError> {
    w.u32(u32_of(index.features.len(), "feature count")?);
    for feature in index.features.iter() {
        w.u64(len64(feature.support));
        let seq = feature.code.to_sequence();
        w.u32(u32_of(seq.len(), "feature sequence length")?);
        for x in seq {
            w.u32(x);
        }
    }
    Ok(())
}

fn encode_database(
    _index: &FragmentIndex,
    db: &[LabeledGraph],
    w: &mut ByteWriter,
) -> Result<(), PersistError> {
    let text = write_database(db);
    w.u64(len64(text.len()));
    w.bytes(text.as_bytes());
    Ok(())
}

fn encode_classes(
    index: &FragmentIndex,
    _db: &[LabeledGraph],
    w: &mut ByteWriter,
) -> Result<(), PersistError> {
    w.u32(u32_of(index.classes.len(), "class count")?);
    for class in &index.classes {
        w.u8(match &class.imp {
            ClassImpl::Trie(_) => 0,
            ClassImpl::VpLabels(_) => 1,
            ClassImpl::RTree(_) => 2,
            ClassImpl::VpWeights(_) => 3,
        });
        w.u32(u32_of(class.graphs.len(), "posting length")?);
        for g in &class.graphs {
            w.u32(g.0);
        }
        w.u64(len64(class.entries));
        match &class.imp {
            ClassImpl::Trie(trie) => {
                let p = trie.parts();
                w.u32(u32_of(p.depth, "trie depth")?);
                w.u32(u32_of(p.labels.len(), "trie node count")?);
                w.u32(u32_of(p.postings.len(), "trie posting count")?);
                w.u32(u32_of(p.alphabet.len(), "trie alphabet count")?);
                for &x in p.level_start {
                    w.u32(x);
                }
                for &l in p.labels {
                    w.u32(l.0);
                }
                for arr in [p.label_idx, p.child_start, p.child_len, p.sub_start, p.sub_len] {
                    for &x in arr {
                        w.u32(x);
                    }
                }
                for &g in p.postings {
                    w.u32(g.0);
                }
                for &x in p.alphabet_start {
                    w.u32(x);
                }
                for &l in p.alphabet {
                    w.u32(l.0);
                }
            }
            ClassImpl::VpLabels(vp) => {
                w.u32(u32_of(vp.len(), "label entry count")?);
                for (seq, gid) in vp.items() {
                    for l in seq {
                        w.u32(l.0);
                    }
                    w.u32(gid.0);
                }
            }
            ClassImpl::RTree(rt) => {
                w.u32(u32_of(rt.len(), "weight entry count")?);
                let mut flat: Vec<(Vec<f64>, GraphId)> = Vec::with_capacity(rt.len());
                rt.for_each_entry(|p, gid| flat.push((p.to_vec(), gid)));
                for (p, gid) in flat {
                    for x in p {
                        w.f64_bits(x);
                    }
                    w.u32(gid.0);
                }
            }
            ClassImpl::VpWeights(vp) => {
                w.u32(u32_of(vp.len(), "weight entry count")?);
                for (p, gid) in vp.items() {
                    for &x in p {
                        w.f64_bits(x);
                    }
                    w.u32(gid.0);
                }
            }
        }
    }
    Ok(())
}

/// Restores an index + database from snapshot bytes, validating the
/// footer checksum, every section checksum, and every structural
/// invariant before any array is trusted.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(FragmentIndex, Vec<LabeledGraph>), PersistError> {
    let header_len = MAGIC.len() + 8 + idx(SECTION_COUNT) * TABLE_ENTRY;
    if bytes.len() < header_len + 4 {
        return Err(corrupt(len64(bytes.len()), "snapshot shorter than its header"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt(0, "bad snapshot magic"));
    }
    let mut r = ByteReader::new(&bytes[MAGIC.len()..header_len], len64(MAGIC.len()));
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(corrupt(8, &format!("unsupported snapshot version {version}")));
    }
    let section_count = r.u32("section count")?;
    if section_count != SECTION_COUNT {
        return Err(corrupt(
            12,
            &format!("expected {SECTION_COUNT} sections, got {section_count}"),
        ));
    }
    // Whole-file footer first: one cheap pass that catches truncation
    // and most bit rot before any section is interpreted.
    let footer_at = bytes.len() - 4;
    let stored_footer = u32::from_le_bytes([
        bytes[footer_at],
        bytes[footer_at + 1],
        bytes[footer_at + 2],
        bytes[footer_at + 3],
    ]);
    if crc32(&bytes[..footer_at]) != stored_footer {
        return Err(corrupt(len64(footer_at), "snapshot footer checksum mismatch"));
    }
    // Section table: bounds + per-section CRC, then slice out payloads.
    // Every payload slot is overwritten in the loop (kind == i + 1 is
    // enforced), so the empty-slice initializer can never leak through.
    let mut payloads: [&[u8]; 4] = [&[]; 4];
    let mut offsets = [0u64; 4];
    for i in 0..idx(SECTION_COUNT) {
        let kind = r.u32("section kind")?;
        let offset = r.u64("section offset")?;
        let len = r.u64("section length")?;
        let crc = r.u32("section checksum")?;
        if kind != u32_idx(i) + 1 {
            return Err(corrupt(r.offset(), &format!("section {i} has kind {kind}")));
        }
        // `checked_add`: a crafted table with offset + len wrapping u64
        // would otherwise pass the range check and panic at the slice.
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt(r.offset(), &format!("section {i} range overflows")))?;
        if offset < len64(header_len) || end > len64(footer_at) {
            return Err(corrupt(r.offset(), &format!("section {i} range escapes the file")));
        }
        // Infallible: offset ≤ end ≤ footer_at, which is a usize.
        let range = |x: u64| {
            usize::try_from(x).map_err(|_| corrupt(x, &format!("section {i} offset exceeds usize")))
        };
        let payload = &bytes[range(offset)?..range(end)?];
        if crc32(payload) != crc {
            return Err(corrupt(offset, &format!("section {i} checksum mismatch")));
        }
        payloads[i] = payload;
        offsets[i] = offset;
    }
    let section = |k: u32| ByteReader::new(payloads[idx(k) - 1], offsets[idx(k) - 1]);

    let meta = decode_meta(&mut section(KIND_META))?;
    let (features, class_shapes) = decode_features(&mut section(KIND_FEATURES))?;
    let database = decode_database(&mut section(KIND_DATABASE))?;
    if database.len() != meta.graph_count {
        return Err(corrupt(
            offsets[idx(KIND_DATABASE) - 1],
            &format!(
                "database holds {} graphs but the index claims {}",
                database.len(),
                meta.graph_count
            ),
        ));
    }
    let classes = decode_classes(&mut section(KIND_CLASSES), &meta, &class_shapes)?;
    let index = FragmentIndex {
        features,
        distance: meta.distance,
        classes,
        graph_count: meta.graph_count,
        config: IndexConfig {
            backend: meta.backend,
            max_embeddings_per_fragment: meta.max_embeddings,
            threads: 0,
            merge_threshold: meta.merge_threshold,
        },
    };
    // Structural fsck on every load: the per-section CRCs catch bit
    // rot, this catches a snapshot whose bytes are intact but whose
    // decoded structures violate an index invariant.
    if let Err(m) = index.validate() {
        return Err(corrupt(0, &format!("index invariant: {m}")));
    }
    Ok((index, database))
}

/// [`encode_snapshot`] + crash-safe rotation onto `path` (write temp,
/// fsync, rename): a crash at any point leaves the previous snapshot
/// intact. Compacts the index first — pending entries merge into the
/// frozen structures the snapshot stores.
pub fn write_snapshot(
    path: &Path,
    index: &mut FragmentIndex,
    database: &[LabeledGraph],
) -> Result<(), PersistError> {
    index.compact();
    let bytes = encode_snapshot(index, database)?;
    atomic_write(path, &bytes)?;
    Ok(())
}

/// Reads and [`decode_snapshot`]s the file at `path`.
pub fn load_snapshot(path: &Path) -> Result<(FragmentIndex, Vec<LabeledGraph>), PersistError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

fn corrupt(offset: u64, message: &str) -> PersistError {
    PersistError::Corrupt { offset, message: message.to_string() }
}

struct Meta {
    graph_count: usize,
    max_embeddings: usize,
    backend: Backend,
    merge_threshold: usize,
    distance: IndexDistance,
}

/// Reads a `u32` count and caps it at what the remaining bytes could
/// possibly hold, with `unit` bytes per counted element — corrupt
/// counts then fail fast without reserving memory the data cannot back.
fn bounded_count(r: &mut ByteReader<'_>, what: &str, unit: usize) -> Result<usize, PersistError> {
    let x = r.u32_usize(what)?;
    let cap = r.remaining() / unit.max(1);
    if x > cap {
        return Err(r.corrupt(&format!("{what} {x} exceeds the {cap} cap")));
    }
    Ok(x)
}

fn decode_meta(r: &mut ByteReader<'_>) -> Result<Meta, PersistError> {
    let graph_count = r.u64("graph count")?;
    if graph_count > u64::from(u32::MAX) {
        return Err(r.corrupt("graph count exceeds u32 ids"));
    }
    // Infallible after the u32 bound above.
    let graph_count =
        usize::try_from(graph_count).map_err(|_| r.corrupt("graph count exceeds usize"))?;
    let max_embeddings = r.u64_usize("max embeddings")?;
    let backend = match r.u8("backend tag")? {
        0 => Backend::Default,
        1 => Backend::Trie,
        2 => Backend::RTree,
        3 => Backend::VpTree,
        t => return Err(r.corrupt(&format!("unknown backend tag {t}"))),
    };
    let merge_threshold = r.u64_usize("merge threshold")?;
    let distance = match r.u8("distance tag")? {
        0 => {
            let vertex = decode_matrix(r)?;
            let edge = decode_matrix(r)?;
            IndexDistance::Mutation(MutationDistance::new(vertex, edge))
        }
        1 => {
            let vs = r.f64_finite("vertex scale")?;
            let es = r.f64_finite("edge scale")?;
            IndexDistance::Linear(LinearDistance::scaled(vs, es))
        }
        t => return Err(r.corrupt(&format!("unknown distance tag {t}"))),
    };
    if !r.is_exhausted() {
        return Err(r.corrupt("trailing bytes in META section"));
    }
    Ok(Meta { graph_count, max_embeddings, backend, merge_threshold, distance })
}

fn decode_matrix(r: &mut ByteReader<'_>) -> Result<ScoreMatrix, PersistError> {
    let size = r.u32_usize("matrix size")?;
    // Cells are 8 bytes each and there are size², so the remaining-byte
    // bound must be taken on the squared count.
    let cells = size.checked_mul(size).filter(|&c| c * 8 <= r.remaining() + 8);
    let Some(cells) = cells else {
        return Err(r.corrupt(&format!("matrix size {size} exceeds the section")));
    };
    let default = r.f64_finite("matrix default")?;
    let mut costs = Vec::with_capacity(cells);
    for _ in 0..cells {
        costs.push(r.f64_finite("matrix cell")?);
    }
    ScoreMatrix::from_fn(size, default, |a, b| costs[a.index() * size + b.index()])
        .map_err(|e| r.corrupt(&e.to_string()))
}

/// Per-class slot/edge counts derived from the features, in class
/// (= feature) order.
struct ClassShape {
    slots: usize,
    ecount: usize,
}

fn decode_features(r: &mut ByteReader<'_>) -> Result<(FeatureSet, Vec<ClassShape>), PersistError> {
    let count = bounded_count(r, "feature count", 16)?;
    let mut features = FeatureSet::new();
    let mut shapes = Vec::with_capacity(count);
    for _ in 0..count {
        let support = r.u64_usize("feature support")?;
        let seq_len = bounded_count(r, "feature sequence length", 4)?;
        let mut seq = Vec::with_capacity(seq_len);
        for _ in 0..seq_len {
            seq.push(r.u32("feature sequence value")?);
        }
        // Full structural validation — canonicality included — shared
        // with the text loader.
        let code = sequence_to_code(&seq, 0).map_err(|e| r.corrupt(&e.to_string()))?;
        shapes.push(ClassShape {
            slots: code.vertex_count() + code.edge_count(),
            ecount: code.edge_count(),
        });
        let (_, fresh) = features.insert(code, support);
        if !fresh {
            return Err(r.corrupt("duplicate feature"));
        }
    }
    if !r.is_exhausted() {
        return Err(r.corrupt("trailing bytes in FEATURES section"));
    }
    Ok((features, shapes))
}

fn decode_database(r: &mut ByteReader<'_>) -> Result<Vec<LabeledGraph>, PersistError> {
    let len = r.count("database text length", r.remaining())?;
    let text = std::str::from_utf8(r.bytes(len, "database text")?)
        .map_err(|_| r.corrupt("database text is not UTF-8"))?;
    let db = parse_database(text).map_err(|e| r.corrupt(&format!("database unparsable: {e}")))?;
    if !r.is_exhausted() {
        return Err(r.corrupt("trailing bytes in DATABASE section"));
    }
    Ok(db)
}

fn decode_classes(
    r: &mut ByteReader<'_>,
    meta: &Meta,
    shapes: &[ClassShape],
) -> Result<Vec<ClassIndex>, PersistError> {
    let count = bounded_count(r, "class count", 1)?;
    if count != shapes.len() {
        return Err(r.corrupt(&format!("{count} classes for {} features", shapes.len())));
    }
    let mut classes = Vec::with_capacity(count);
    for shape in shapes {
        let tag = r.u8("class backend tag")?;
        let posting_len = bounded_count(r, "posting length", 4)?;
        let mut graphs = Vec::with_capacity(posting_len);
        for _ in 0..posting_len {
            graphs.push(GraphId(r.u32("posting graph id")?));
        }
        // Same invariants as the text loader: sorted strictly ascending
        // and naming only graphs that exist.
        if graphs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(r.corrupt("posting list not strictly ascending"));
        }
        if graphs.last().is_some_and(|g| g.index() >= meta.graph_count) {
            return Err(r.corrupt("posting graph id out of range"));
        }
        let entries = r.u64_usize("entry count")?;
        let imp = match tag {
            0 => decode_trie(r, shape, graphs.len())?,
            1 => {
                let items = decode_label_items(r, shape, meta.graph_count)?;
                build_class_impl(
                    "vplabels",
                    &meta.distance,
                    shape.slots,
                    shape.ecount,
                    items,
                    Vec::new(),
                )
                .map_err(|m| r.corrupt(&m))?
            }
            2 => {
                let items = decode_weight_items(r, shape, meta.graph_count)?;
                build_class_impl(
                    "rtree",
                    &meta.distance,
                    shape.slots,
                    shape.ecount,
                    Vec::new(),
                    items,
                )
                .map_err(|m| r.corrupt(&m))?
            }
            3 => {
                let items = decode_weight_items(r, shape, meta.graph_count)?;
                build_class_impl(
                    "vpweights",
                    &meta.distance,
                    shape.slots,
                    shape.ecount,
                    Vec::new(),
                    items,
                )
                .map_err(|m| r.corrupt(&m))?
            }
            t => return Err(r.corrupt(&format!("unknown class backend tag {t}"))),
        };
        classes.push(ClassIndex::restored(imp, graphs, entries));
    }
    if !r.is_exhausted() {
        return Err(r.corrupt("trailing bytes in CLASSES section"));
    }
    Ok(classes)
}

/// Bulk-copies a trie arena out of the section, then revalidates every
/// structural invariant through [`FlatTrie::from_parts`]. Postings are
/// class-local slots and are range-checked against the posting list
/// here, where the class size is known.
fn decode_trie(
    r: &mut ByteReader<'_>,
    shape: &ClassShape,
    class_size: usize,
) -> Result<ClassImpl, PersistError> {
    let depth = r.u32_usize("trie depth")?;
    // Queries index probe vectors of `slots` labels by trie level, so a
    // depth mismatch would read out of bounds at query time.
    if depth != shape.slots {
        return Err(r.corrupt(&format!("trie depth {depth} != {} class slots", shape.slots)));
    }
    let nodes = bounded_count(r, "trie node count", 4)?;
    let postings_len = bounded_count(r, "trie posting count", 4)?;
    let alphabet_len = bounded_count(r, "trie alphabet count", 4)?;
    let table_len = if depth == 0 { 0 } else { depth + 1 };
    let read_u32s =
        |n: usize, what: &str, r: &mut ByteReader<'_>| -> Result<Vec<u32>, PersistError> {
            let mut v = Vec::with_capacity(n.min(r.remaining() / 4 + 1));
            for _ in 0..n {
                v.push(r.u32(what)?);
            }
            Ok(v)
        };
    let level_start = read_u32s(table_len, "trie level table", r)?;
    let labels: Vec<Label> = read_u32s(nodes, "trie labels", r)?.into_iter().map(Label).collect();
    let label_idx = read_u32s(nodes, "trie label slots", r)?;
    let child_start = read_u32s(nodes, "trie child starts", r)?;
    let child_len = read_u32s(nodes, "trie child lengths", r)?;
    let sub_start = read_u32s(nodes, "trie subtree starts", r)?;
    let sub_len = read_u32s(nodes, "trie subtree lengths", r)?;
    let postings: Vec<GraphId> =
        read_u32s(postings_len, "trie postings", r)?.into_iter().map(GraphId).collect();
    if postings.iter().any(|g| g.index() >= class_size) {
        return Err(r.corrupt("trie posting slot out of range"));
    }
    let alphabet_start = read_u32s(table_len, "trie alphabet table", r)?;
    let alphabet: Vec<Label> =
        read_u32s(alphabet_len, "trie alphabet", r)?.into_iter().map(Label).collect();
    let trie = FlatTrie::from_parts(TriePartsOwned {
        depth,
        level_start,
        labels,
        label_idx,
        child_start,
        child_len,
        sub_start,
        sub_len,
        postings,
        alphabet_start,
        alphabet,
    })
    .map_err(|m| r.corrupt(&m))?;
    Ok(ClassImpl::Trie(trie))
}

fn decode_label_items(
    r: &mut ByteReader<'_>,
    shape: &ClassShape,
    graph_count: usize,
) -> Result<Vec<(Vec<Label>, GraphId)>, PersistError> {
    let count = bounded_count(r, "label entry count", (shape.slots + 1) * 4)?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let mut v = Vec::with_capacity(shape.slots);
        for _ in 0..shape.slots {
            v.push(Label(r.u32("label slot")?));
        }
        let gid = GraphId(r.u32("entry graph id")?);
        if gid.index() >= graph_count {
            return Err(r.corrupt("entry graph id out of range"));
        }
        items.push((v, gid));
    }
    Ok(items)
}

fn decode_weight_items(
    r: &mut ByteReader<'_>,
    shape: &ClassShape,
    graph_count: usize,
) -> Result<Vec<(Vec<f64>, GraphId)>, PersistError> {
    let count = bounded_count(r, "weight entry count", shape.slots * 8 + 4)?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let mut v = Vec::with_capacity(shape.slots);
        for _ in 0..shape.slots {
            v.push(r.f64_finite("weight slot")?);
        }
        let gid = GraphId(r.u32("entry graph id")?);
        if gid.index() >= graph_count {
            return Err(r.corrupt("entry graph id out of range"));
        }
        items.push((v, gid));
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::save_index;
    use pis_distance::MutationDistance;
    use pis_graph::{EdgeAttr, GraphBuilder, VertexAttr};
    use pis_mining::exhaustive::exhaustive_features;

    fn ring(labels: &[u32]) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let n = labels.len();
        let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
        for (i, &l) in labels.iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr { label: Label(l), weight: l as f64 })
                .unwrap();
        }
        b.build()
    }

    fn sample(backend: Backend, distance: IndexDistance) -> (FragmentIndex, Vec<LabeledGraph>) {
        let db = vec![ring(&[1, 1, 2, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            distance,
            &crate::IndexConfig { backend, ..crate::IndexConfig::default() },
        );
        (index, db)
    }

    fn text_save(index: &FragmentIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        save_index(index, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_text_identical_per_backend() {
        for (backend, distance) in [
            (Backend::Trie, IndexDistance::Mutation(MutationDistance::edge_hamming())),
            (Backend::VpTree, IndexDistance::Mutation(MutationDistance::edge_hamming())),
            (Backend::RTree, IndexDistance::Linear(LinearDistance::default())),
            (Backend::VpTree, IndexDistance::Linear(LinearDistance::default())),
        ] {
            let (index, db) = sample(backend, distance);
            let bytes = encode_snapshot(&index, &db).unwrap();
            let (loaded, db2) = decode_snapshot(&bytes).unwrap();
            // The text save is a total serialization of index state;
            // byte-identical saves mean byte-identical query behavior.
            assert_eq!(text_save(&index), text_save(&loaded), "{backend:?}");
            assert_eq!(write_database(&db), write_database(&db2));
        }
    }

    #[test]
    fn footer_catches_any_byte_flip() {
        let (index, db) =
            sample(Backend::Trie, IndexDistance::Mutation(MutationDistance::edge_hamming()));
        let bytes = encode_snapshot(&index, &db).unwrap();
        for pos in [8, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                matches!(decode_snapshot(&bad), Err(PersistError::Corrupt { .. })),
                "flip at {pos} must be caught"
            );
        }
    }

    #[test]
    fn truncation_is_typed() {
        let (index, db) =
            sample(Backend::Trie, IndexDistance::Mutation(MutationDistance::edge_hamming()));
        let bytes = encode_snapshot(&index, &db).unwrap();
        for cut in [0, 4, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(decode_snapshot(&bytes[..cut]), Err(PersistError::Corrupt { .. })),
                "truncation to {cut} must be a typed error"
            );
        }
    }

    #[test]
    fn atomic_rotation_round_trips_via_path() {
        let dir = std::env::temp_dir().join(format!("pis-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.pis");
        let (mut index, db) =
            sample(Backend::Trie, IndexDistance::Mutation(MutationDistance::edge_hamming()));
        write_snapshot(&path, &mut index, &db).unwrap();
        let (loaded, db2) = load_snapshot(&path).unwrap();
        assert_eq!(text_save(&index), text_save(&loaded));
        assert_eq!(db2.len(), db.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
