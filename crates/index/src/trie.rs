//! Label-sequence trie with cost-bounded range search.
//!
//! The paper: "For the mutation distance, we can use a trie to
//! accommodate the sequential representations of the labeled graphs."
//! Every fragment of one equivalence class has the same vector length,
//! so the trie has uniform depth; leaves carry posting lists of graph
//! ids. A range query descends the trie accumulating per-position
//! mutation costs and prunes any branch whose partial cost already
//! exceeds the budget — with the skewed label distributions of chemical
//! data most branches die within a level or two.

use pis_graph::{GraphId, Label};

/// Fixed-depth trie over label sequences.
#[derive(Clone, Debug)]
pub struct LabelTrie {
    depth: usize,
    root: Node,
    entries: usize,
}

#[derive(Clone, Debug, Default)]
struct Node {
    /// Sorted by label; fragment alphabets are tiny, so a sorted vec
    /// beats a hash map on both memory and scan time.
    children: Vec<(Label, Node)>,
    /// Posting list (sorted, deduplicated) — populated at leaves only.
    postings: Vec<GraphId>,
}

impl LabelTrie {
    /// An empty trie for sequences of exactly `depth` labels.
    pub fn new(depth: usize) -> Self {
        LabelTrie { depth, root: Node::default(), entries: 0 }
    }

    /// The uniform sequence length.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of `(sequence, graph)` pairs stored (after dedup).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the trie stores nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts a sequence for a graph. Duplicate `(sequence, graph)`
    /// pairs are ignored.
    ///
    /// # Panics
    /// Panics if `sequence.len() != depth`.
    pub fn insert(&mut self, sequence: &[Label], graph: GraphId) {
        assert_eq!(sequence.len(), self.depth, "sequence length must equal trie depth");
        let mut node = &mut self.root;
        for &label in sequence {
            let pos = match node.children.binary_search_by_key(&label, |(l, _)| *l) {
                Ok(p) => p,
                Err(p) => {
                    node.children.insert(p, (label, Node::default()));
                    p
                }
            };
            node = &mut node.children[pos].1;
        }
        match node.postings.binary_search(&graph) {
            Ok(_) => {}
            Err(p) => {
                node.postings.insert(p, graph);
                self.entries += 1;
            }
        }
    }

    /// Visits every stored `(sequence, graph)` pair (persistence and
    /// diagnostics; order is deterministic: lexicographic by sequence).
    pub fn for_each_entry(&self, mut visit: impl FnMut(&[Label], GraphId)) {
        let mut path: Vec<Label> = Vec::with_capacity(self.depth);
        walk(&self.root, &mut path, &mut visit);
        fn walk(node: &Node, path: &mut Vec<Label>, visit: &mut impl FnMut(&[Label], GraphId)) {
            for &g in &node.postings {
                visit(path, g);
            }
            for (label, child) in &node.children {
                path.push(*label);
                walk(child, path, visit);
                path.pop();
            }
        }
    }

    /// Visits every stored `(graph, cost)` whose sequence is within
    /// `sigma` of `query` under the per-position cost function
    /// `cost(position, query_label, stored_label)`. A graph stored under
    /// several sequences is visited once per qualifying sequence; the
    /// caller keeps the minimum.
    ///
    /// # Panics
    /// Panics if `query.len() != depth`.
    pub fn range_query(
        &self,
        query: &[Label],
        sigma: f64,
        cost: impl Fn(usize, Label, Label) -> f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        assert_eq!(query.len(), self.depth, "query length must equal trie depth");
        self.descend(&self.root, 0, 0.0, query, sigma, &cost, &mut visit);
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        node: &Node,
        pos: usize,
        acc: f64,
        query: &[Label],
        sigma: f64,
        cost: &impl Fn(usize, Label, Label) -> f64,
        visit: &mut impl FnMut(GraphId, f64),
    ) {
        if pos == self.depth {
            for &g in &node.postings {
                visit(g, acc);
            }
            return;
        }
        for (label, child) in &node.children {
            let next = acc + cost(pos, query[pos], *label);
            if next <= sigma {
                self.descend(child, pos + 1, next, query, sigma, cost, visit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(xs: &[u32]) -> Vec<Label> {
        xs.iter().map(|&x| Label(x)).collect()
    }

    /// Unit Hamming cost regardless of position.
    fn hamming(_pos: usize, a: Label, b: Label) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }

    fn collect(trie: &LabelTrie, query: &[Label], sigma: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        trie.range_query(query, sigma, hamming, |g, c| out.push((g.0, c)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn exact_and_near_matches() {
        let mut t = LabelTrie::new(3);
        t.insert(&l(&[1, 2, 3]), GraphId(0));
        t.insert(&l(&[1, 2, 4]), GraphId(1));
        t.insert(&l(&[9, 9, 9]), GraphId(2));
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 0.0), vec![(0, 0.0)]);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 1.0), vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(collect(&t, &l(&[1, 2, 3]), 3.0), vec![(0, 0.0), (1, 1.0), (2, 3.0)]);
    }

    #[test]
    fn duplicate_pairs_ignored() {
        let mut t = LabelTrie::new(2);
        t.insert(&l(&[1, 1]), GraphId(7));
        t.insert(&l(&[1, 1]), GraphId(7));
        assert_eq!(t.len(), 1);
        // Same sequence, different graph: both stored.
        t.insert(&l(&[1, 1]), GraphId(8));
        assert_eq!(t.len(), 2);
        assert_eq!(collect(&t, &l(&[1, 1]), 0.0), vec![(7, 0.0), (8, 0.0)]);
    }

    #[test]
    fn graph_under_multiple_sequences_visited_per_sequence() {
        let mut t = LabelTrie::new(2);
        t.insert(&l(&[1, 2]), GraphId(3));
        t.insert(&l(&[2, 1]), GraphId(3));
        let hits = collect(&t, &l(&[1, 2]), 2.0);
        assert_eq!(hits, vec![(3, 0.0), (3, 2.0)]);
    }

    #[test]
    fn position_dependent_costs() {
        // Position 0 is a vertex slot costing nothing; position 1 is an
        // edge slot costing 1 per mismatch (the paper's evaluation
        // setting).
        let cost = |pos: usize, a: Label, b: Label| {
            if a == b || pos == 0 {
                0.0
            } else {
                1.0
            }
        };
        let mut t = LabelTrie::new(2);
        t.insert(&l(&[5, 9]), GraphId(0));
        let mut out = Vec::new();
        t.range_query(&l(&[1, 9]), 0.0, cost, |g, c| out.push((g.0, c)));
        assert_eq!(out, vec![(0, 0.0)]);
    }

    #[test]
    fn pruning_never_loses_answers() {
        // Oracle check against linear scan on a small universe.
        let mut t = LabelTrie::new(3);
        let mut stored = Vec::new();
        let mut x = 1u64;
        for g in 0..60u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let seq = l(&[(x >> 10) as u32 % 3, (x >> 20) as u32 % 3, (x >> 30) as u32 % 3]);
            t.insert(&seq, GraphId(g));
            stored.push(seq);
        }
        let query = l(&[0, 1, 2]);
        for sigma in [0.0, 1.0, 2.0] {
            let mut expected: Vec<(u32, f64)> = stored
                .iter()
                .enumerate()
                .map(|(g, s)| {
                    let d = s.iter().zip(&query).filter(|(a, b)| a != b).count() as f64;
                    (g as u32, d)
                })
                .filter(|&(_, d)| d <= sigma)
                .collect();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(collect(&t, &query, sigma), expected, "sigma={sigma}");
        }
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn wrong_length_rejected() {
        let mut t = LabelTrie::new(3);
        t.insert(&l(&[1]), GraphId(0));
    }

    #[test]
    fn empty_trie_returns_nothing() {
        let t = LabelTrie::new(2);
        assert!(t.is_empty());
        assert!(collect(&t, &l(&[0, 0]), 10.0).is_empty());
    }
}
